"""Structured spans: nested per-query lifecycle timing.

A *span* is one named stage of work with a wall-clock duration, an
accumulated simulated-clock charge, free-form attributes, and child
spans.  The tracer keeps an open-span stack (``span()`` nests under
whatever is currently open) and a bounded ring buffer of finished root
spans for the ``/trace/recent`` endpoint and JSONL export.

Every recorded span carries distributed-tracing identity: a 128-bit
trace id shared by the whole tree and a 64-bit span id of its own
(:mod:`repro.obs.propagation`).  A root span normally mints a fresh
trace id; opened under :meth:`SpanTracer.remote_context` it instead
joins the caller's trace — that is how the origin's execution spans
parent under the proxy's ``origin`` phase across the HTTP hop.
:meth:`SpanTracer.current_traceparent` renders the W3C header the
HTTP client injects on outbound requests.

Two tracers share the interface:

* :class:`SpanTracer` — records everything;
* :class:`NullTracer` — the off switch: ``span()`` hands back a shared
  do-nothing span, so instrumented code pays one method call and no
  allocation per stage.  This is the default on the hot path.

Thread model: the *open-span stack* (and the adopted remote parent)
is per-thread state — each request thread nests its own spans — while
the finished-root ring buffer and the ``spans_started`` counter are
shared across threads and guarded by the ``proxy.trace`` named lock.
A :class:`Span` object itself belongs to the one thread that opened
it (the ``unshared`` registration below).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from types import TracebackType
from typing import Any, Callable, Iterator

from repro.locking import guarded_by, named_lock, unshared
from repro.obs.propagation import IdGenerator, TraceContext


@unshared(
    "attrs",
    "children",
    "wall_ms",
    "sim_ms",
    "trace_id",
    "span_id",
    "parent_id",
    "_start",
)
class Span:
    """One stage of work; a context manager bound to its tracer."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "wall_ms",
        "sim_ms",
        "trace_id",
        "span_id",
        "parent_id",
        "_tracer",
        "_start",
    )

    def __init__(
        self, tracer: "SpanTracer", name: str, attrs: dict[str, Any]
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.wall_ms = 0.0
        self.sim_ms = 0.0
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self._tracer = tracer
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.wall_ms = (self._tracer._clock() - self._start) * 1000.0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes (status, counts, ...) to this span."""
        self.attrs.update(attrs)
        return self

    def charge(self, sim_ms: float) -> "Span":
        """Accumulate simulated-clock milliseconds onto this span."""
        self.sim_ms += sim_ms
        return self

    def context(self) -> TraceContext | None:
        """This span's trace context (``None`` before it is entered)."""
        if self.trace_id is None or self.span_id is None:
            return None
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 6),
            "sim_ms": round(self.sim_ms, 6),
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} wall={self.wall_ms:.3f}ms "
            f"sim={self.sim_ms:.3f}ms children={len(self.children)}>"
        )


@guarded_by("proxy.trace", "_finished", "spans_started")
@unshared("_local")
class SpanTracer:
    """Records nested spans; keeps the last ``capacity`` root spans."""

    enabled = True

    def __init__(
        self,
        capacity: int = 256,
        clock: Callable[[], float] = time.perf_counter,
        ids: IdGenerator | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self._clock = clock
        self._ids = ids if ids is not None else IdGenerator()
        self._lock = named_lock("proxy.trace")
        #: Per-thread open-span stack and adopted remote parent; the
        #: attribute itself is rebound only here (hence ``unshared``),
        #: the state behind it is thread-local by construction.
        self._local = threading.local()
        self._finished: deque[Span] = deque(maxlen=capacity)
        self.spans_started = 0

    # ---------------------------------------------------- per-thread state
    def _open_stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def _remote_parent(self) -> TraceContext | None:
        parent = getattr(self._local, "remote_parent", None)
        assert parent is None or isinstance(parent, TraceContext)
        return parent

    @property
    def capacity(self) -> int:
        """The ring-buffer bound on retained root spans."""
        maxlen = self._finished.maxlen
        assert maxlen is not None
        return maxlen

    # ------------------------------------------------------------ record
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; nests under the currently open span when entered."""
        return Span(self, name, attrs)

    def event(self, name: str, sim_ms: float = 0.0, **attrs: Any) -> None:
        """A zero-wall-duration child span (an instantaneous charge)."""
        with self.span(name, **attrs) as span:
            span.charge(sim_ms)

    def _push(self, span: Span) -> None:
        span.span_id = self._ids.span_id()
        stack = self._open_stack()
        remote = self._remote_parent
        if stack:
            parent = stack[-1]
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        elif remote is not None:
            span.trace_id = remote.trace_id
            span.parent_id = remote.span_id
        else:
            span.trace_id = self._ids.trace_id()
        stack.append(span)
        with self._lock:
            self.spans_started += 1

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits by unwinding to the span.
        stack = self._open_stack()
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._finished.append(span)

    # ------------------------------------------------------- propagation
    def current_context(self) -> TraceContext | None:
        """The innermost open span's trace context, if any.

        With no span open but a remote parent adopted, the remote
        context itself is current — an instrumentation-free stretch of
        a request still belongs to its caller's trace.
        """
        stack = self._open_stack()
        if stack:
            return stack[-1].context()
        return self._remote_parent

    def current_traceparent(self) -> str | None:
        """The W3C ``traceparent`` header for the current context."""
        context = self.current_context()
        return None if context is None else context.to_traceparent()

    @contextmanager
    def remote_context(
        self, context: TraceContext | None
    ) -> Iterator[None]:
        """Adopt a caller's trace context for the duration of the block.

        Root spans opened inside join ``context``'s trace with the
        caller's span as their parent.  ``None`` is a no-op, so the
        receiving side can pass ``parse_traceparent(...)`` straight in.
        """
        if context is None:
            yield
            return
        previous = self._remote_parent
        self._local.remote_parent = context
        try:
            yield
        finally:
            self._local.remote_parent = previous

    # ------------------------------------------------------------ export
    def recent(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent finished root spans, oldest first.

        ``n`` bounds the result; zero and negative values yield [].
        """
        with self._lock:  # snapshot: renders happen outside the lock
            roots = list(self._finished)
        if n is not None:
            roots = roots[-n:] if n > 0 else []
        return [root.to_dict() for root in roots]

    def find_trace(self, trace_id: str) -> list[dict[str, Any]]:
        """All retained root spans belonging to one trace id."""
        with self._lock:
            roots = list(self._finished)
        return [
            root.to_dict() for root in roots if root.trace_id == trace_id
        ]

    def iter_jsonl(self) -> Iterator[str]:
        with self._lock:
            roots = list(self._finished)
        for root in roots:
            yield json.dumps(root.to_dict(), sort_keys=True)

    def export_jsonl(self) -> str:
        """Finished root spans as JSON Lines (one root per line)."""
        lines = list(self.iter_jsonl())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: Any) -> int:
        """Append finished roots to ``path``; returns spans written."""
        lines = list(self.iter_jsonl())
        if lines:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        return len(lines)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


class _NullSpan:
    """The shared do-nothing span the :class:`NullTracer` hands out."""

    __slots__ = ()
    name = ""
    wall_ms = 0.0
    sim_ms = 0.0
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None
    attrs: dict[str, Any] = {}
    children: list["_NullSpan"] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def charge(self, sim_ms: float) -> "_NullSpan":
        return self

    def context(self) -> TraceContext | None:
        return None

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "<NullSpan>"


#: The singleton no-op span.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: emits nothing, stores nothing."""

    enabled = False
    spans_started = 0
    capacity = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, sim_ms: float = 0.0, **attrs: Any) -> None:
        return None

    def current_context(self) -> TraceContext | None:
        return None

    def current_traceparent(self) -> str | None:
        return None

    @contextmanager
    def remote_context(
        self, context: TraceContext | None
    ) -> Iterator[None]:
        yield

    def recent(self, n: int | None = None) -> list[dict[str, Any]]:
        return []

    def find_trace(self, trace_id: str) -> list[dict[str, Any]]:
        return []

    def iter_jsonl(self) -> Iterator[str]:
        return iter(())

    def export_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path: Any) -> int:
        return 0

    def clear(self) -> None:
        return None
