"""Declarative health rules evaluated over the live time series.

The health monitor turns the :mod:`repro.obs.timeseries` samples into
an operational verdict — ``healthy`` / ``degraded`` / ``unhealthy`` —
by evaluating a fixed set of **pinned rules** (HR ids, stable like the
FP diagnostic and EV event codes; see DESIGN.md):

* ``HR01`` *hit-ratio-collapse* — the newest window's cache hit ratio
  (1 − origin rate / throughput) against the trailing baseline of the
  preceding windows; a collapse after a data-version flush or an
  eviction storm shows up here first.
* ``HR02`` *shed-spike* — the fraction of arrivals turned away by
  admission control in the newest window.
* ``HR03`` *latency-slo* — the newest window's rolling p95 response
  time against the strictest configured per-template latency
  objective (the PR 4 SLO targets); inactive when no per-template
  objective was configured.
* ``HR04`` *queue-saturation* — the accept queue pinned near its
  configured limit for several consecutive windows.
* ``HR05`` *breaker-open* — the origin circuit breaker not closed at
  the newest sample (the origin is presumed down; answers degrade).
* ``HR06`` *shard-down* — one or more shard workers behind the
  :class:`~repro.cluster.router.ShardRouter` are down or unhealthy;
  inactive on a single proxy with no shard tier configured.

The overall verdict is the worst rule verdict.  Each evaluation that
*changes* the overall verdict fires an ``EV11`` event into the flight
recorder, so verdict flips are on the same timeline as the breaker
and shed-policy transitions that caused them.

:func:`evaluate_samples` is a pure function over exported samples —
the ``repro.obs.report`` CLI re-runs it offline on a
``timeseries-<label>.json`` artifact.  :class:`HealthMonitor` wraps it
with state (the last verdict, for EV11) guarded by the
``proxy.telemetry`` lock; :class:`NullHealthMonitor` is the shared
no-op default.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.locking import guarded_by, named_lock
from repro.obs.events import EV_HEALTH_STATE_CHANGE, NULL_EVENTS
from repro.obs.slo import SloTracker

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_SEVERITY = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}

#: The pinned health-rule registry (see DESIGN.md): id -> stable name.
HEALTH_RULES: Mapping[str, str] = {
    "HR01": "hit-ratio-collapse",
    "HR02": "shed-spike",
    "HR03": "latency-slo",
    "HR04": "queue-saturation",
    "HR05": "breaker-open",
    "HR06": "shard-down",
}

#: HR01 needs this many windows with traffic before judging.
MIN_BASELINE_WINDOWS = 4
#: HR01 thresholds: recent hit ratio under these fractions of baseline.
HIT_COLLAPSE_DEGRADED = 0.5
HIT_COLLAPSE_UNHEALTHY = 0.25
#: HR01 ignores baselines below this (a cold cache has no ratio to lose).
HIT_BASELINE_FLOOR = 0.2
#: HR02 thresholds on the newest window's shed fraction.
SHED_DEGRADED = 0.1
SHED_UNHEALTHY = 0.5
#: HR04: consecutive windows required, and the near-limit fraction.
QUEUE_SATURATION_WINDOWS = 3
QUEUE_SATURATION_FRACTION = 0.8


def _rule(rule_id: str, status: str, detail: str) -> dict[str, Any]:
    return {
        "id": rule_id,
        "name": HEALTH_RULES[rule_id],
        "status": status,
        "detail": detail,
    }


def _hit_ratios(samples: list[dict[str, Any]]) -> list[float]:
    ratios = []
    for sample in samples:
        rates = sample.get("rates", {})
        throughput = float(rates.get("throughput_qps", 0.0) or 0.0)
        if throughput <= 0.0:
            continue
        origin = float(rates.get("origin_per_s", 0.0) or 0.0)
        ratios.append(min(1.0, max(0.0, 1.0 - origin / throughput)))
    return ratios


def _hit_ratio_collapse(samples: list[dict[str, Any]]) -> dict[str, Any]:
    ratios = _hit_ratios(samples)
    if len(ratios) < MIN_BASELINE_WINDOWS:
        return _rule(
            "HR01",
            HEALTHY,
            f"insufficient data ({len(ratios)} windows with traffic, "
            f"need {MIN_BASELINE_WINDOWS})",
        )
    recent = ratios[-1]
    baseline = sum(ratios[:-1]) / len(ratios[:-1])
    if baseline < HIT_BASELINE_FLOOR:
        return _rule(
            "HR01",
            HEALTHY,
            f"baseline hit ratio {baseline:.2f} below the "
            f"{HIT_BASELINE_FLOOR} judgment floor",
        )
    detail = (
        f"recent hit ratio {recent:.2f} vs trailing baseline "
        f"{baseline:.2f}"
    )
    if recent < baseline * HIT_COLLAPSE_UNHEALTHY:
        return _rule("HR01", UNHEALTHY, detail)
    if recent < baseline * HIT_COLLAPSE_DEGRADED:
        return _rule("HR01", DEGRADED, detail)
    return _rule("HR01", HEALTHY, detail)


def _shed_spike(samples: list[dict[str, Any]]) -> dict[str, Any]:
    if not samples:
        return _rule("HR02", HEALTHY, "no samples")
    rates = samples[-1].get("rates", {})
    shed = float(rates.get("shed_per_s", 0.0) or 0.0)
    served = float(rates.get("throughput_qps", 0.0) or 0.0)
    offered = shed + served
    fraction = shed / offered if offered > 0 else 0.0
    detail = f"shed fraction {fraction:.2f} in the newest window"
    if fraction >= SHED_UNHEALTHY:
        return _rule("HR02", UNHEALTHY, detail)
    if fraction >= SHED_DEGRADED:
        return _rule("HR02", DEGRADED, detail)
    return _rule("HR02", HEALTHY, detail)


def _latency_slo(
    samples: list[dict[str, Any]], latency_slo_ms: float | None
) -> dict[str, Any]:
    if latency_slo_ms is None:
        return _rule(
            "HR03", HEALTHY, "no per-template latency objective configured"
        )
    if not samples:
        return _rule("HR03", HEALTHY, "no samples")
    quantiles = samples[-1].get("quantiles", {}).get("response_ms", {})
    p95 = quantiles.get("p95")
    if p95 is None:
        return _rule("HR03", HEALTHY, "no observations in the newest window")
    detail = (
        f"rolling p95 {p95:.0f} ms vs {latency_slo_ms:.0f} ms objective"
    )
    if p95 > 2.0 * latency_slo_ms:
        return _rule("HR03", UNHEALTHY, detail)
    if p95 > latency_slo_ms:
        return _rule("HR03", DEGRADED, detail)
    return _rule("HR03", HEALTHY, detail)


def _queue_saturation(
    samples: list[dict[str, Any]], queue_limit: int | None
) -> dict[str, Any]:
    if queue_limit is None or queue_limit <= 0:
        return _rule("HR04", HEALTHY, "no queue limit configured")
    if len(samples) < QUEUE_SATURATION_WINDOWS:
        return _rule(
            "HR04",
            HEALTHY,
            f"insufficient data ({len(samples)} windows, need "
            f"{QUEUE_SATURATION_WINDOWS})",
        )
    window = samples[-QUEUE_SATURATION_WINDOWS:]
    depths = [
        float(sample.get("gauges", {}).get("queue_depth", 0.0) or 0.0)
        for sample in window
    ]
    detail = (
        f"queue depth {[round(d) for d in depths]} of limit {queue_limit} "
        f"over the last {QUEUE_SATURATION_WINDOWS} windows"
    )
    if all(depth >= queue_limit for depth in depths):
        return _rule("HR04", UNHEALTHY, detail)
    if all(
        depth >= QUEUE_SATURATION_FRACTION * queue_limit
        for depth in depths
    ):
        return _rule("HR04", DEGRADED, detail)
    return _rule("HR04", HEALTHY, detail)


def _breaker_open(samples: list[dict[str, Any]]) -> dict[str, Any]:
    if not samples:
        return _rule("HR05", HEALTHY, "no samples")
    state = float(
        samples[-1].get("gauges", {}).get("breaker_state", 0.0) or 0.0
    )
    if state >= 2.0:
        return _rule(
            "HR05", DEGRADED, "origin breaker open (origin presumed down)"
        )
    if state >= 1.0:
        return _rule("HR05", DEGRADED, "origin breaker half-open (probing)")
    return _rule("HR05", HEALTHY, "origin breaker closed")


def _shard_down(
    shards_down: int | None, shards_total: int | None
) -> dict[str, Any]:
    if shards_total is None or shards_total <= 0:
        return _rule("HR06", HEALTHY, "no shard tier configured")
    down = int(shards_down or 0)
    detail = f"{down} of {shards_total} shards down or unhealthy"
    if down >= shards_total:
        return _rule("HR06", UNHEALTHY, detail)
    if down > 0:
        return _rule("HR06", DEGRADED, detail)
    return _rule("HR06", HEALTHY, detail)


def evaluate_samples(
    samples: list[dict[str, Any]],
    latency_slo_ms: float | None = None,
    queue_limit: int | None = None,
    shards_down: int | None = None,
    shards_total: int | None = None,
) -> dict[str, Any]:
    """Run every pinned rule over ``samples``; worst verdict wins.

    Pure — usable offline over an exported ``timeseries-*.json``.
    ``shards_down``/``shards_total`` describe the shard tier behind a
    router; a single proxy leaves them ``None`` and HR06 stays
    inactive.
    """
    rules = [
        _hit_ratio_collapse(samples),
        _shed_spike(samples),
        _latency_slo(samples, latency_slo_ms),
        _queue_saturation(samples, queue_limit),
        _breaker_open(samples),
        _shard_down(shards_down, shards_total),
    ]
    status = max(
        (rule["status"] for rule in rules),
        key=lambda verdict: _SEVERITY[str(verdict)],
        default=HEALTHY,
    )
    return {"status": status, "rules": rules, "windows": len(samples)}


def strictest_latency_objective(slo: SloTracker | None) -> float | None:
    """The tightest *per-template* latency objective, or None.

    Only explicit per-template overrides (the PR 4 targets) count: the
    tracker's blanket default objective exists on every proxy and
    would otherwise flag ordinary cold-cache traffic forever.
    """
    if slo is None or not slo.overrides:
        return None
    return min(
        objective.latency_objective_ms
        for objective in slo.overrides.values()
    )


@guarded_by("proxy.telemetry", "_last_status", "_queue_limit")
class HealthMonitor:
    """Stateful wrapper: evaluate, remember, fire EV11 on change.

    Reads the samples its :class:`~repro.obs.timeseries.
    TimeSeriesRecorder` retained, so callers evaluate against exactly
    what ``GET /timeseries`` shows.  The queue limit arrives late (the
    proxy learns it when the admission controller binds), hence the
    setter.
    """

    enabled = True

    def __init__(
        self,
        timeseries: Any,
        events: Any = NULL_EVENTS,
        slo: SloTracker | None = None,
        latency_slo_ms: float | None = None,
        queue_limit: int | None = None,
    ) -> None:
        self.timeseries = timeseries
        self.events = events
        if latency_slo_ms is None:
            latency_slo_ms = strictest_latency_objective(slo)
        self.latency_slo_ms = latency_slo_ms
        self._lock = named_lock("proxy.telemetry")
        self._queue_limit = queue_limit
        self._last_status: str | None = None

    def set_queue_limit(self, queue_limit: int | None) -> None:
        """Late-bind the accept queue's depth limit (HR04's yardstick)."""
        with self._lock:
            self._queue_limit = queue_limit

    def evaluate(self, now_ms: float) -> dict[str, Any]:
        """One full rule pass at simulated time ``now_ms``."""
        with self._lock:
            queue_limit = self._queue_limit
        report = evaluate_samples(
            self.timeseries.samples(),
            latency_slo_ms=self.latency_slo_ms,
            queue_limit=queue_limit,
        )
        status = str(report["status"])
        with self._lock:
            previous = self._last_status
            self._last_status = status
        changed = (
            previous != status
            if previous is not None
            else status != HEALTHY
        )
        if changed:
            self.events.emit(
                EV_HEALTH_STATE_CHANGE,
                at_ms=now_ms,
                status=status,
                previous=previous,
            )
        report["enabled"] = True
        report["at_ms"] = float(now_ms)
        if self.latency_slo_ms is not None:
            report["latency_slo_ms"] = self.latency_slo_ms
        if queue_limit is not None:
            report["queue_limit"] = queue_limit
        return report


class NullHealthMonitor:
    """The disabled monitor: always healthy, remembers nothing."""

    enabled = False
    latency_slo_ms = None

    def set_queue_limit(self, queue_limit: int | None) -> None:
        return None

    def evaluate(self, now_ms: float) -> dict[str, Any]:
        return {
            "enabled": False,
            "status": HEALTHY,
            "rules": [],
            "windows": 0,
            "at_ms": float(now_ms),
        }


#: The singleton no-op monitor instrumentation defaults to.
NULL_HEALTH = NullHealthMonitor()
