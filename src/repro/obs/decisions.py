"""The cache-decision explain layer: why each query hit or missed.

The paper's central claim is that the proxy classifies every query
against the cache purely from region checks — yet spans and metrics
record only *timings*.  This module records the *reasoning*: one
:class:`DecisionTrace` per query capturing the candidate entries
considered, each region-relationship verdict with the compared bounds,
the chosen action, the remainder-query geometry, and any evictions
with the replacement policy's victim rationale.  ``GET
/explain/<query_id>`` on the proxy app serves the stored trace.

Actions have stable codes (mirroring the ``FPxxx`` diagnostic table;
pinned in DESIGN.md), so dashboards and tests can filter without
string-matching prose:

========  ===================  =========================================
Code      Action               Meaning
========  ===================  =========================================
``DA01``  exact                served from an identical cached query
``DA02``  contained            evaluated locally over a subsuming entry
``DA03``  region-contained     merged subsumed entries via the origin
``DA04``  remainder            probe + remainder over overlapping entries
``DA05``  miss                 forwarded whole (disjoint or unhandled)
``DA06``  tunnel               never considered for caching
``DA07``  degraded             cache answer served stale (origin down)
``DA08``  partial              cached portion only; remainder failed
``DA09``  failed               no answer; structured failure
``DA10``  shed                 turned away at admission, never dispatched
``DA11``  queued-timeout       queued past its deadline, never dispatched
========  ===================  =========================================

Everything here is plain data + a bounded ring buffer; the proxy's
instrumentation owns one :class:`DecisionLog` and the query processor
fills one :class:`DecisionTrace` as it works.  This module must stay
importable from anywhere below :mod:`repro.core` (it only depends on
:mod:`repro.geometry`), so the core layers can describe regions
without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.geometry.regions import (
    ConvexPolytope,
    DifferenceRegion,
    HyperRect,
    HyperSphere,
    Region,
)
from repro.locking import guarded_by, named_lock, unshared


class DecisionAction(enum.Enum):
    """The chosen per-query action of the semantic cache."""

    EXACT = "exact"
    CONTAINED = "contained"
    REGION_CONTAINED = "region-contained"
    REMAINDER = "remainder"
    MISS = "miss"
    TUNNEL = "tunnel"
    DEGRADED = "degraded"
    PARTIAL = "partial"
    FAILED = "failed"
    SHED = "shed"
    QUEUED_TIMEOUT = "queued-timeout"

    @property
    def code(self) -> str:
        return ACTION_CODES[self]


#: Stable codes, pinned by a golden test and the DESIGN.md table.
ACTION_CODES: dict[DecisionAction, str] = {
    DecisionAction.EXACT: "DA01",
    DecisionAction.CONTAINED: "DA02",
    DecisionAction.REGION_CONTAINED: "DA03",
    DecisionAction.REMAINDER: "DA04",
    DecisionAction.MISS: "DA05",
    DecisionAction.TUNNEL: "DA06",
    DecisionAction.DEGRADED: "DA07",
    DecisionAction.PARTIAL: "DA08",
    DecisionAction.FAILED: "DA09",
    DecisionAction.SHED: "DA10",
    DecisionAction.QUEUED_TIMEOUT: "DA11",
}

#: QueryStatus.value -> the action taken when the outcome was a full
#: fresh serve.  Degraded/partial/failed outcomes override (below).
_STATUS_ACTIONS: dict[str, DecisionAction] = {
    "exact": DecisionAction.EXACT,
    "contained": DecisionAction.CONTAINED,
    "region-containment": DecisionAction.REGION_CONTAINED,
    "overlap": DecisionAction.REMAINDER,
    "disjoint": DecisionAction.MISS,
    "forwarded": DecisionAction.MISS,
    "no-cache": DecisionAction.TUNNEL,
    "failed": DecisionAction.FAILED,
    "rejected": DecisionAction.SHED,
}


def action_for(status: str, outcome: str) -> DecisionAction:
    """The decision action for a (status, outcome) pair.

    Takes the enum *values* (strings), not the core enums themselves,
    so this module stays importable below :mod:`repro.core`.
    """
    if outcome == "failed":
        return DecisionAction.FAILED
    if outcome == "degraded":
        return DecisionAction.DEGRADED
    if outcome == "partial":
        return DecisionAction.PARTIAL
    if outcome == "shed":
        return DecisionAction.SHED
    if outcome == "queued-timeout":
        return DecisionAction.QUEUED_TIMEOUT
    try:
        return _STATUS_ACTIONS[status]
    except KeyError:
        raise ValueError(f"unknown query status {status!r}") from None


def region_summary(region: Region) -> dict[str, Any]:
    """A JSON-able description of a region's shape and bounds.

    The explain layer reports the *compared bounds* of every region
    check; this is the one rendering used for query regions, candidate
    entry regions, and remainder geometry alike.
    """
    if isinstance(region, HyperSphere):
        return {
            "shape": "hypersphere",
            "center": list(region.center),
            "radius": region.radius,
        }
    if isinstance(region, HyperRect):
        return {
            "shape": "hyperrect",
            "lows": list(region.lows),
            "highs": list(region.highs),
        }
    if isinstance(region, ConvexPolytope):
        return {
            "shape": "polytope",
            "halfspaces": [
                {"normal": list(h.normal), "offset": h.offset}
                for h in region.halfspaces
            ],
        }
    if isinstance(region, DifferenceRegion):
        return {
            "shape": "difference",
            "base": region_summary(region.base),
            "holes": [region_summary(hole) for hole in region.holes],
        }
    box = region.bounding_box()
    return {
        "shape": type(region).__name__,
        "bounding_box": {"lows": list(box.lows), "highs": list(box.highs)},
    }


@dataclass(frozen=True)
class CandidateVerdict:
    """One cache entry's examination during the description check.

    ``relation`` is the region-relationship verdict (``equal`` /
    ``contains`` / ``contained`` / ``overlap`` / ``disjoint``) for
    entries that reached the geometric comparison, or ``skipped`` with
    a ``note`` explaining why (signature mismatch, truncated entry).
    """

    entry_id: int
    relation: str
    entry_region: dict[str, Any]
    rows: int = 0
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "entry_id": self.entry_id,
            "relation": self.relation,
            "entry_region": self.entry_region,
            "rows": self.rows,
        }
        if self.note:
            payload["note"] = self.note
        return payload


@dataclass(frozen=True)
class EvictionRecord:
    """One eviction, with the replacement policy's victim rationale."""

    entry_id: int
    policy: str
    rationale: str
    byte_size: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "entry_id": self.entry_id,
            "policy": self.policy,
            "rationale": self.rationale,
            "byte_size": self.byte_size,
        }


@unshared(
    "candidates",
    "remainder",
    "evictions",
    "consolidated",
    "admitted",
    "notes",
    "status",
    "outcome",
    "action",
    "trace_id",
)
@dataclass
class DecisionTrace:
    """The full reasoning record of one query's cache decision.

    A trace in flight belongs to the single query (and thread) being
    served — hence the ``unshared`` registration; it becomes shared
    only once sealed and handed to :meth:`DecisionLog.record`.
    """

    query_id: int
    template_id: str
    query_region: dict[str, Any] | None = None
    scheme: str = ""
    policy: dict[str, bool] = field(default_factory=dict)
    candidates: list[CandidateVerdict] = field(default_factory=list)
    remainder: dict[str, Any] | None = None
    evictions: list[EvictionRecord] = field(default_factory=list)
    consolidated: list[int] = field(default_factory=list)
    admitted: bool | None = None
    notes: list[str] = field(default_factory=list)
    status: str = ""
    outcome: str = ""
    action: DecisionAction | None = None
    trace_id: str | None = None

    # -------------------------------------------------------- recording
    def note(self, message: str) -> None:
        """Free-form reasoning breadcrumb (tunnel reasons, fallbacks)."""
        self.notes.append(message)

    def record_candidate(
        self,
        entry_id: int,
        relation: str,
        entry_region: Region,
        rows: int = 0,
        note: str = "",
    ) -> None:
        self.candidates.append(
            CandidateVerdict(
                entry_id=entry_id,
                relation=relation,
                entry_region=region_summary(entry_region),
                rows=rows,
                note=note,
            )
        )

    def record_remainder(
        self, geometry: dict[str, Any], sql: str = ""
    ) -> None:
        self.remainder = dict(geometry)
        if sql:
            self.remainder["sql"] = sql

    def record_eviction(self, eviction: EvictionRecord) -> None:
        self.evictions.append(eviction)

    def record_admission(
        self, admitted: bool, consolidated: list[int] | None = None
    ) -> None:
        self.admitted = admitted
        if consolidated:
            self.consolidated.extend(consolidated)

    def finish(
        self, status: str, outcome: str, trace_id: str | None = None
    ) -> None:
        """Seal the trace with the final disposition and span link."""
        self.status = status
        self.outcome = outcome
        self.action = action_for(status, outcome)
        self.trace_id = trace_id

    # ---------------------------------------------------------- export
    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "query_id": self.query_id,
            "template_id": self.template_id,
            "action": self.action.value if self.action else "",
            "action_code": self.action.code if self.action else "",
            "status": self.status,
            "outcome": self.outcome,
            "scheme": self.scheme,
            "policy": dict(self.policy),
            "candidates": [c.to_dict() for c in self.candidates],
            "evictions": [e.to_dict() for e in self.evictions],
            "consolidated": list(self.consolidated),
            "notes": list(self.notes),
        }
        if self.query_region is not None:
            payload["query_region"] = self.query_region
        if self.remainder is not None:
            payload["remainder"] = self.remainder
        if self.admitted is not None:
            payload["admitted"] = self.admitted
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload


@guarded_by("proxy.decisions", "_capacity", "_traces", "_by_id")
class DecisionLog:
    """A bounded ring buffer of finished decision traces.

    Indexed by query id for ``GET /explain/<query_id>``; the index
    drops entries as the ring evicts them, so memory stays bounded by
    ``capacity`` regardless of trace length.  Mutators (``record`` /
    ``resize`` / ``clear``) take the ``proxy.decisions`` lock; reads
    copy under it so the explain endpoints can render while queries
    keep recording.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self._lock = named_lock("proxy.decisions")
        self._capacity = capacity
        self._traces: list[DecisionTrace] = []
        self._by_id: dict[int, DecisionTrace] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._traces)

    def begin(
        self,
        query_id: int,
        template_id: str,
        query_region: dict[str, Any] | None = None,
        scheme: str = "",
        policy: dict[str, bool] | None = None,
    ) -> DecisionTrace:
        """A fresh trace; it enters the ring only when ``record``-ed."""
        return DecisionTrace(
            query_id=query_id,
            template_id=template_id,
            query_region=query_region,
            scheme=scheme,
            policy=dict(policy or {}),
        )

    def record(self, trace: DecisionTrace) -> None:
        with self._lock:
            self._traces.append(trace)
            self._by_id[trace.query_id] = trace
            self._trim()

    def resize(self, capacity: int) -> None:
        """Change the retention bound, trimming oldest traces to fit."""
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        with self._lock:
            self._capacity = capacity
            self._trim()

    def _trim(self) -> None:
        while len(self._traces) > self._capacity:
            evicted = self._traces.pop(0)
            if self._by_id.get(evicted.query_id) is evicted:
                del self._by_id[evicted.query_id]

    def get(self, query_id: int) -> DecisionTrace | None:
        return self._by_id.get(query_id)

    def recent(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent decisions as dicts, oldest first."""
        with self._lock:
            traces = list(self._traces)
        if n is not None:
            traces = traces[-n:] if n > 0 else []
        return [trace.to_dict() for trace in traces]

    def action_counts(self) -> dict[str, int]:
        """How many retained decisions took each action."""
        with self._lock:
            traces = list(self._traces)
        counts: dict[str, int] = {}
        for trace in traces:
            if trace.action is not None:
                key = trace.action.value
                counts[key] = counts.get(key, 0) + 1
        return counts

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._by_id.clear()
