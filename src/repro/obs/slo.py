"""Per-template SLO tracking: hit-ratio and latency objectives.

An :class:`SloObjective` states what "healthy" means for one template:
a target hit ratio (fraction of queries the proxy answers without
contacting the origin — the paper's headline economy) and a latency
objective (fraction of responses under a simulated-latency bound).

The :class:`SloTracker` folds each finished query into per-template
tallies and exports, via the shared metrics registry:

* ``slo_hit_ratio{template=...}`` — observed hit ratio so far;
* ``slo_hit_burn_rate{template=...}`` — miss rate divided by the miss
  *budget* (``1 - target``): 1.0 means exactly on budget, above 1.0
  the objective is being burned faster than allowed;
* ``slo_latency_burn_rate{template=...}`` — same construction for the
  fraction of responses over the latency objective;
* ``slo_queries_total{template=...}`` — the sample size behind both.

Burn rates follow the standard error-budget formulation: with no
queries yet (or a 100% target, i.e. zero budget and any violation)
the gauge reports 0.0 / the budget-exhausted ceiling respectively,
never a division error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import MetricsRegistry

#: Reported when a zero error budget (target = 1.0) is violated at all.
BURN_RATE_CEILING = 1000.0


@dataclass(frozen=True)
class SloObjective:
    """What "healthy" means for one template's traffic."""

    #: Minimum fraction of queries served without contacting the origin.
    target_hit_ratio: float = 0.5
    #: Simulated response-latency bound (milliseconds).
    latency_objective_ms: float = 1000.0
    #: Minimum fraction of responses under the latency bound.
    latency_target_ratio: float = 0.95

    def __post_init__(self) -> None:
        for name in ("target_hit_ratio", "latency_target_ratio"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        if self.latency_objective_ms <= 0:
            raise ValueError(
                f"latency_objective_ms must be positive: "
                f"{self.latency_objective_ms}"
            )


class _TemplateTally:
    __slots__ = ("queries", "hits", "within_latency")

    def __init__(self) -> None:
        self.queries = 0
        self.hits = 0
        self.within_latency = 0


def _burn_rate(violations: int, total: int, target: float) -> float:
    """Observed error rate over the error budget ``1 - target``."""
    if total == 0:
        return 0.0
    error_rate = violations / total
    budget = 1.0 - target
    if budget <= 0.0:
        return BURN_RATE_CEILING if error_rate > 0.0 else 0.0
    return error_rate / budget


class SloTracker:
    """Folds per-query results into per-template SLO gauges."""

    def __init__(
        self,
        registry: MetricsRegistry,
        objective: SloObjective | None = None,
        overrides: dict[str, SloObjective] | None = None,
    ) -> None:
        self.objective = objective if objective is not None else SloObjective()
        self.overrides = dict(overrides or {})
        self._tallies: dict[str, _TemplateTally] = {}
        self.hit_ratio = registry.gauge(
            "slo_hit_ratio",
            "Observed fraction of queries served without the origin.",
            ("template",),
        )
        self.hit_burn_rate = registry.gauge(
            "slo_hit_burn_rate",
            "Cache-miss rate over the miss budget (1 = on budget).",
            ("template",),
        )
        self.latency_burn_rate = registry.gauge(
            "slo_latency_burn_rate",
            "Over-latency response rate over its budget (1 = on budget).",
            ("template",),
        )
        self.queries = registry.counter(
            "slo_queries_total",
            "Queries counted toward each template's SLO.",
            ("template",),
        )

    def objective_for(self, template_id: str) -> SloObjective:
        return self.overrides.get(template_id, self.objective)

    def observe(self, template_id: str, hit: bool, latency_ms: float) -> None:
        """Fold one finished query into its template's SLO gauges."""
        tally = self._tallies.get(template_id)
        if tally is None:
            tally = self._tallies[template_id] = _TemplateTally()
        objective = self.objective_for(template_id)
        tally.queries += 1
        if hit:
            tally.hits += 1
        if latency_ms <= objective.latency_objective_ms:
            tally.within_latency += 1
        self.queries.labels(template=template_id).inc()
        self.hit_ratio.labels(template=template_id).set(
            tally.hits / tally.queries
        )
        self.hit_burn_rate.labels(template=template_id).set(
            _burn_rate(
                tally.queries - tally.hits,
                tally.queries,
                objective.target_hit_ratio,
            )
        )
        self.latency_burn_rate.labels(template=template_id).set(
            _burn_rate(
                tally.queries - tally.within_latency,
                tally.queries,
                objective.latency_target_ratio,
            )
        )

    def snapshot(self) -> dict[str, Any]:
        """Per-template tallies and burn rates, JSON-able."""
        out: dict[str, Any] = {}
        for template_id, tally in sorted(self._tallies.items()):
            objective = self.objective_for(template_id)
            out[template_id] = {
                "queries": tally.queries,
                "hits": tally.hits,
                "within_latency": tally.within_latency,
                "hit_ratio": tally.hits / tally.queries,
                "hit_burn_rate": _burn_rate(
                    tally.queries - tally.hits,
                    tally.queries,
                    objective.target_hit_ratio,
                ),
                "latency_burn_rate": _burn_rate(
                    tally.queries - tally.within_latency,
                    tally.queries,
                    objective.latency_target_ratio,
                ),
                "objective": {
                    "target_hit_ratio": objective.target_hit_ratio,
                    "latency_objective_ms": objective.latency_objective_ms,
                    "latency_target_ratio": objective.latency_target_ratio,
                },
            }
        return out
