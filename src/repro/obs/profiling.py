"""A deterministic hierarchical profiler for the hot paths.

Where :mod:`repro.obs.spans` records *individual* query lifecycles (a
tree per query, bounded ring buffer), the profiler *aggregates*: one
:class:`StageStats` per named stage, accumulating call counts,
cumulative and self time on both clocks (simulated milliseconds charged
by the cost models, real wall-clock milliseconds measured around the
stage), and free-form operator counters (rows read, regions probed,
tuples merged).  The proxy and origin attach it through their
instrumentation bundles (:mod:`repro.obs.instrument`); ``GET /profile``
serves the aggregate as JSON or a ``pprof``-style flat text table, and
the harness writes it per run as ``profile-<label>.json``.

Self vs cumulative follows the classic profiler convention: a stage's
*cumulative* time includes the stages opened inside it, its *self* time
excludes them.  Re-entrant stages (the same name open twice on the
stack) count one call per entry but contribute to cumulative time only
at the outermost frame, so recursion cannot double-count.

The profiler also keeps the top-K *slowest queries* by simulated
response time — the capture that turns "p95 moved" into "these are the
queries that moved it".

Two implementations share the interface:

* :class:`Profiler` — records everything;
* :class:`NullProfiler` — the default off switch: ``stage()`` hands
  back a shared do-nothing frame, so instrumented code pays one method
  call and no allocation per stage.

Stage names are stable identifiers (pinned in DESIGN.md, like the
diagnostic codes): renaming one is a breaking change for anything
filtering profiles or baselines by stage.  Profilers are not
thread-safe; each proxy/origin owns its own, matching the tracers.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Any, Callable

#: The stable stage-name registry (see DESIGN.md).  Instrumented code
#: is not limited to these, but the hot-path stages the acceptance
#: criteria and baselines key on must keep these exact names.
STAGE_NAMES = (
    "admit.queue",      # simulated wait in the admission accept queue
    "admit.shed",       # admission turn-away bookkeeping (count-only)
    "parse",            # query parsing charge
    "check",            # cache-description check (region probe phase)
    "probe.array",      # array description probe inside `check`
    "probe.rtree",      # R-tree description probe inside `check`
    "relate",           # exact region-relation checks inside `check`
    "local_eval",       # local evaluation over cached results
    "read",             # cached-tuple read charge
    "remainder_build",  # remainder-query construction
    "origin",           # resilient origin fetch (proxy side)
    "transfer",         # WAN transfer charge
    "merge",            # remainder merge (probe result + origin rows)
    "maintenance",      # cache admission / consolidation / eviction
    "cache.insert",     # cache-manager mutation events (count-only)
    "cache.evict",
    "cache.remove",
    "cache.clear",
    "journal.append",   # persistence journal writes (count-only)
    "journal.replay",
    "origin.form",      # origin-side execution, by request kind
    "origin.sql",
    "origin.remainder",
    "executor.scan",    # relational operator counters (count-only)
    "executor.join",
    "executor.filter",
    "executor.aggregate",
    "executor.project",
)


class StageStats:
    """Aggregated measurements for one named stage."""

    __slots__ = (
        "name",
        "calls",
        "cum_sim_ms",
        "self_sim_ms",
        "cum_wall_ms",
        "self_wall_ms",
        "counters",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.cum_sim_ms = 0.0
        self.self_sim_ms = 0.0
        self.cum_wall_ms = 0.0
        self.self_wall_ms = 0.0
        self.counters: dict[str, float] = {}

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "calls": self.calls,
            "cum_sim_ms": round(self.cum_sim_ms, 6),
            "self_sim_ms": round(self.self_sim_ms, 6),
            "cum_wall_ms": round(self.cum_wall_ms, 6),
            "self_wall_ms": round(self.self_wall_ms, 6),
        }
        if self.counters:
            payload["counters"] = {
                key: self.counters[key] for key in sorted(self.counters)
            }
        return payload

    def __repr__(self) -> str:
        return (
            f"<StageStats {self.name!r} calls={self.calls} "
            f"cum_sim={self.cum_sim_ms:.3f}ms>"
        )


class StageFrame:
    """One open stage; a context manager bound to its profiler."""

    __slots__ = ("name", "_profiler", "_start", "own_sim", "child_sim",
                 "child_wall")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self.name = name
        self._profiler = profiler
        self._start = 0.0
        self.own_sim = 0.0
        self.child_sim = 0.0
        self.child_wall = 0.0

    def __enter__(self) -> "StageFrame":
        self._profiler._push(self)
        self._start = self._profiler._clock()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        elapsed_ms = (self._profiler._clock() - self._start) * 1000.0
        self._profiler._pop(self, elapsed_ms)
        return False

    def add_sim(self, sim_ms: float) -> None:
        """Charge simulated milliseconds to this frame."""
        self.own_sim += sim_ms

    def count(self, counter: str, n: float = 1) -> None:
        """Bump an operator counter on this frame's stage."""
        self._profiler.count(self.name, counter, n)


class Profiler:
    """Aggregating hierarchical profiler (see the module docstring)."""

    enabled = True

    def __init__(
        self,
        top_k: int = 10,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be positive: {top_k}")
        self.top_k = top_k
        self._clock = clock
        self._stats: dict[str, StageStats] = {}
        self._stack: list[StageFrame] = []
        self._open_by_name: dict[str, int] = {}
        #: Slowest queries, sorted slowest first.
        self._slowest: list[dict[str, Any]] = []

    # ------------------------------------------------------------ stages
    def stage(self, name: str) -> StageFrame:
        """A new stage frame; aggregates into ``name`` when exited."""
        return StageFrame(self, name)

    def _stats_for(self, name: str) -> StageStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = StageStats(name)
        return stats

    def _push(self, frame: StageFrame) -> None:
        self._stack.append(frame)
        self._open_by_name[frame.name] = (
            self._open_by_name.get(frame.name, 0) + 1
        )

    def _pop(self, frame: StageFrame, elapsed_ms: float) -> None:
        # Tolerate out-of-order exits by unwinding to the frame, the
        # same discipline the span tracer applies.
        while self._stack:
            top = self._stack.pop()
            self._open_by_name[top.name] -= 1
            if top is frame:
                break
        stats = self._stats_for(frame.name)
        stats.calls += 1
        total_sim = frame.own_sim + frame.child_sim
        stats.self_sim_ms += frame.own_sim
        stats.self_wall_ms += max(0.0, elapsed_ms - frame.child_wall)
        if self._open_by_name.get(frame.name, 0) == 0:
            # Outermost frame of this name: cumulative time counts once
            # however deep the re-entrancy went.
            stats.cum_sim_ms += total_sim
            stats.cum_wall_ms += elapsed_ms
        if self._stack:
            parent = self._stack[-1]
            parent.child_sim += total_sim
            parent.child_wall += elapsed_ms

    # ------------------------------------------------------ accumulation
    def accumulate(self, name: str, sim_ms: float) -> None:
        """Charge simulated time to ``name``, open frame or not.

        The single accumulation path behind
        :meth:`~repro.obs.instrument.QueryObservation._accumulate`:
        when a frame with that name is open the charge lands on it
        (and is counted at frame exit); otherwise the charge lands
        flat, counting one call — a purely simulated step with no
        interesting wall time ("parse", "read", "transfer").
        """
        if self._open_by_name.get(name, 0):
            for frame in reversed(self._stack):
                if frame.name == name:
                    frame.own_sim += sim_ms
                    return
        self.add_sim(name, sim_ms)

    def add_sim(self, name: str, sim_ms: float, calls: int = 1) -> None:
        """Flat accumulation: ``sim_ms`` and ``calls`` onto ``name``."""
        stats = self._stats_for(name)
        stats.calls += calls
        stats.self_sim_ms += sim_ms
        stats.cum_sim_ms += sim_ms

    def hit(self, name: str, n: int = 1) -> None:
        """Count ``n`` calls of a stage that carries no time of its own
        (cache mutation events, journal writes)."""
        self._stats_for(name).calls += n

    def count(self, name: str, counter: str, n: float = 1) -> None:
        """Bump an operator counter (rows, regions, tuples) on a stage."""
        counters = self._stats_for(name).counters
        counters[counter] = counters.get(counter, 0) + n

    # ---------------------------------------------------- slowest queries
    def record_query(
        self,
        index: int,
        template_id: str,
        sim_ms: float,
        status: str = "",
    ) -> None:
        """Offer one finished query to the top-K slowest capture.

        Kept slowest-first; once full, the fastest retained query is
        evicted when a slower one arrives.
        """
        entry = {
            "index": index,
            "template": template_id,
            "response_sim_ms": round(sim_ms, 6),
        }
        if status:
            entry["status"] = status
        slowest = self._slowest
        position = len(slowest)
        while position > 0 and (
            float(slowest[position - 1]["response_sim_ms"]) < sim_ms
        ):
            position -= 1
        slowest.insert(position, entry)
        if len(slowest) > self.top_k:
            slowest.pop()

    # ------------------------------------------------------------ export
    def snapshot(self) -> dict[str, Any]:
        """The whole profile as a JSON-able dict."""
        return {
            "enabled": True,
            "top_k": self.top_k,
            "stages": {
                name: self._stats[name].to_dict()
                for name in sorted(self._stats)
            },
            "slowest_queries": [dict(entry) for entry in self._slowest],
        }

    def render_text(self, sort: str = "cum") -> str:
        """A ``pprof``-style flat table of every stage.

        ``sort`` orders rows by ``cum`` (cumulative simulated time,
        the default), ``self`` (self simulated time), ``wall``
        (cumulative wall time), or ``calls``.
        """
        key_for: dict[str, Callable[[StageStats], float]] = {
            "cum": lambda s: s.cum_sim_ms,
            "self": lambda s: s.self_sim_ms,
            "wall": lambda s: s.cum_wall_ms,
            "calls": lambda s: float(s.calls),
        }
        key = key_for.get(sort)
        if key is None:
            raise ValueError(
                f"unknown sort {sort!r}; use cum, self, wall, or calls"
            )
        header = (
            f"{'stage':<18} {'calls':>8} {'self_sim_ms':>12} "
            f"{'cum_sim_ms':>12} {'self_wall_ms':>13} {'cum_wall_ms':>12}"
        )
        lines = [f"profile (sorted by {sort})", header, "-" * len(header)]
        ordered = sorted(
            self._stats.values(), key=key, reverse=True
        )
        for stats in ordered:
            lines.append(
                f"{stats.name:<18} {stats.calls:>8} "
                f"{stats.self_sim_ms:>12.3f} {stats.cum_sim_ms:>12.3f} "
                f"{stats.self_wall_ms:>13.3f} {stats.cum_wall_ms:>12.3f}"
            )
        counter_lines = []
        for stats in ordered:
            for counter in sorted(stats.counters):
                counter_lines.append(
                    f"{stats.name}.{counter:<24} "
                    f"{stats.counters[counter]:>14g}"
                )
        if counter_lines:
            lines.append("")
            lines.append("operator counters")
            lines.extend(counter_lines)
        if self._slowest:
            lines.append("")
            lines.append(f"slowest queries (top {self.top_k})")
            for entry in self._slowest:
                status = entry.get("status", "")
                suffix = f" [{status}]" if status else ""
                lines.append(
                    f"#{entry['index']} {entry['template']}"
                    f" {entry['response_sim_ms']:.3f}ms{suffix}"
                )
        return "\n".join(lines) + "\n"

    def stats(self, name: str) -> StageStats | None:
        """The aggregated stats of one stage, if it ever ran."""
        return self._stats.get(name)

    def reset(self) -> None:
        """Drop every aggregate and the slowest-query capture."""
        self._stats.clear()
        self._slowest.clear()


class _NullFrame:
    """The shared do-nothing frame the :class:`NullProfiler` hands out."""

    __slots__ = ()
    name = ""
    own_sim = 0.0
    child_sim = 0.0
    child_wall = 0.0

    def __enter__(self) -> "_NullFrame":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False

    def add_sim(self, sim_ms: float) -> None:
        return None

    def count(self, counter: str, n: float = 1) -> None:
        return None

    def __repr__(self) -> str:
        return "<NullFrame>"


#: The singleton no-op frame.
NULL_FRAME = _NullFrame()


class NullProfiler:
    """The disabled profiler: aggregates nothing, stores nothing."""

    enabled = False
    top_k = 0

    def stage(self, name: str) -> _NullFrame:
        return NULL_FRAME

    def accumulate(self, name: str, sim_ms: float) -> None:
        return None

    def add_sim(self, name: str, sim_ms: float, calls: int = 1) -> None:
        return None

    def hit(self, name: str, n: int = 1) -> None:
        return None

    def count(self, name: str, counter: str, n: float = 1) -> None:
        return None

    def record_query(
        self,
        index: int,
        template_id: str,
        sim_ms: float,
        status: str = "",
    ) -> None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {
            "enabled": False,
            "top_k": 0,
            "stages": {},
            "slowest_queries": [],
        }

    def render_text(self, sort: str = "cum") -> str:
        return "profiler disabled (no-op default)\n"

    def stats(self, name: str) -> StageStats | None:
        return None

    def reset(self) -> None:
        return None


#: The singleton no-op profiler instrumentation defaults to.
NULL_PROFILER = NullProfiler()
