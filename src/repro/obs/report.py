"""Render exported telemetry as a terminal/markdown dashboard.

Usage::

    python -m repro.obs.report --timeseries timeseries-run.json \
        --events events-run.json [--format text|markdown]

Reads the ``timeseries-<label>.json`` / ``events-<label>.json``
artifacts written by the harness (or fetched from ``GET /timeseries``
and ``GET /events``) and renders:

* one **sparkline lane** per rate, gauge, and quantile series;
* the **event timeline** (pinned EV codes, sim timestamps, payloads);
* the **health verdict** — the artifact's embedded report when
  present, otherwise re-evaluated offline with
  :func:`repro.obs.health.evaluate_samples` over the samples.

Everything is computed from the artifacts alone; no proxy required.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Sequence

from repro.obs.health import evaluate_samples

#: The eight-step sparkline alphabet, lowest to highest.
SPARKS = "▁▂▃▄▅▆▇█"
#: Missing points (empty quantile windows) render as a gap.
GAP = "·"


def sparkline(values: Sequence[float | None]) -> str:
    """Scale ``values`` onto the eight-glyph sparkline alphabet."""
    present = [v for v in values if v is not None]
    if not present:
        return GAP * len(values)
    low = min(present)
    high = max(present)
    span = high - low
    out = []
    for value in values:
        if value is None:
            out.append(GAP)
        elif span <= 0:
            out.append(SPARKS[0])
        else:
            slot = int((value - low) / span * (len(SPARKS) - 1))
            out.append(SPARKS[slot])
    return "".join(out)


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.2f}"


def _lane_rows(snapshot: dict[str, Any]) -> list[tuple[str, str, str]]:
    """(label, sparkline, min/mean/max summary) per lane."""
    samples = snapshot.get("samples", [])
    lanes = snapshot.get("lanes", {})
    rows: list[tuple[str, str, str]] = []

    def summarize(values: list[float | None]) -> str:
        present = [v for v in values if v is not None]
        if not present:
            return "no data"
        mean = sum(present) / len(present)
        return (
            f"min {_fmt(min(present))}  mean {_fmt(mean)}  "
            f"max {_fmt(max(present))}"
        )

    for name in lanes.get("rates", []):
        values: list[float | None] = [
            sample.get("rates", {}).get(name) for sample in samples
        ]
        rows.append((f"{name} (rate)", sparkline(values), summarize(values)))
    for name in lanes.get("gauges", []):
        values = [sample.get("gauges", {}).get(name) for sample in samples]
        rows.append((f"{name} (gauge)", sparkline(values), summarize(values)))
    for name in lanes.get("quantiles", []):
        for quantile in ("p50", "p95"):
            values = [
                sample.get("quantiles", {}).get(name, {}).get(quantile)
                for sample in samples
            ]
            rows.append(
                (f"{name} {quantile}", sparkline(values), summarize(values))
            )
    return rows


def render_timeseries(
    snapshot: dict[str, Any], markdown: bool = False
) -> list[str]:
    samples = snapshot.get("samples", [])
    lines = ["## Time series" if markdown else "Time series"]
    if not samples:
        lines.append("  (no samples)")
        return lines
    first = samples[0].get("t_ms", 0.0)
    last = samples[-1].get("t_ms", 0.0)
    lines.append(
        f"  {len(samples)} samples, interval "
        f"{_fmt(snapshot.get('interval_ms'))} ms, sim time "
        f"{_fmt(first)}..{_fmt(last)} ms"
    )
    rows = _lane_rows(snapshot)
    width = max((len(label) for label, _, _ in rows), default=0)
    if markdown:
        lines.append("")
        lines.append("| lane | trend | summary |")
        lines.append("| --- | --- | --- |")
        for label, spark, summary in rows:
            lines.append(f"| {label} | `{spark}` | {summary} |")
    else:
        for label, spark, summary in rows:
            lines.append(f"  {label.ljust(width)}  {spark}  {summary}")
    return lines


def render_events(
    snapshot: dict[str, Any], markdown: bool = False
) -> list[str]:
    events = snapshot.get("events", [])
    lines = ["## Event timeline" if markdown else "Event timeline"]
    total = snapshot.get("total", len(events))
    dropped = total - len(events)
    lines.append(
        f"  {len(events)} events retained"
        + (f" ({dropped} older dropped)" if dropped > 0 else "")
    )
    if markdown and events:
        lines.append("")
        lines.append("| t_ms | code | event | details |")
        lines.append("| --- | --- | --- | --- |")
    for event in events:
        details: list[str] = []
        if "trace_id" in event:
            details.append(f"trace={event['trace_id']}")
        if "query_index" in event:
            details.append(f"query={event['query_index']}")
        for key, value in event.get("payload", {}).items():
            details.append(f"{key}={value}")
        detail = " ".join(details)
        if markdown:
            lines.append(
                f"| {_fmt(event.get('at_ms'))} | {event.get('code')} "
                f"| {event.get('name')} | {detail} |"
            )
        else:
            lines.append(
                f"  {_fmt(event.get('at_ms')).rjust(10)} ms  "
                f"{event.get('code')}  {event.get('name')}"
                + (f"  [{detail}]" if detail else "")
            )
    return lines


def render_health(
    report: dict[str, Any], markdown: bool = False
) -> list[str]:
    lines = ["## Health" if markdown else "Health"]
    lines.append(
        f"  verdict: {report.get('status', 'unknown')} "
        f"({report.get('windows', 0)} windows)"
    )
    if markdown and report.get("rules"):
        lines.append("")
        lines.append("| rule | name | status | detail |")
        lines.append("| --- | --- | --- | --- |")
    for rule in report.get("rules", []):
        if markdown:
            lines.append(
                f"| {rule['id']} | {rule['name']} | {rule['status']} "
                f"| {rule['detail']} |"
            )
        else:
            lines.append(
                f"  {rule['id']}  {rule['name'].ljust(20)} "
                f"{rule['status'].ljust(10)} {rule['detail']}"
            )
    return lines


def render(
    timeseries: dict[str, Any] | None = None,
    events: dict[str, Any] | None = None,
    markdown: bool = False,
    queue_limit: int | None = None,
    latency_slo_ms: float | None = None,
) -> str:
    """The full dashboard as one string."""
    sections: list[list[str]] = []
    if timeseries is not None:
        sections.append(render_timeseries(timeseries, markdown))
        health = timeseries.get("health")
        if not isinstance(health, dict):
            health = evaluate_samples(
                timeseries.get("samples", []),
                latency_slo_ms=latency_slo_ms,
                queue_limit=queue_limit,
            )
        sections.append(render_health(health, markdown))
    if events is not None:
        sections.append(render_events(events, markdown))
    if not sections:
        return "nothing to render (no artifacts given)\n"
    return "\n\n".join("\n".join(section) for section in sections) + "\n"


def _load(path: str | None) -> dict[str, Any] | None:
    if path is None:
        return None
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object snapshot")
    return data


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=(
            "Render timeseries-/events-<label>.json telemetry artifacts "
            "as a terminal or markdown dashboard."
        ),
    )
    parser.add_argument(
        "--timeseries", help="path to a timeseries-<label>.json artifact"
    )
    parser.add_argument(
        "--events", help="path to an events-<label>.json artifact"
    )
    parser.add_argument(
        "--format",
        choices=("text", "markdown"),
        default="text",
        help="output flavor (default: text)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        help="queue depth limit for the offline HR04 evaluation",
    )
    parser.add_argument(
        "--latency-slo-ms",
        type=float,
        help="latency objective for the offline HR03 evaluation",
    )
    args = parser.parse_args(argv)
    if args.timeseries is None and args.events is None:
        parser.error("give at least one of --timeseries / --events")
    print(
        render(
            _load(args.timeseries),
            _load(args.events),
            markdown=args.format == "markdown",
            queue_limit=args.queue_limit,
            latency_slo_ms=args.latency_slo_ms,
        ),
        end="",
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
