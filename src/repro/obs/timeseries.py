"""Fixed-interval time series sampled on the simulated clock.

Prometheus-style cumulative metrics answer "how much so far"; the
time-series recorder answers "what was it doing *then*".  At every
interval boundary on the sim/event time axis it takes one sample:

* **counter lanes** become rates — the counter delta over the window
  divided by the window's simulated seconds, clamped non-negative so a
  counter reset (warm restart rebinding a fresh registry) reads as a
  momentary zero rather than a negative spike;
* **gauge lanes** are point samples (queue depth, in-flight, cache
  bytes, breaker state, snapshot age);
* **quantile lanes** diff a histogram's per-bucket counts across the
  window and report rolling quantiles (p50/p95) of just that window's
  observations — an empty window reports ``None``, not a stale value.

Samples land in a bounded ring buffer (the newest ``capacity``
survive) and are aligned to the interval grid: a sample's ``t_ms`` is
always a multiple of ``interval_ms``, however unevenly queries arrive.
When the clock jumps several intervals at once, one sample covers the
whole gap with rates averaged over it — the buffer never floods on a
time warp.

The recorder is clock-agnostic: callers pass ``now_ms`` (the proxy
passes its simulated work clock; tests may drive it from an event
loop).  State is guarded by the ``proxy.telemetry`` named lock — a
pure sink in the lock-order graph.  :class:`NullTimeSeries` is the
shared no-op default, keeping the PR 6 disabled-overhead contract
(one method call per query, no allocation).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.locking import guarded_by, named_lock, read_only
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@dataclass(frozen=True)
class CounterLane:
    """One rate lane: a counter family sampled as events/second."""

    name: str
    metric: str


@dataclass(frozen=True)
class GaugeLane:
    """One gauge lane: a point-in-time value per sample."""

    name: str
    metric: str


@dataclass(frozen=True)
class QuantileLane:
    """One rolling-quantile lane over a histogram's window deltas."""

    name: str
    metric: str
    quantiles: tuple[float, ...] = (0.5, 0.95)


@dataclass(frozen=True)
class LaneSet:
    """The lanes one recorder samples from its registry."""

    counters: tuple[CounterLane, ...] = ()
    gauges: tuple[GaugeLane, ...] = ()
    quantiles: tuple[QuantileLane, ...] = ()


#: The proxy-side lane set (the default; lane names are part of the
#: wire schema pinned in DESIGN.md).
PROXY_LANES = LaneSet(
    counters=(
        CounterLane("throughput_qps", "proxy_queries_total"),
        CounterLane("shed_per_s", "admission_shed_total"),
        CounterLane("origin_per_s", "proxy_origin_requests_total"),
    ),
    gauges=(
        GaugeLane("queue_depth", "admission_queue_depth"),
        GaugeLane("inflight", "admission_inflight"),
        GaugeLane("cache_bytes", "proxy_cache_bytes"),
        GaugeLane("breaker_state", "breaker_state"),
        GaugeLane("overload_state", "admission_overload_state"),
        GaugeLane("snapshot_age_s", "snapshot_age_seconds"),
    ),
    quantiles=(QuantileLane("response_ms", "proxy_response_sim_ms"),),
)

#: The router-side lane set for the sharded tier (lane names are part
#: of the wire schema pinned in DESIGN.md, like PROXY_LANES).
ROUTER_LANES = LaneSet(
    counters=(
        CounterLane("routed_qps", "router_queries_total"),
        CounterLane("failover_per_s", "router_failover_total"),
        CounterLane("tunnel_per_s", "router_tunnel_total"),
    ),
    gauges=(
        GaugeLane("shards_up", "router_shards_up"),
        GaugeLane("shards_total", "router_shards_total"),
    ),
)

#: The origin-side lane set.
ORIGIN_LANES = LaneSet(
    counters=(CounterLane("requests_per_s", "origin_requests_total"),),
    gauges=(GaugeLane("data_version", "origin_data_version"),),
    quantiles=(QuantileLane("server_ms", "origin_server_sim_ms"),),
)


def _window_quantiles(
    lane: QuantileLane,
    buckets: tuple[float, ...],
    deltas: list[int],
) -> dict[str, float | None]:
    """Quantiles of one window's bucketed observation distribution.

    The reported value is the smallest bucket upper bound whose
    cumulative window count reaches the quantile rank — the classic
    histogram-quantile approximation.  Observations in the +Inf slot
    report the largest finite bound (there is no better estimate).
    """
    total = sum(deltas)
    out: dict[str, float | None] = {}
    for q in lane.quantiles:
        key = f"p{round(q * 100):d}"
        if total == 0:
            out[key] = None
            continue
        rank = q * total
        cumulative = 0
        value: float | None = buckets[-1] if buckets else None
        for slot, count in enumerate(deltas):
            cumulative += count
            if cumulative >= rank:
                if slot < len(buckets):
                    value = buckets[slot]
                break
        out[key] = value
    return out


@guarded_by(
    "proxy.telemetry",
    "_registry",
    "_samples",
    "_last_t_ms",
    "_counter_totals",
    "_bucket_counts",
)
@read_only("interval_ms", "capacity", "lanes")
class TimeSeriesRecorder:
    """Ring-buffered fixed-interval sampler over a metrics registry.

    ``bind`` attaches (or re-attaches, on warm restart) the registry
    to read from; ``maybe_sample(now_ms)`` is the hot-path call — it
    returns the new sample when ``now_ms`` crossed an interval
    boundary and ``None`` otherwise (including when time stands still
    or runs backwards).  The first call only seeds the counter
    baselines; rates need a left edge.
    """

    enabled = True

    def __init__(
        self,
        interval_ms: float = 1_000.0,
        capacity: int = 512,
        lanes: LaneSet = PROXY_LANES,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval must be positive: {interval_ms}")
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.interval_ms = float(interval_ms)
        self.capacity = capacity
        self.lanes = lanes
        self._lock = named_lock("proxy.telemetry")
        self._registry: MetricsRegistry | None = None
        self._samples: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._last_t_ms: float | None = None
        self._counter_totals: dict[str, float] = {}
        self._bucket_counts: dict[str, list[int]] = {}

    # ----------------------------------------------------------- binding
    def bind(self, registry: MetricsRegistry) -> None:
        """Attach the registry to sample from.

        Rebinding (a warm restart swapping in a fresh registry) keeps
        the counter baselines: the next window's deltas go negative
        and clamp to zero — one flat sample, never a negative rate.
        """
        with self._lock:
            self._registry = registry

    # ---------------------------------------------------------- sampling
    def maybe_sample(self, now_ms: float) -> dict[str, Any] | None:
        """Take one sample if ``now_ms`` crossed an interval boundary."""
        with self._lock:
            registry = self._registry
            if registry is None:
                return None
            interval = self.interval_ms
            if self._last_t_ms is None:
                self._last_t_ms = math.floor(now_ms / interval) * interval
                self._seed_baselines(registry)
                return None
            if now_ms < self._last_t_ms + interval:
                return None
            aligned = math.floor(now_ms / interval) * interval
            sample = self._take(registry, aligned, aligned - self._last_t_ms)
            self._last_t_ms = aligned
            self._samples.append(sample)
            return dict(sample)

    def _seed_baselines(self, registry: MetricsRegistry) -> None:
        for counter_lane in self.lanes.counters:
            family = registry.get(counter_lane.metric)
            if isinstance(family, (Counter, Gauge)):
                self._counter_totals[counter_lane.name] = family.total()
        for quantile_lane in self.lanes.quantiles:
            family = registry.get(quantile_lane.metric)
            if isinstance(family, Histogram):
                self._bucket_counts[quantile_lane.name] = (
                    family.merged_counts()
                )

    def _take(
        self, registry: MetricsRegistry, t_ms: float, elapsed_ms: float
    ) -> dict[str, Any]:
        elapsed_s = elapsed_ms / 1_000.0
        rates: dict[str, float] = {}
        for counter_lane in self.lanes.counters:
            family = registry.get(counter_lane.metric)
            total = (
                family.total()
                if isinstance(family, (Counter, Gauge))
                else 0.0
            )
            previous = self._counter_totals.get(counter_lane.name, 0.0)
            self._counter_totals[counter_lane.name] = total
            delta = max(0.0, total - previous)
            rates[counter_lane.name] = (
                delta / elapsed_s if elapsed_s > 0 else 0.0
            )
        gauges: dict[str, float] = {}
        for gauge_lane in self.lanes.gauges:
            family = registry.get(gauge_lane.metric)
            gauges[gauge_lane.name] = (
                family.total() if isinstance(family, Gauge) else 0.0
            )
        quantiles: dict[str, dict[str, float | None]] = {}
        for quantile_lane in self.lanes.quantiles:
            family = registry.get(quantile_lane.metric)
            if not isinstance(family, Histogram):
                quantiles[quantile_lane.name] = {
                    f"p{round(q * 100):d}": None
                    for q in quantile_lane.quantiles
                }
                continue
            counts = family.merged_counts()
            previous_counts = self._bucket_counts.get(quantile_lane.name)
            if previous_counts is None or len(previous_counts) != len(
                counts
            ):
                previous_counts = [0] * len(counts)
            self._bucket_counts[quantile_lane.name] = counts
            deltas = [
                max(0, current - before)
                for current, before in zip(counts, previous_counts)
            ]
            quantiles[quantile_lane.name] = _window_quantiles(
                quantile_lane, family.buckets, deltas
            )
        return {
            "t_ms": t_ms,
            "rates": rates,
            "gauges": gauges,
            "quantiles": quantiles,
        }

    # ------------------------------------------------------------ export
    def samples(self) -> list[dict[str, Any]]:
        """The retained samples, oldest first (copies)."""
        with self._lock:
            return [dict(sample) for sample in self._samples]

    def snapshot(self) -> dict[str, Any]:
        """The wire format (see DESIGN.md): config, lanes, samples."""
        with self._lock:
            return {
                "enabled": True,
                "clock": "sim-ms",
                "interval_ms": self.interval_ms,
                "capacity": self.capacity,
                "lanes": {
                    "rates": [lane.name for lane in self.lanes.counters],
                    "gauges": [lane.name for lane in self.lanes.gauges],
                    "quantiles": [
                        lane.name for lane in self.lanes.quantiles
                    ],
                },
                "samples": [dict(sample) for sample in self._samples],
            }


class NullTimeSeries:
    """The disabled recorder: samples nothing, stores nothing."""

    enabled = False
    interval_ms = 0.0
    capacity = 0
    lanes = LaneSet()

    def bind(self, registry: MetricsRegistry) -> None:
        return None

    def maybe_sample(self, now_ms: float) -> dict[str, Any] | None:
        return None

    def samples(self) -> list[dict[str, Any]]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {
            "enabled": False,
            "clock": "sim-ms",
            "interval_ms": 0.0,
            "capacity": 0,
            "lanes": {"rates": [], "gauges": [], "quantiles": []},
            "samples": [],
        }


#: The singleton no-op recorder instrumentation defaults to.
NULL_TIMESERIES = NullTimeSeries()
