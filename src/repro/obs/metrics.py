"""A small metrics registry with Prometheus text-format exposition.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — set/inc/dec point-in-time values (occupancy);
* :class:`Histogram` — fixed cumulative buckets plus ``_sum``/``_count``
  (``le`` is inclusive, as in Prometheus).

Each metric family may carry label names; ``family.labels(step="merge")``
returns (creating on first use) the child time series for that label
set.  Families without labels are used directly (``family.inc()``).

The registry renders the classic text format (``# HELP`` / ``# TYPE`` /
samples) for scraping and a JSON-able :meth:`MetricsRegistry.snapshot`
for the harness's per-run files.  Stdlib only, no external client.

Histograms additionally keep one *exemplar* per bucket — the most
recent ``(value, trace_id)`` observation that landed there — so a p95
bucket links to the distributed trace that caused it.  Classic
exposition is unchanged (version 0.0.4 has no exemplar syntax);
``exposition(exemplars=True)`` appends them OpenMetrics-style
(``... 42 # {trace_id="..."} 3.25``) and snapshots always carry them.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (milliseconds) for simulated-clock costs.
DEFAULT_MS_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class MetricError(Exception):
    """Metric misuse (bad names, label mismatches, type conflicts)."""


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN: is_integer()/repr() would render 'nan'
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_pairs(labelnames: tuple[str, ...], key: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, key)
    )
    return "{" + body + "}"


class _Metric:
    """Shared family machinery: validation and label children."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name: {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricError(f"invalid label name: {label!r}")
        if len(names) != len(set(names)):
            raise MetricError(f"duplicate label names: {names}")
        self.name = name
        self.help = help
        self.labelnames = names
        self._children: dict[tuple[str, ...], Any] = {}

    # ---------------------------------------------------------- children
    def labels(self, **labels: Any) -> Any:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def _default_child(self) -> Any:
        if self.labelnames:
            raise MetricError(
                f"{self.name} carries labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def _new_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------- exposition
    def header_lines(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines

    def sample_lines(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def snapshot_values(self) -> dict[str, Any]:  # pragma: no cover
        raise NotImplementedError

    def _sorted_children(self) -> list[tuple[tuple[str, ...], Any]]:
        return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up; inc({amount})")
        self.value += amount


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def total(self) -> float:
        """The family total across every label child.

        The time-series sampler's read path: an unlabeled family
        reports its single child, a labeled one (e.g. sheds by reason)
        the sum — and a family nothing observed yet reports 0.0
        without materializing a child.
        """
        return sum(child.value for child in self._children.values())

    def sample_lines(self) -> list[str]:
        return [
            f"{self.name}{_label_pairs(self.labelnames, key)} "
            f"{_format_value(child.value)}"
            for key, child in self._sorted_children()
        ]

    def snapshot_values(self) -> dict[str, Any]:
        return {
            _label_pairs(self.labelnames, key): child.value
            for key, child in self._sorted_children()
        }


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Metric):
    """A point-in-time value (cache occupancy, data version)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    total = Counter.total
    sample_lines = Counter.sample_lines
    snapshot_values = Counter.snapshot_values


class _HistogramChild:
    __slots__ = ("counts", "sum", "count", "exemplars", "_uppers")

    def __init__(self, uppers: tuple[float, ...]) -> None:
        self._uppers = uppers
        self.counts = [0] * (len(uppers) + 1)  # last slot: +Inf
        #: Per bucket, the latest traced observation: (value, trace_id).
        self.exemplars: list[tuple[float, str] | None] = [None] * (
            len(uppers) + 1
        )
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, trace_id: str | None = None) -> None:
        self.sum += value
        self.count += 1
        slot = len(self._uppers)
        for i, upper in enumerate(self._uppers):
            if value <= upper:
                slot = i
                break
        self.counts[slot] += 1
        if trace_id:
            self.exemplars[slot] = (value, trace_id)

    def cumulative(self) -> list[int]:
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_MS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise MetricError(f"{name}: histogram needs at least one bucket")
        if len(set(uppers)) != len(uppers):
            raise MetricError(f"{name}: duplicate bucket bounds {uppers}")
        if uppers and uppers[-1] == float("inf"):
            uppers = uppers[:-1]  # +Inf is implicit
        self.buckets = uppers

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, trace_id: str | None = None) -> None:
        self._default_child().observe(value, trace_id=trace_id)

    @property
    def total_count(self) -> int:
        return sum(child.count for child in self._children.values())

    def merged_counts(self) -> list[int]:
        """Per-bucket *non-cumulative* counts summed across children.

        The final slot is the implicit +Inf bucket.  The time-series
        sampler diffs successive merged counts to get the observation
        distribution of one window, from which rolling quantiles fall
        out without retaining raw observations.
        """
        merged = [0] * (len(self.buckets) + 1)
        for child in self._children.values():
            for slot, count in enumerate(child.counts):
                merged[slot] += count
        return merged

    def sample_lines(self, exemplars: bool = False) -> list[str]:
        lines = []
        for key, child in self._sorted_children():
            cumulative = child.cumulative()
            bounds = [*self.buckets, float("inf")]
            for i, (upper, total) in enumerate(zip(bounds, cumulative)):
                le = _escape_label_value(_format_value(upper))
                pairs = [
                    f'{n}="{_escape_label_value(v)}"'
                    for n, v in zip(self.labelnames, key)
                ]
                pairs.append(f'le="{le}"')
                line = f"{self.name}_bucket{{{','.join(pairs)}}} {total}"
                exemplar = child.exemplars[i] if exemplars else None
                if exemplar is not None:
                    value, trace_id = exemplar
                    line += (
                        f' # {{trace_id="{_escape_label_value(trace_id)}"}}'
                        f" {_format_value(value)}"
                    )
                lines.append(line)
            plain = _label_pairs(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(child.sum)}")
            lines.append(f"{self.name}_count{plain} {child.count}")
        return lines

    def snapshot_values(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for key, child in self._sorted_children():
            bounds = [*map(_format_value, self.buckets), "+Inf"]
            entry: dict[str, Any] = {
                "count": child.count,
                "sum": child.sum,
                "buckets": dict(zip(bounds, child.cumulative())),
            }
            exemplars = {
                bound: {"value": exemplar[0], "trace_id": exemplar[1]}
                for bound, exemplar in zip(bounds, child.exemplars)
                if exemplar is not None
            }
            if exemplars:
                entry["exemplars"] = exemplars
            out[_label_pairs(self.labelnames, key)] = entry
        return out


class MetricsRegistry:
    """Holds metric families; renders exposition text and snapshots."""

    def __init__(self) -> None:
        self._families: dict[str, _Metric] = {}

    # ------------------------------------------------------ registration
    def _register(
        self,
        cls: type[Any],
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        **kwargs: Any,
    ) -> Any:
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls or (
                existing.labelnames != tuple(labelnames)
            ):
                raise MetricError(
                    f"metric {name!r} re-registered with a different "
                    "type or label set"
                )
            return existing
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_MS_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, tuple(labelnames), buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        return self._families.get(name)

    def families(self) -> Iterable[_Metric]:
        return self._families.values()

    # -------------------------------------------------------- rendering
    def exposition(self, exemplars: bool = False) -> str:
        """The Prometheus text format (version 0.0.4).

        ``exemplars=True`` appends OpenMetrics-style exemplar suffixes
        to histogram bucket lines; the classic format (the default) has
        no exemplar syntax, so scrapers get byte-identical output.
        """
        lines: list[str] = []
        for family in self._families.values():
            lines.extend(family.header_lines())
            if exemplars and isinstance(family, Histogram):
                lines.extend(family.sample_lines(exemplars=True))
            else:
                lines.extend(family.sample_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able view: {name: {type, help, values}}."""
        return {
            family.name: {
                "type": family.kind,
                "help": family.help,
                "values": family.snapshot_values(),
            }
            for family in self._families.values()
        }


#: Content type scrapers expect from a ``/metrics`` endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
