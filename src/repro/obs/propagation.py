"""W3C-style trace-context propagation across the proxy/origin hop.

A :class:`TraceContext` is the (trace id, span id) pair one process
hands the next so both sides' spans stitch into a single end-to-end
tree.  The wire form is the W3C Trace Context ``traceparent`` header::

    traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>

The proxy's HTTP origin client injects the header on every remainder /
full fetch (:mod:`repro.webapp.http_origin`); the origin app extracts
it and parents its execution spans under the proxy's ``origin`` phase
(:mod:`repro.webapp.origin_app`), so ``/trace/recent`` on either side
reports the same trace id for one replayed query.

Ids come from an :class:`IdGenerator` — a seeded RNG when replay
determinism matters (the harness), OS entropy otherwise.  Parsing is
deliberately forgiving: anything malformed yields ``None`` and the
receiver simply starts a fresh trace, never an error (tracing must not
break serving).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from random import Random

#: The only traceparent version this reproduction emits.
TRACEPARENT_VERSION = "00"

#: Flag byte for a sampled (recorded) trace.
SAMPLED_FLAG = 0x01

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-"
    r"(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-"
    r"(?P<flags>[0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One hop's view of the distributed trace: ids plus sampling."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        flags = SAMPLED_FLAG if self.sampled else 0x00
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-"
            f"{self.span_id}-{flags:02x}"
        )


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Extract a :class:`TraceContext` from a ``traceparent`` header.

    Returns ``None`` for anything invalid — missing header, bad
    lengths, non-hex digits, the forbidden ``ff`` version, or all-zero
    trace/span ids — so a garbled header degrades to a fresh local
    trace instead of a failed request.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    if match["version"] == "ff":
        return None
    trace_id = match["trace_id"]
    span_id = match["span_id"]
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    sampled = bool(int(match["flags"], 16) & SAMPLED_FLAG)
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled)


class IdGenerator:
    """Mints non-zero trace (128-bit) and span (64-bit) ids.

    ``seed=None`` draws from OS entropy — two processes (proxy and
    origin) must not mint colliding trace ids.  Pass an explicit seed
    when a replay has to produce identical ids run to run.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._rng = Random(seed)

    def trace_id(self) -> str:
        value = 0
        while value == 0:
            value = self._rng.getrandbits(128)
        return f"{value:032x}"

    def span_id(self) -> str:
        value = 0
        while value == 0:
            value = self._rng.getrandbits(64)
        return f"{value:016x}"
