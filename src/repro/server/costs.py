"""The origin server's execution cost model.

Calibrated so that a typical Radial-form query (a spatial function call
plus a PhotoPrimary join, a hundred-odd result tuples) costs on the
order of 1.5 seconds of server time — the magnitude implied by the
paper's no-cache average response time of just over two seconds once
WAN transfer is added.

The ``remainder_surcharge`` models the paper's observation (Section
3.2) that "a remainder query is usually more complicated than the
original query" and so may not reduce server processing time even
though it returns fewer tuples: a remainder query pays the base cost
plus the surcharge per excluded region (each NOT-region predicate
defeats part of the spatial index and adds evaluation work).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServerCostModel:
    """Simulated execution cost of the origin DBMS + web tier."""

    base_ms: float = 1400.0
    per_tuple_ms: float = 1.0
    remainder_surcharge_ms: float = 250.0
    per_hole_ms: float = 60.0

    def __post_init__(self) -> None:
        for name in ("base_ms", "per_tuple_ms", "remainder_surcharge_ms",
                     "per_hole_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def query_ms(self, n_result_tuples: int) -> float:
        """Cost of a plain (template or forwarded) query."""
        return self.base_ms + self.per_tuple_ms * n_result_tuples

    def remainder_ms(self, n_result_tuples: int, n_holes: int) -> float:
        """Cost of a remainder query with ``n_holes`` excluded regions."""
        return (
            self.base_ms
            + self.remainder_surcharge_ms
            + self.per_hole_ms * n_holes
            + self.per_tuple_ms * n_result_tuples
        )
