"""The origin web site: the database-backed server behind the proxy.

This package stands in for the SkyServer: a web application executing
function-embedded SQL over a DBMS with registered user-defined
functions.  It exposes exactly the two facilities the paper's proxy
needs from the original site:

* **form/template execution** — a bound template query is executed and
  its result returned;
* **a free-form SQL facility** — arbitrary SELECTs of the supported
  dialect, which the proxy uses to send *remainder queries* (the paper
  used the SkyServer's public SQL search page for this).

Execution cost is charged to the simulated clock through
:class:`~repro.server.costs.ServerCostModel`; the real Python execution
also happens (results are real), it just is not what the experiment
times.
"""

from repro.server.costs import ServerCostModel
from repro.server.origin import OriginResponse, OriginServer

__all__ = ["OriginResponse", "OriginServer", "ServerCostModel"]
