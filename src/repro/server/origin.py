"""The origin server.

Each origin carries an
:class:`~repro.obs.instrument.OriginInstrumentation` — request counts,
simulated server cost and result-size histograms by request kind, and
a data-version gauge — surfaced by the origin web app's ``/metrics``.
Pass a bundle with a real tracer to also span every execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.instrument import OriginInstrumentation
from repro.relational.catalog import Catalog
from repro.relational.errors import RelationalError
from repro.relational.executor import Executor
from repro.relational.result import ResultTable
from repro.server.costs import ServerCostModel
from repro.skydata.generator import SkyCatalogConfig, build_sky_catalog
from repro.sqlparser.ast import SelectStatement
from repro.sqlparser.errors import ParseError
from repro.sqlparser.parser import parse_select
from repro.templates.manager import BoundQuery, TemplateManager
from repro.templates.skyserver_templates import register_skyserver_templates
from repro.udf.skyserver import register_skyserver_functions


@dataclass(frozen=True)
class OriginResponse:
    """A query answer plus the simulated server time it cost."""

    result: ResultTable
    server_ms: float


class OriginServer:
    """The database-backed web site the proxy fronts.

    ``templates`` is the site's own application logic (HTML forms bound
    to parameterized queries).  The same template objects are shared
    with the proxy in experiments — exactly the paper's setup, where
    the site publishes its templates for registration at the proxy.
    """

    def __init__(
        self,
        catalog: Catalog,
        templates: TemplateManager,
        costs: ServerCostModel | None = None,
        instrumentation: OriginInstrumentation | None = None,
    ) -> None:
        self.catalog = catalog
        self.templates = templates
        self.costs = costs or ServerCostModel()
        self.executor = Executor(catalog)
        self.instrumentation = instrumentation or OriginInstrumentation()
        self.queries_served = 0
        self.remainders_served = 0
        self.data_version = 1

    def bump_data_version(self) -> int:
        """Announce that base data changed.

        The paper's determinism property (Section 3.1) holds "given a
        fixed database"; when the database does change (a data load, a
        reprocessing run), the site bumps this version and caching
        proxies flush — the coarse-grained coherence scheme real
        deployments of the SkyServer era used (whole-cache invalidation
        on data release).
        """
        self.data_version += 1
        self.instrumentation.data_version.set(self.data_version)
        return self.data_version

    @staticmethod
    def skyserver(
        config: SkyCatalogConfig | None = None,
        costs: ServerCostModel | None = None,
    ) -> "OriginServer":
        """A ready-to-serve synthetic SkyServer."""
        catalog = build_sky_catalog(config)
        register_skyserver_functions(
            catalog.functions, catalog.table("PhotoPrimary")
        )
        templates = TemplateManager()
        register_skyserver_templates(templates)
        server = OriginServer(catalog, templates, costs)
        for template_id in templates.query_template_ids():
            templates.query_template(template_id).validate(catalog.functions)
        return server

    # ----------------------------------------------------------- serving
    def _execute(self, statement: SelectStatement, kind: str, **attrs):
        """Execute one statement under an ``origin.<kind>`` span."""
        # Re-point the executor's operator counters at whatever profiler
        # the instrumentation currently holds (web apps swap it in when
        # profiling is requested after construction).
        self.executor.profiler = self.instrumentation.profiler
        with self.instrumentation.tracer.span(
            f"origin.{kind}", **attrs
        ) as span:
            with self.instrumentation.profiler.stage(
                f"origin.{kind}"
            ) as stage:
                result = self.executor.execute(statement)
                stage.count("rows", len(result))
            span.annotate(rows=len(result))
        return result

    def _respond(self, result, kind: str, server_ms: float) -> OriginResponse:
        self.instrumentation.observe(kind, result.byte_size(), server_ms)
        return OriginResponse(result, server_ms)

    def execute_bound(self, bound: BoundQuery) -> OriginResponse:
        """Execute a concrete template query (a form submission)."""
        result = self._execute(
            bound.statement, "form", template=bound.template_id
        )
        self.queries_served += 1
        return self._respond(result, "form", self.costs.query_ms(len(result)))

    def execute_statement(self, statement: SelectStatement) -> OriginResponse:
        """Execute a parsed statement through the free-SQL facility."""
        result = self._execute(statement, "sql")
        self.queries_served += 1
        return self._respond(result, "sql", self.costs.query_ms(len(result)))

    def execute_sql(self, sql: str) -> OriginResponse:
        """Execute raw SQL text (the public free-SQL search page).

        Raises :class:`ParseError` / :class:`RelationalError` for bad
        input; the HTTP wrapper maps those to a 400 response.
        """
        return self.execute_statement(parse_select(sql))

    def execute_remainder(
        self, statement: SelectStatement, n_holes: int
    ) -> OriginResponse:
        """Execute a remainder query (a rewritten query with excluded
        regions); costed separately per the model's surcharge."""
        result = self._execute(statement, "remainder", holes=n_holes)
        self.queries_served += 1
        self.remainders_served += 1
        return self._respond(
            result, "remainder", self.costs.remainder_ms(len(result), n_holes)
        )

    def execute_form(self, form_name: str, form_values) -> OriginResponse:
        """Serve a raw HTML form submission end to end."""
        bound = self.templates.bind_form(form_name, form_values)
        return self.execute_bound(bound)


__all__ = ["OriginResponse", "OriginServer", "ParseError", "RelationalError"]
