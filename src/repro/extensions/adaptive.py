"""Adaptive overlap handling: learning the paper's conclusion online.

The paper's evaluation found that handling cache-intersecting queries
(probe + remainder query + merge) "may not be worthwhile" — on their
testbed the remainder's extra server cost outweighed the transfer it
saved.  But the balance is a property of the deployment: a slow network
with a fast origin flips it.

:class:`AdaptiveProxy` makes the decision empirically instead of
statically.  It runs the full-semantic machinery but gates the overlap
path on a running cost comparison:

* every query that goes to the origin *whole* updates the average
  forward cost (origin + transfer time);
* every overlap handled via remainder updates the average remainder
  cost (origin + transfer + probe + merge);
* after a warm-up of ``explore_overlaps`` handled overlaps, new
  overlaps are only handled when the measured remainder average beats
  the forward average; one in every ``exploration_period`` overlaps is
  still handled regardless, so the estimate keeps tracking a changing
  environment.

Declined overlaps degrade exactly as the paper's Second/Third schemes:
region containment is still consolidated (when the scheme allows), and
the query is forwarded whole and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.proxy import FunctionProxy, ProxyResponse
from repro.core.stats import QueryStatus

# Steps that constitute the cost of getting an answer from the origin.
_FORWARD_STEPS = ("origin", "transfer")
_OVERLAP_STEPS = ("origin", "transfer", "read", "local_eval", "merge")


@dataclass
class _RunningMean:
    total: float = 0.0
    count: int = 0

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class AdaptiveState:
    """The estimator's observable state (exposed for tests/diagnostics)."""

    forward_cost: _RunningMean = field(default_factory=_RunningMean)
    overlap_cost: _RunningMean = field(default_factory=_RunningMean)
    overlaps_seen: int = 0
    overlaps_handled: int = 0
    overlaps_declined: int = 0

    @property
    def remainder_pays_off(self) -> bool:
        if not self.overlap_cost.count or not self.forward_cost.count:
            return True  # no evidence yet: explore
        return self.overlap_cost.mean <= self.forward_cost.mean


class AdaptiveProxy(FunctionProxy):
    """A function proxy that learns whether remainders are worthwhile."""

    def __init__(
        self,
        *args,
        explore_overlaps: int = 15,
        exploration_period: int = 20,
        **kwargs,
    ) -> None:
        if explore_overlaps < 1 or exploration_period < 2:
            raise ValueError(
                "need at least 1 exploration overlap and a period >= 2"
            )
        super().__init__(*args, **kwargs)
        self.adaptive = AdaptiveState()
        self.explore_overlaps = explore_overlaps
        self.exploration_period = exploration_period

    # ------------------------------------------------------- decision
    def _attempt_overlap(self, bound, subsumed, overlapping) -> bool:
        if not self.scheme.policy.handles_overlap:
            return False
        state = self.adaptive
        state.overlaps_seen += 1
        if state.overlaps_handled < self.explore_overlaps:
            return True
        if state.overlaps_seen % self.exploration_period == 0:
            return True  # periodic re-exploration
        return state.remainder_pays_off

    # ------------------------------------------------------ observation
    def serve(self, bound) -> ProxyResponse:
        response = super().serve(bound)
        record = response.record
        steps = record.steps_ms
        if record.status in (
            QueryStatus.OVERLAP, QueryStatus.REGION_CONTAINMENT
        ):
            self.adaptive.overlap_cost.add(
                sum(steps.get(name, 0.0) for name in _OVERLAP_STEPS)
            )
            self.adaptive.overlaps_handled += 1
        elif record.status in (
            QueryStatus.DISJOINT, QueryStatus.FORWARDED,
        ):
            self.adaptive.forward_cost.add(
                sum(steps.get(name, 0.0) for name in _FORWARD_STEPS)
            )
            if record.status is QueryStatus.FORWARDED:
                self.adaptive.overlaps_declined += 1
        return response
