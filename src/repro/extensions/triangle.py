"""A triangular sky search: the polytope region shape, end to end.

``fGetObjFromTriangle(ra1, dec1, ra2, dec2, ra3, dec3)`` returns the
objects inside the (flat-sky) triangle with the given vertices.  The
vertices **must be in counter-clockwise order**: for a CCW triangle,
each directed edge ``(p, q)`` bounds the interior with the halfspace

    (q_dec - p_dec) * ra + (p_ra - q_ra) * dec  <=  same expression at p

and exactly those three inequalities form the function template's
polytope.  The function rejects clockwise or degenerate vertex lists so
that its behaviour always matches the registered template.

Everything else — caching, containment answering, remainder queries —
falls out of the framework unchanged; the tests drive a zoomed-in
triangle query from the cache without contacting the origin.
"""

from __future__ import annotations

from typing import Any

from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.skydata.index import SkyGridIndex
from repro.sqlparser.parser import parse_expression
from repro.templates.function_template import (
    FunctionTemplate,
    HalfspaceSpec,
    Shape,
)
from repro.templates.manager import TemplateManager
from repro.templates.query_template import QueryTemplate
from repro.udf.registry import FunctionRegistry, TableFunction, UdfError

TRIANGLE_TEMPLATE_ID = "skyserver.triangle"

TRIANGLE_SCHEMA = Schema.of(
    ("objID", ColumnType.INT),
    ("ra", ColumnType.FLOAT),
    ("dec", ColumnType.FLOAT),
    ("type", ColumnType.INT),
)

TRIANGLE_SQL = (
    "SELECT n.objID, n.ra, n.dec, n.type, p.u, p.g, p.r "
    "FROM fGetObjFromTriangle($ra1, $dec1, $ra2, $dec2, $ra3, $dec3) n "
    "JOIN PhotoPrimary p ON n.objID = p.objID "
    "WHERE p.r BETWEEN $r_min AND $r_max"
)


def _signed_area(vertices) -> float:
    (x1, y1), (x2, y2), (x3, y3) = vertices
    return 0.5 * ((x2 - x1) * (y3 - y1) - (x3 - x1) * (y2 - y1))


def _edge_halfspace_expr(p: int, q: int) -> HalfspaceSpec:
    """The template halfspace for the directed edge vertex p -> q."""
    normal = (
        parse_expression(f"$dec{q} - $dec{p}"),
        parse_expression(f"$ra{p} - $ra{q}"),
    )
    offset = parse_expression(
        f"($dec{q} - $dec{p}) * $ra{p} + ($ra{p} - $ra{q}) * $dec{p}"
    )
    return HalfspaceSpec(normal=normal, offset=offset)


def triangle_function_template() -> FunctionTemplate:
    """Polytope template: three edge halfspaces plus a vertex bbox."""
    return FunctionTemplate(
        name="fGetObjFromTriangle",
        params=("ra1", "dec1", "ra2", "dec2", "ra3", "dec3"),
        shape=Shape.POLYTOPE,
        dims=2,
        point_exprs=(parse_expression("ra"), parse_expression("dec")),
        low_exprs=(
            parse_expression("least($ra1, $ra2, $ra3)"),
            parse_expression("least($dec1, $dec2, $dec3)"),
        ),
        high_exprs=(
            parse_expression("greatest($ra1, $ra2, $ra3)"),
            parse_expression("greatest($dec1, $dec2, $dec3)"),
        ),
        halfspace_specs=(
            _edge_halfspace_expr(1, 2),
            _edge_halfspace_expr(2, 3),
            _edge_halfspace_expr(3, 1),
        ),
        description="Objects inside a CCW (ra, dec) triangle: a 2-d "
        "convex polytope of three halfspaces.",
    )


def triangle_query_template() -> QueryTemplate:
    return QueryTemplate.from_sql(
        template_id=TRIANGLE_TEMPLATE_ID,
        sql=TRIANGLE_SQL,
        function_template=triangle_function_template(),
        key_column="objID",
        description="Triangular sky search joined back to PhotoPrimary.",
    )


def register_triangle_search(
    registry: FunctionRegistry,
    photo_primary: Table,
    templates: TemplateManager,
    index: SkyGridIndex | None = None,
) -> None:
    """Register the triangle TVF at the origin and its templates."""
    index = index or SkyGridIndex(photo_primary)
    schema = photo_primary.schema
    positions = {
        name: schema.position(name)
        for name in ("objID", "ra", "dec", "type")
    }

    def f_get_obj_from_triangle(catalog, args) -> list[tuple[Any, ...]]:
        values = [float(a) for a in args]
        vertices = [(values[0], values[1]), (values[2], values[3]),
                    (values[4], values[5])]
        area = _signed_area(vertices)
        if area <= 0:
            raise UdfError(
                "fGetObjFromTriangle: vertices must be in counter-"
                "clockwise order and non-degenerate"
            )
        # Interior test: inside every CCW edge halfspace.
        edges = []
        for (px, py), (qx, qy) in (
            (vertices[0], vertices[1]),
            (vertices[1], vertices[2]),
            (vertices[2], vertices[0]),
        ):
            normal = (qy - py, px - qx)
            offset = normal[0] * px + normal[1] * py
            edges.append((normal, offset))

        ra_values = [v[0] for v in vertices]
        dec_values = [v[1] for v in vertices]
        rows = []
        for row_index in index.candidates_in_rect(
            min(ra_values), max(ra_values), min(dec_values), max(dec_values)
        ):
            row = photo_primary.rows[row_index]
            ra = row[positions["ra"]]
            dec = row[positions["dec"]]
            if all(
                normal[0] * ra + normal[1] * dec <= offset + 1e-12
                for normal, offset in edges
            ):
                rows.append(
                    (
                        row[positions["objID"]],
                        ra,
                        dec,
                        row[positions["type"]],
                    )
                )
        rows.sort(key=lambda r: r[0])
        return rows

    registry.register_table(
        TableFunction(
            name="fGetObjFromTriangle",
            params=("ra1", "dec1", "ra2", "dec2", "ra3", "dec3"),
            schema=TRIANGLE_SCHEMA,
            impl=f_get_obj_from_triangle,
            deterministic=True,
            description="Objects inside a CCW (ra, dec) triangle.",
        )
    )
    templates.register_function_template(triangle_function_template())
    templates.register_query_template(triangle_query_template())
