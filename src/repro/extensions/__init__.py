"""Extensions beyond the paper's evaluated configuration.

The paper's Section 3.1 notes that a function's region "can be a
hypercube (most common), a hypersphere, or even a polytope (more
complex)" but evaluates only the first two.  This package carries the
polytope path end to end: a triangular sky-search function, its
polytope function template, and a query template — demonstrating that
the framework's region machinery is not specialized to the two easy
shapes.
"""

from repro.extensions.adaptive import AdaptiveProxy, AdaptiveState
from repro.extensions.triangle import (
    TRIANGLE_TEMPLATE_ID,
    register_triangle_search,
    triangle_function_template,
    triangle_query_template,
)

__all__ = [
    "AdaptiveProxy",
    "AdaptiveState",
    "TRIANGLE_TEMPLATE_ID",
    "register_triangle_search",
    "triangle_function_template",
    "triangle_query_template",
]
