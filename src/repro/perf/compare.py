"""The noise-adjusted regression gate.

Pairs a *current* bench result with its committed *baseline* and
decides, metric by metric, whether performance regressed.  A gated
metric regresses when it moved in the bad direction (per its polarity)
by more than the *allowance*::

    allowance = max(tolerance * |baseline median|,
                    noise_multiplier * (baseline IQR + current IQR))

The first term is the configured relative budget; the second widens it
to the measured run-to-run noise, so a metric recorded with repeat
observations is never failed for ordinary jitter.  Structural problems
fail loudly rather than silently passing: a gated baseline metric
missing from the current run, or a scale mismatch between the two
documents (quick-scale numbers are not comparable to default-scale
ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.schema import BenchResult, Metric

#: Default relative regression budget (10%).
DEFAULT_TOLERANCE = 0.10

#: Default widening factor on the summed IQRs.
DEFAULT_NOISE_MULTIPLIER = 1.5


@dataclass(frozen=True)
class MetricComparison:
    """One metric's verdict in a baseline/current comparison."""

    bench_id: str
    name: str
    unit: str
    polarity: str
    baseline_median: float | None
    current_median: float | None
    worse_by: float
    allowance: float
    gated: bool
    regressed: bool
    note: str = ""

    def format(self) -> str:
        flag = "REGRESSED" if self.regressed else (
            "ungated" if not self.gated else "ok"
        )
        if self.baseline_median is None or self.current_median is None:
            suffix = f" ({self.note})" if self.note else ""
            return f"{self.bench_id}/{self.name}: {flag}{suffix}"
        detail = (
            f"baseline {self.baseline_median:g}{self.unit} -> "
            f"current {self.current_median:g}{self.unit} "
            f"(worse by {self.worse_by:g}, allowed {self.allowance:g})"
        )
        suffix = f"; {self.note}" if self.note else ""
        return f"{self.bench_id}/{self.name}: {flag} {detail}{suffix}"


def _worse_by(baseline: Metric, current: Metric) -> float:
    """How far ``current`` moved in the bad direction (<= 0: improved)."""
    if baseline.polarity == "lower":
        return current.median - baseline.median
    return baseline.median - current.median


def compare_results(
    baseline: BenchResult,
    current: BenchResult,
    tolerance: float = DEFAULT_TOLERANCE,
    noise_multiplier: float = DEFAULT_NOISE_MULTIPLIER,
) -> list[MetricComparison]:
    """Compare one bench's current run against its baseline.

    Returns one :class:`MetricComparison` per baseline metric (plus a
    non-failing note for current-only metrics).  ``regressed`` is also
    set on structural failures: a missing gated metric, a polarity
    change, or mismatched scales.
    """
    if baseline.bench_id != current.bench_id:
        raise ValueError(
            f"cannot compare bench {current.bench_id!r} against "
            f"baseline {baseline.bench_id!r}"
        )
    comparisons: list[MetricComparison] = []
    if (
        baseline.scale is not None
        and current.scale is not None
        and baseline.scale != current.scale
    ):
        comparisons.append(
            MetricComparison(
                bench_id=baseline.bench_id,
                name="<scale>",
                unit="",
                polarity="lower",
                baseline_median=None,
                current_median=None,
                worse_by=0.0,
                allowance=0.0,
                gated=True,
                regressed=True,
                note=(
                    f"scale mismatch: baseline ran at "
                    f"{baseline.scale!r}, current at {current.scale!r}"
                ),
            )
        )
        return comparisons

    for base_metric in baseline.metrics:
        cur_metric = current.metric(base_metric.name)
        if cur_metric is None:
            comparisons.append(
                MetricComparison(
                    bench_id=baseline.bench_id,
                    name=base_metric.name,
                    unit=base_metric.unit,
                    polarity=base_metric.polarity,
                    baseline_median=base_metric.median,
                    current_median=None,
                    worse_by=0.0,
                    allowance=0.0,
                    gated=base_metric.gated,
                    regressed=base_metric.gated,
                    note="metric missing from the current run",
                )
            )
            continue
        if cur_metric.polarity != base_metric.polarity:
            comparisons.append(
                MetricComparison(
                    bench_id=baseline.bench_id,
                    name=base_metric.name,
                    unit=base_metric.unit,
                    polarity=base_metric.polarity,
                    baseline_median=base_metric.median,
                    current_median=cur_metric.median,
                    worse_by=0.0,
                    allowance=0.0,
                    gated=base_metric.gated,
                    regressed=base_metric.gated,
                    note=(
                        f"polarity changed from {base_metric.polarity!r} "
                        f"to {cur_metric.polarity!r}"
                    ),
                )
            )
            continue
        worse = _worse_by(base_metric, cur_metric)
        allowance = max(
            tolerance * abs(base_metric.median),
            noise_multiplier * (base_metric.iqr + cur_metric.iqr),
        )
        gated = base_metric.gated and cur_metric.gated
        comparisons.append(
            MetricComparison(
                bench_id=baseline.bench_id,
                name=base_metric.name,
                unit=base_metric.unit,
                polarity=base_metric.polarity,
                baseline_median=base_metric.median,
                current_median=cur_metric.median,
                worse_by=worse,
                allowance=allowance,
                gated=gated,
                regressed=gated and worse > allowance,
            )
        )
    for cur_metric in current.metrics:
        if cur_metric.name not in {m.name for m in baseline.metrics}:
            comparisons.append(
                MetricComparison(
                    bench_id=baseline.bench_id,
                    name=cur_metric.name,
                    unit=cur_metric.unit,
                    polarity=cur_metric.polarity,
                    baseline_median=None,
                    current_median=cur_metric.median,
                    worse_by=0.0,
                    allowance=0.0,
                    gated=False,
                    regressed=False,
                    note="new metric (no baseline yet)",
                )
            )
    return comparisons
