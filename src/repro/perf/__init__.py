"""Unified bench telemetry and the perf-regression gate.

Every benchmark under ``benchmarks/`` emits its headline numbers
through one :class:`~repro.perf.reporter.BenchReporter`, producing a
canonical JSON document (:mod:`repro.perf.schema`): bench id, metrics
with units and higher/lower-is-better polarity, run metadata, and
repeat statistics with median/IQR noise bounds.  Results land in three
places:

* ``benchmarks/results/<bench_id>.bench.json`` — the latest run;
* ``benchmarks/results/baselines/`` — committed reference runs the
  regression gate compares against;
* ``BENCH_<bench_id>.json`` at the repo root — an append-only
  trajectory, one entry per run, so performance history is diffable
  across PRs.

The gate (``python -m repro.perf compare``) pairs current results with
baselines and exits nonzero on any noise-adjusted regression — the
before/after instrument every speed claim in ROADMAP items 2–5 is
measured with.
"""

from repro.perf.compare import MetricComparison, compare_results
from repro.perf.reporter import BenchReporter
from repro.perf.schema import (
    SCHEMA_VERSION,
    BenchResult,
    Metric,
    PerfSchemaError,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchReporter",
    "BenchResult",
    "Metric",
    "MetricComparison",
    "PerfSchemaError",
    "compare_results",
]
