"""The canonical bench-result document.

One :class:`BenchResult` per benchmark run.  The JSON shape (pinned in
DESIGN.md; bump :data:`SCHEMA_VERSION` on any breaking change)::

    {
      "schema_version": 1,
      "bench_id": "fig5",
      "run": {"scale": "quick", "timestamp_utc": "...", ...},
      "metrics": {
        "nc_response_ms": {
          "unit": "ms",
          "polarity": "lower",
          "values": [2081.4],
          "gated": true,
          "median": 2081.4,
          "iqr": 0.0
        },
        ...
      }
    }

``values`` holds every repeat observation; ``median``/``iqr`` are
derived (and re-derived on load — a document whose stored statistics
disagree with its values fails validation).  ``polarity`` says which
direction is an improvement; ``gated: false`` marks a metric recorded
for trend-watching but exempt from the regression gate (machine-bound
wall-clock numbers too noisy to gate on a shared CI runner).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

#: Bump on any breaking change to the document shape (see DESIGN.md).
SCHEMA_VERSION = 1

#: Allowed ``polarity`` values: which direction is an improvement.
POLARITIES = ("higher", "lower")

#: Relative slack when checking a document's stored median/iqr against
#: the values they are derived from (guards against hand-edited files).
_DERIVED_RTOL = 1e-9


class PerfSchemaError(ValueError):
    """A bench-result document violates the canonical schema."""


def median(values: tuple[float, ...]) -> float:
    """The median of ``values`` (mean of the middle two when even)."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def iqr(values: tuple[float, ...]) -> float:
    """The interquartile range of ``values`` — the noise bound the
    regression gate adds to its tolerance.

    Quartiles use the median-of-halves convention (stable, simple,
    and exact for the small repeat counts benches produce); fewer
    than four observations give an IQR of zero, i.e. no noise
    allowance beyond the configured tolerance.
    """
    if len(values) < 4:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    lower = tuple(ordered[:mid])
    upper = tuple(ordered[-mid:])
    return median(upper) - median(lower)


@dataclass(frozen=True)
class Metric:
    """One measured quantity with its repeat observations."""

    name: str
    unit: str
    polarity: str
    values: tuple[float, ...]
    gated: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise PerfSchemaError("metric name must be non-empty")
        if self.polarity not in POLARITIES:
            raise PerfSchemaError(
                f"metric {self.name!r}: polarity {self.polarity!r} "
                f"not in {POLARITIES}"
            )
        if not self.values:
            raise PerfSchemaError(
                f"metric {self.name!r}: needs at least one value"
            )
        for value in self.values:
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                raise PerfSchemaError(
                    f"metric {self.name!r}: non-numeric value {value!r}"
                )
            if not math.isfinite(value):
                raise PerfSchemaError(
                    f"metric {self.name!r}: non-finite value {value!r}"
                )

    @property
    def median(self) -> float:
        return median(self.values)

    @property
    def iqr(self) -> float:
        return iqr(self.values)

    def to_dict(self) -> dict[str, Any]:
        return {
            "unit": self.unit,
            "polarity": self.polarity,
            "values": list(self.values),
            "gated": self.gated,
            "median": self.median,
            "iqr": self.iqr,
        }

    @staticmethod
    def from_dict(name: str, payload: Mapping[str, Any]) -> "Metric":
        if not isinstance(payload, Mapping):
            raise PerfSchemaError(
                f"metric {name!r}: expected an object, got {payload!r}"
            )
        for key in ("unit", "polarity", "values"):
            if key not in payload:
                raise PerfSchemaError(f"metric {name!r}: missing {key!r}")
        raw_values = payload["values"]
        if not isinstance(raw_values, list):
            raise PerfSchemaError(
                f"metric {name!r}: values must be a list"
            )
        metric = Metric(
            name=name,
            unit=str(payload["unit"]),
            polarity=str(payload["polarity"]),
            values=tuple(float(v) for v in raw_values),
            gated=bool(payload.get("gated", True)),
        )
        for key, derived in (
            ("median", metric.median),
            ("iqr", metric.iqr),
        ):
            if key in payload:
                stored = float(payload[key])
                slack = _DERIVED_RTOL * max(1.0, abs(derived))
                if abs(stored - derived) > slack:
                    raise PerfSchemaError(
                        f"metric {name!r}: stored {key} {stored!r} "
                        f"disagrees with its values (derived {derived!r})"
                    )
        return metric


@dataclass(frozen=True)
class BenchResult:
    """One benchmark run's canonical result document."""

    bench_id: str
    run: dict[str, Any] = field(default_factory=dict)
    metrics: tuple[Metric, ...] = ()
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.bench_id:
            raise PerfSchemaError("bench_id must be non-empty")
        if self.schema_version != SCHEMA_VERSION:
            raise PerfSchemaError(
                f"bench {self.bench_id!r}: schema_version "
                f"{self.schema_version} (this code reads "
                f"{SCHEMA_VERSION})"
            )
        if not self.metrics:
            raise PerfSchemaError(
                f"bench {self.bench_id!r}: needs at least one metric"
            )
        seen: set[str] = set()
        for metric in self.metrics:
            if metric.name in seen:
                raise PerfSchemaError(
                    f"bench {self.bench_id!r}: duplicate metric "
                    f"{metric.name!r}"
                )
            seen.add(metric.name)

    @property
    def scale(self) -> str | None:
        """The experiment scale the run used, if recorded."""
        scale = self.run.get("scale")
        return scale if isinstance(scale, str) else None

    def metric(self, name: str) -> Metric | None:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "bench_id": self.bench_id,
            "run": dict(self.run),
            "metrics": {m.name: m.to_dict() for m in self.metrics},
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "BenchResult":
        if not isinstance(payload, Mapping):
            raise PerfSchemaError(
                f"expected a bench-result object, got {payload!r}"
            )
        for key in ("schema_version", "bench_id", "metrics"):
            if key not in payload:
                raise PerfSchemaError(f"bench result missing {key!r}")
        raw_metrics = payload["metrics"]
        if not isinstance(raw_metrics, Mapping):
            raise PerfSchemaError("metrics must be an object")
        run = payload.get("run", {})
        if not isinstance(run, Mapping):
            raise PerfSchemaError("run metadata must be an object")
        return BenchResult(
            bench_id=str(payload["bench_id"]),
            run=dict(run),
            metrics=tuple(
                Metric.from_dict(str(name), raw_metrics[name])
                for name in sorted(raw_metrics)
            ),
            schema_version=int(payload["schema_version"]),
        )


def load_result(path: str | Path) -> BenchResult:
    """Read and validate one ``*.bench.json`` document."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PerfSchemaError(f"{path}: not valid JSON ({exc})") from exc
    try:
        return BenchResult.from_dict(payload)
    except PerfSchemaError as exc:
        raise PerfSchemaError(f"{path}: {exc}") from exc


def load_results_dir(directory: str | Path) -> dict[str, BenchResult]:
    """All ``*.bench.json`` documents in ``directory``, by bench id."""
    results: dict[str, BenchResult] = {}
    for path in sorted(Path(directory).glob("*.bench.json")):
        result = load_result(path)
        if result.bench_id in results:
            raise PerfSchemaError(
                f"{directory}: duplicate bench id {result.bench_id!r}"
            )
        results[result.bench_id] = result
    return results
