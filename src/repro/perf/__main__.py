"""The perf-telemetry command line.

::

    python -m repro.perf compare --baseline DIR|FILE --current DIR|FILE
                                 [--tolerance 0.10]
                                 [--noise-multiplier 1.5]
                                 [--bench BENCH_ID ...]
    python -m repro.perf validate PATH [PATH ...]
    python -m repro.perf promote --current DIR --baseline DIR
                                 [BENCH_ID ...]

``compare`` is the CI regression gate: every baseline document must
have a schema-valid current counterpart, and every gated metric must
stay within its noise-adjusted allowance; any violation exits 1.
Current results without a baseline are reported but never fail — new
benches gate only once their baseline is promoted.

``validate`` schema-checks documents (exit 1 on the first violation).

``promote`` copies current ``*.bench.json`` documents into the
baseline store (all of them, or just the named bench ids) — run it
locally after an intentional performance change and commit the result.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf.compare import (
    DEFAULT_NOISE_MULTIPLIER,
    DEFAULT_TOLERANCE,
    compare_results,
)
from repro.perf.schema import (
    BenchResult,
    PerfSchemaError,
    load_result,
    load_results_dir,
)
from repro.persistence.atomic import atomic_write_text


def _load(path: Path) -> dict[str, BenchResult]:
    """Bench results at ``path`` (one file, or every file in a dir)."""
    if path.is_dir():
        return load_results_dir(path)
    result = load_result(path)
    return {result.bench_id: result}


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        baselines = _load(Path(args.baseline))
        currents = _load(Path(args.current))
    except (PerfSchemaError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    if not baselines:
        print(f"error: no *.bench.json baselines under {args.baseline}")
        return 1
    wanted = sorted(args.bench_ids or baselines)
    unknown = [b for b in wanted if b not in baselines]
    if unknown:
        print(
            f"error: no baseline for {', '.join(unknown)} under "
            f"{args.baseline}"
        )
        return 1
    failures = 0
    for bench_id in wanted:
        baseline = baselines[bench_id]
        current = currents.get(bench_id)
        if current is None:
            print(
                f"{bench_id}: REGRESSED (baseline has no current "
                f"result under {args.current})"
            )
            failures += 1
            continue
        for comparison in compare_results(
            baseline,
            current,
            tolerance=args.tolerance,
            noise_multiplier=args.noise_multiplier,
        ):
            print(comparison.format())
            if comparison.regressed:
                failures += 1
    if not args.bench_ids:
        for bench_id in sorted(set(currents) - set(baselines)):
            print(f"{bench_id}: no baseline yet (not gated)")
    if failures:
        print(f"\n{failures} regression(s) against baselines")
        return 1
    print("\nall gated metrics within tolerance")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for raw in args.paths:
        path = Path(raw)
        files = (
            sorted(path.glob("*.bench.json")) if path.is_dir() else [path]
        )
        if not files:
            print(f"{path}: no *.bench.json documents")
            status = 1
            continue
        for file in files:
            try:
                result = load_result(file)
            except (PerfSchemaError, OSError) as exc:
                print(f"invalid: {exc}")
                status = 1
            else:
                print(
                    f"{file}: ok ({result.bench_id}, "
                    f"{len(result.metrics)} metrics)"
                )
    return status


def _cmd_promote(args: argparse.Namespace) -> int:
    current_dir = Path(args.current)
    baseline_dir = Path(args.baseline)
    try:
        currents = load_results_dir(current_dir)
    except PerfSchemaError as exc:
        print(f"error: {exc}")
        return 1
    wanted = args.bench_ids or sorted(currents)
    missing = [b for b in wanted if b not in currents]
    if missing:
        print(
            f"error: no current result for {', '.join(missing)} "
            f"under {current_dir}"
        )
        return 1
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for bench_id in wanted:
        document = currents[bench_id].to_dict()
        atomic_write_text(
            baseline_dir / f"{bench_id}.bench.json",
            json.dumps(document, indent=2, sort_keys=True) + "\n",
        )
        print(f"promoted {bench_id} -> {baseline_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="bench-result schema tools and the regression gate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare", help="gate current results against baselines"
    )
    compare.add_argument("--baseline", required=True)
    compare.add_argument("--current", required=True)
    compare.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative regression budget (default 0.10)",
    )
    compare.add_argument(
        "--noise-multiplier", type=float,
        default=DEFAULT_NOISE_MULTIPLIER,
        help="widening factor on summed IQRs (default 1.5)",
    )
    compare.add_argument(
        "--bench", action="append", dest="bench_ids", metavar="BENCH_ID",
        help="gate only this bench id (repeatable; default: every "
        "baseline document)",
    )
    compare.set_defaults(func=_cmd_compare)

    validate = sub.add_parser(
        "validate", help="schema-check bench-result documents"
    )
    validate.add_argument("paths", nargs="+")
    validate.set_defaults(func=_cmd_validate)

    promote = sub.add_parser(
        "promote", help="copy current results into the baseline store"
    )
    promote.add_argument("--current", required=True)
    promote.add_argument("--baseline", required=True)
    promote.add_argument("bench_ids", nargs="*")
    promote.set_defaults(func=_cmd_promote)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
