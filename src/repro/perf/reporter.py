"""The one way benchmarks report results.

A :class:`BenchReporter` collects metrics during a bench, then
:meth:`~BenchReporter.finish` validates them against the canonical
schema, writes ``<results_dir>/<bench_id>.bench.json`` (atomically),
appends a compact entry to the ``BENCH_<bench_id>.json`` trajectory at
the repo root, and prints a one-table summary.  The FP308 lint rule
forbids ``bench_*.py`` files from printing results themselves — all
human- and machine-readable output funnels through here, so every
bench stays comparable and gateable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.wallclock import utc_timestamp
from repro.perf.schema import BenchResult, Metric
from repro.persistence.atomic import atomic_write_text

#: Entries kept per trajectory file; the oldest are dropped first, so
#: a long-lived checkout does not grow the file without bound.
TRAJECTORY_LIMIT = 200


class BenchReporter:
    """Collects one benchmark's metrics and emits the canonical result.

    ::

        report = BenchReporter("fig5", scale="quick",
                               results_dir=RESULTS_DIR,
                               trajectory_dir=REPO_ROOT)
        report.metric("nc_response_ms", 2081.4, unit="ms")
        report.finish()

    ``metric`` accepts a single value or a list of repeat observations
    (the latter is what gives the regression gate an honest noise
    bound).  ``polarity`` defaults to ``lower`` (latencies dominate
    the suite); pass ``"higher"`` for throughput/efficiency numbers
    and ``gated=False`` for trend-only metrics the gate must ignore.
    """

    def __init__(
        self,
        bench_id: str,
        scale: str,
        results_dir: str | Path,
        trajectory_dir: str | Path | None = None,
        run_info: dict[str, Any] | None = None,
    ) -> None:
        self.bench_id = bench_id
        self.scale = scale
        self.results_dir = Path(results_dir)
        self.trajectory_dir = (
            None if trajectory_dir is None else Path(trajectory_dir)
        )
        self.run_info = dict(run_info or {})
        self._metrics: list[Metric] = []
        self._finished = False

    def metric(
        self,
        name: str,
        value: float | list[float] | tuple[float, ...],
        unit: str,
        polarity: str = "lower",
        gated: bool = True,
    ) -> None:
        """Record one metric (single value or repeat observations)."""
        if isinstance(value, (int, float)):
            values: tuple[float, ...] = (float(value),)
        else:
            values = tuple(float(v) for v in value)
        self._metrics.append(
            Metric(
                name=name,
                unit=unit,
                polarity=polarity,
                values=values,
                gated=gated,
            )
        )

    def result(self) -> BenchResult:
        """The validated result document for what was recorded so far."""
        return BenchResult(
            bench_id=self.bench_id,
            run={
                "scale": self.scale,
                "timestamp_utc": utc_timestamp(),
                **self.run_info,
            },
            metrics=tuple(self._metrics),
        )

    def finish(self) -> BenchResult:
        """Validate, persist, append the trajectory, print the summary."""
        if self._finished:
            raise RuntimeError(
                f"bench {self.bench_id!r}: finish() called twice"
            )
        result = self.result()  # validates via the schema dataclasses
        self._finished = True
        self.results_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.results_dir / f"{self.bench_id}.bench.json",
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
        )
        if self.trajectory_dir is not None:
            self._append_trajectory(result)
        print()
        print(self._render(result))
        return result

    # ------------------------------------------------------- internals
    def _append_trajectory(self, result: BenchResult) -> None:
        assert self.trajectory_dir is not None
        path = self.trajectory_dir / f"BENCH_{self.bench_id}.json"
        entries: list[dict[str, Any]] = []
        if path.exists():
            try:
                loaded = json.loads(path.read_text(encoding="utf-8"))
                if isinstance(loaded, list):
                    entries = loaded
            except (OSError, json.JSONDecodeError):
                # A damaged trajectory never fails a bench run; the
                # history restarts from this entry.
                entries = []
        entries.append(
            {
                "run": dict(result.run),
                "metrics": {
                    m.name: {"median": m.median, "unit": m.unit}
                    for m in result.metrics
                },
            }
        )
        atomic_write_text(
            path,
            json.dumps(entries[-TRAJECTORY_LIMIT:], indent=2) + "\n",
        )

    @staticmethod
    def _render(result: BenchResult) -> str:
        header = (
            f"bench {result.bench_id} "
            f"(scale={result.run.get('scale', '?')})"
        )
        lines = [header, "-" * len(header)]
        width = max(len(m.name) for m in result.metrics)
        for m in result.metrics:
            noise = f" iqr={m.iqr:g}" if len(m.values) >= 4 else ""
            gate = "" if m.gated else "  [ungated]"
            lines.append(
                f"{m.name:<{width}}  {m.median:>14g} {m.unit}"
                f" ({m.polarity} is better, n={len(m.values)}"
                f"{noise}){gate}"
            )
        return "\n".join(lines)
