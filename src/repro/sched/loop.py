"""A deterministic discrete-event loop on a virtual time axis.

The loop owns its own ``now_ms`` — *event time* — and never touches
the proxy's work clock.  Events are ``(time_ms, seq, fn)`` triples in
a heap: ties dispatch in submission order, so a run is reproducible
down to the callback sequence.  Callbacks are invoked with the
``sched.queue`` lock released; scheduling from inside a callback is
the normal way to express closed loops.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.locking import guarded_by, named_lock


@guarded_by("sched.queue", "_now_ms", "_seq", "dispatched")
class EventLoop:
    """Single-threaded discrete-event scheduler.

    ``run`` is meant to be driven from one thread; the ``sched.queue``
    lock still guards the heap and the time axis so callbacks running
    under other locks (e.g. an observer fired from the admission
    controller) may safely schedule follow-up events.
    """

    def __init__(self) -> None:
        self._lock = named_lock("sched.queue")
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._now_ms = 0.0
        self._seq = 0
        #: Events dispatched over the loop's lifetime (diagnostics).
        self.dispatched = 0

    @property
    def now_ms(self) -> float:
        """Current event time (virtual ms since the loop started)."""
        return self._now_ms

    @property
    def pending(self) -> int:
        """Events scheduled but not yet dispatched."""
        return len(self._heap)

    def at(self, time_ms: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute event time ``time_ms``.

        A time already in the past is clamped to *now*: events never
        run the clock backwards.
        """
        with self._lock:
            self._seq += 1
            when = max(float(time_ms), self._now_ms)
            heapq.heappush(self._heap, (when, self._seq, fn))

    def after(self, delay_ms: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` ``delay_ms`` after the current event time."""
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        self.at(self._now_ms + delay_ms, fn)

    def run(
        self,
        until_ms: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Dispatch events in time order; returns how many ran.

        Stops when the heap is empty, when the next event lies beyond
        ``until_ms`` (that event stays scheduled), or after
        ``max_events`` dispatches — whichever comes first.  Callbacks
        run with the loop lock released.
        """
        ran = 0
        while max_events is None or ran < max_events:
            with self._lock:
                if not self._heap:
                    break
                when, _seq, fn = self._heap[0]
                if until_ms is not None and when > until_ms:
                    break
                heapq.heappop(self._heap)
                self._now_ms = when
                self.dispatched += 1
            fn()
            ran += 1
        return ran
