"""Deterministic discrete-event serving: loop + proxy frontend.

The paper measures response time at a browser emulator replaying one
query at a time; the heavy-traffic north star needs *thousands* of
closed-loop clients hitting one proxy.  Real threads cannot do that
deterministically (or cheaply), so this package provides:

* :class:`~repro.sched.loop.EventLoop` — a seedable discrete-event
  scheduler with its own virtual time axis (``now_ms``).  It never
  touches the proxy's :class:`~repro.network.clock.SimulatedClock`:
  the work clock keeps charging per-query costs exactly as before,
  while the loop decides *when* each client's next arrival happens.
* :class:`~repro.sched.frontend.ProxyFrontend` — the bridge: arrivals
  enter the :class:`~repro.admission.AdmissionController`'s bounded
  accept queue, dispatch as serve slots free up (queue wait charged to
  the query's ``admit.queue`` step), and turn into structured
  ``shed`` / ``queued-timeout`` records when admission turns them
  away.

Determinism: with the same seeds, client mix, and config, a run
produces the same dispatch order, the same records, and the same
saturation curve — the property the benchmarks and the CI smoke job
rely on.
"""

from repro.sched.frontend import ProxyFrontend
from repro.sched.loop import EventLoop

__all__ = ["EventLoop", "ProxyFrontend"]
