"""The event-driven serving frontend: queue at the proxy, not inside it.

:class:`ProxyFrontend` is how thousands of simulated clients share one
proxy.  An arrival is submitted on the event loop's time axis and
enters the admission controller's bounded accept queue; whenever a
serve slot is free the frontend dispatches the next queued request —
charging its queue wait to the query's ``admit.queue`` step — and
schedules a completion event after the query's simulated service time.
Turned-away work (queue full, quota, overload fast-fail, deadline
passed while queued) becomes structured ``shed`` / ``queued-timeout``
records through :meth:`~repro.core.proxy.FunctionProxy.reject`, so
every submission produces exactly one record and ``serve`` semantics
(never raises) carry over to the event-driven path.

The frontend is single-threaded by design — it lives on the event
loop's thread; the admission controller and the proxy underneath do
their own locking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.admission.config import REASON_DEADLINE, REASON_QUEUE_FULL
from repro.admission.controller import AdmissionController, QueuedRequest
from repro.core.proxy import FunctionProxy, ProxyResponse
from repro.core.stats import QueryOutcome
from repro.locking import unshared
from repro.obs.events import EV_QUEUE_DEADLINE_DROPS
from repro.sched.loop import EventLoop


@dataclass(frozen=True)
class _Submission:
    """What travels through the accept queue for one arrival."""

    bound: Any
    on_done: Callable[[ProxyResponse], None] | None = None


@unshared("submitted", "completed", "rejected")
class ProxyFrontend:
    """Closed-loop serving through the admission queue.

    ``submit`` never raises and always leads to exactly one finished
    :class:`~repro.core.stats.QueryRecord` per arrival — immediately
    (shed) or eventually (dispatch, or deadline drop at dispatch
    time).  Completion callbacks run on the event loop.
    """

    def __init__(
        self,
        proxy: FunctionProxy,
        loop: EventLoop,
        controller: AdmissionController | None = None,
    ) -> None:
        controller = controller or proxy.admission
        if controller is None:
            raise ValueError(
                "the frontend needs an admission controller: pass one "
                "or build the proxy with admission=..."
            )
        if proxy.admission is None:
            controller.bind(
                proxy.obs,
                allow_degrade=(
                    proxy.resilience.degradation.tunnel_on_overload
                ),
            )
        self.proxy = proxy
        self.loop = loop
        self.controller = controller
        # Telemetry joins the load timeline: events and samples from
        # inside serve stages stamp event time, matching the admission
        # controller's breaker clock (synced to each enqueue/dequeue).
        proxy.telemetry_clock = loop
        self.submitted = 0
        self.completed = 0
        self.rejected = 0

    @property
    def templates(self) -> Any:
        """The proxy's template manager (the driver binds through it)."""
        return self.proxy.templates

    def submit(
        self,
        bound: Any,
        tenant: str = "default",
        cost_hint: float = 1.0,
        on_done: Callable[[ProxyResponse], None] | None = None,
    ) -> None:
        """One arrival at the current event time."""
        self.submitted += 1
        submission = _Submission(bound, on_done)
        verdict, evicted = self.controller.enqueue(
            submission, tenant, self.loop.now_ms, cost_hint=cost_hint
        )
        if evicted is not None:
            # shed-cheapest displaced queued work to park this arrival.
            self._reject(
                evicted,
                REASON_QUEUE_FULL,
                QueryOutcome.SHED,
            )
        if not verdict.admitted:
            response = self.proxy.reject(
                bound, verdict.reason, QueryOutcome.SHED
            )
            self.rejected += 1
            self._finish(submission, response)
        self.pump()

    def pump(self) -> None:
        """Dispatch queued work while serve slots are free."""
        while True:
            got, waited_ms, expired = self.controller.dequeue(
                self.loop.now_ms
            )
            if expired:
                self.proxy.obs.telemetry_event(
                    EV_QUEUE_DEADLINE_DROPS,
                    at_ms=self.loop.now_ms,
                    count=len(expired),
                )
            for stale in expired:
                self._reject(
                    stale, REASON_DEADLINE, QueryOutcome.QUEUED_TIMEOUT
                )
            if got is None:
                return
            self._dispatch(got, waited_ms)

    # ----------------------------------------------------------- internal
    def _dispatch(self, request: QueuedRequest, waited_ms: float) -> None:
        submission = request.item
        response = self.proxy.serve_admitted(
            submission.bound,
            queue_wait_ms=waited_ms,
            degrade=request.degrade,
        )
        # The slot stays busy for the query's service time on the event
        # axis; the queue wait already elapsed while it was parked.
        service_ms = max(0.0, response.record.response_ms - waited_ms)
        self.loop.after(
            service_ms, lambda: self._complete(submission, response)
        )

    def _complete(
        self, submission: _Submission, response: ProxyResponse
    ) -> None:
        self.controller.release()
        self._finish(submission, response)
        self.pump()

    def _reject(
        self,
        request: QueuedRequest,
        reason: str,
        outcome: QueryOutcome,
    ) -> None:
        submission = request.item
        waited_ms = max(0.0, self.loop.now_ms - request.enqueued_at_ms)
        response = self.proxy.reject(
            submission.bound, reason, outcome, queue_wait_ms=waited_ms
        )
        self.rejected += 1
        self._finish(submission, response)

    def _finish(
        self, submission: _Submission, response: ProxyResponse
    ) -> None:
        self.completed += 1
        if submission.on_done is not None:
            submission.on_done(response)
