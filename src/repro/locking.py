"""Named locks, guarded-state registration, and the order sanitizer.

The concurrency-safety story has three legs, and this module is the
runtime leg (the other two are the static analyzer
:mod:`repro.analysis.concurrency` and the ``FP309`` lint rule):

* :func:`named_lock` is the **one sanctioned way to construct a lock**.
  Every lock carries a stable *role name* (``"proxy.cache"``,
  ``"persistence.journal"``, ...) so the static analyzer can reason
  about lock identity across classes and files, and the runtime
  sanitizer can talk about acquisition order in the same vocabulary.
  Constructing ``threading.Lock()`` / ``threading.RLock()`` anywhere
  else in the repository is flagged as ``FP309``.

* :func:`guarded_by` / :func:`unshared` / :func:`read_only` register a
  class's shared mutable attributes for the analyzer (the decorator
  form of the ``# guarded-by: <lock>`` comment convention).  The
  decorators also leave the registration on the class
  (``__concurrency_guards__``) so tests and tooling can introspect it.

* :class:`LockOrderSanitizer` is the **debug-mode runtime check**: when
  enabled (tests; never the default), every :class:`NamedLock`
  acquisition records *held-lock -> acquired-lock* edges on a
  per-thread stack and raises :class:`LockOrderError` the moment two
  locks are ever taken in both orders — the dynamic mirror of the
  analyzer's static FP404 cycle check, catching interleavings that a
  deadlock would otherwise only reveal under load.

Lock names are roles, not instances: every ``CacheManager`` constructs
its own ``named_lock("proxy.cache")``.  Re-acquiring a *name* a thread
already holds is treated as reentrant (all named locks are RLocks), so
two same-role locks nested — e.g. two caches in one process — do not
trip the sanitizer.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, TypeVar

_T = TypeVar("_T")

#: Registration kinds a class can declare for an attribute.
GUARDED = "guarded"
UNSHARED = "unshared"
READ_ONLY = "read-only"


class LockOrderError(RuntimeError):
    """Two locks were acquired in both orders (potential deadlock)."""


class LockOrderSanitizer:
    """Records actual lock-acquisition order and flags inversions.

    Keeps one held-lock stack per thread and a process-wide set of
    observed ``(outer, inner)`` name pairs.  Acquiring ``B`` while
    holding ``A`` records ``A -> B`` for every held ``A``; if ``B -> A``
    was ever observed (or statically declared via ``edges``), the
    acquisition raises :class:`LockOrderError` instead of deadlocking
    later.  The observed set is what tests assert against the static
    lock-order graph built by :mod:`repro.analysis.concurrency`.
    """

    def __init__(
        self, edges: Iterable[tuple[str, str]] | None = None
    ) -> None:
        # The sanitizer's own lock is infrastructure, not a registry
        # lock: it guards the observed-edge set below and must never
        # itself participate in ordering.
        self._mutex = threading.Lock()
        self._held = threading.local()  # unshared: per-thread stack
        self._observed: set[tuple[str, str]] = set()  # guarded-by: _mutex
        if edges is not None:
            self._observed.update(
                (str(outer), str(inner)) for outer, inner in edges
            )

    # ------------------------------------------------------------ state
    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held(self) -> tuple[str, ...]:
        """The lock names the calling thread currently holds."""
        return tuple(self._stack())

    def observed_edges(self) -> set[tuple[str, str]]:
        """Every ``(outer, inner)`` acquisition pair seen so far."""
        with self._mutex:
            return set(self._observed)

    # ------------------------------------------------------- lifecycle
    def acquiring(self, name: str) -> list[tuple[str, str]]:
        """Called by :class:`NamedLock` before an acquire attempt.

        Validates every edge of the attempt against the observed set
        *before* committing any of them, so a rejected acquisition
        never leaves a partial record behind (an edge committed ahead
        of a later inverse would turn into a false positive for some
        other thread).  Returns the edges this attempt newly added;
        :meth:`abandoned` takes them back if the acquire then fails.
        """
        stack = self._stack()
        if name in stack:  # reentrant by role name: no new edges
            stack.append(name)
            return []
        attempt = [(held, name) for held in dict.fromkeys(stack)]
        with self._mutex:
            for edge in attempt:
                inverse = (edge[1], edge[0])
                if inverse in self._observed:
                    raise LockOrderError(
                        f"lock order inversion: acquiring {name!r} while "
                        f"holding {edge[0]!r}, but {inverse[0]!r} -> "
                        f"{inverse[1]!r} was previously "
                        "observed or declared"
                    )
            added = [
                edge for edge in attempt if edge not in self._observed
            ]
            self._observed.update(added)
        stack.append(name)
        return added

    def abandoned(self, name: str, edges: list[tuple[str, str]]) -> None:
        """Called by :class:`NamedLock` after a *failed* non-blocking
        acquire: unwind the stack entry and retract the edges the
        attempt recorded — an ordering that was never established must
        not later trip a false :class:`LockOrderError`.

        Best-effort on a concurrent duplicate: another thread that
        established the same edge between this attempt and its
        retraction loses the record too (debug-mode tooling; the next
        successful acquisition re-records it).
        """
        self.released(name)
        if edges:
            with self._mutex:
                self._observed.difference_update(edges)

    def released(self, name: str) -> None:
        """Called by :class:`NamedLock` after a release."""
        stack = self._stack()
        # Unwind the most recent acquisition of this name; releases out
        # of acquisition order are tolerated the same way the span
        # tracer tolerates out-of-order exits.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def assert_consistent_with(
        self, edges: Iterable[tuple[str, str]]
    ) -> None:
        """Every observed edge must appear in the static graph.

        ``edges`` is the edge set of the analyzer's static
        lock-acquisition-order graph; an observed edge outside it means
        runtime behavior the analysis did not predict.
        """
        static = {(str(a), str(b)) for a, b in edges}
        unexpected = sorted(self.observed_edges() - static)
        if unexpected:
            raise LockOrderError(
                "runtime acquisition edges missing from the static "
                f"lock-order graph: {unexpected}"
            )


#: The process-wide sanitizer, or None (the default: zero overhead
#: beyond one attribute read per acquire).  Installed by tests via
#: enable_lock_sanitizer(); never enabled on the production hot path.
_sanitizer: LockOrderSanitizer | None = None  # unshared: installed once, before threads start


def enable_lock_sanitizer(
    edges: Iterable[tuple[str, str]] | None = None,
) -> LockOrderSanitizer:
    """Install (and return) a fresh process-wide sanitizer.

    ``edges`` pre-declares a static acquisition order, so an inversion
    of a *declared* edge trips even if the straight order was never
    exercised at runtime.
    """
    global _sanitizer
    _sanitizer = LockOrderSanitizer(edges)
    return _sanitizer


def disable_lock_sanitizer() -> None:
    """Remove the process-wide sanitizer."""
    global _sanitizer
    _sanitizer = None


def current_sanitizer() -> LockOrderSanitizer | None:
    """The installed sanitizer, if any."""
    return _sanitizer


class NamedLock:
    """A reentrant lock with a stable role name.

    The name is the analyzer's unit of lock identity: a ``# guarded-by:
    proxy.cache`` annotation refers to whichever :class:`NamedLock`
    instance carries that role in the owning object.  Use as a context
    manager (``with self._lock:``) — the FP306 lint rule already bans
    manual ``__enter__`` calls, and the analyzer recognizes
    ``acquire()``/``release()`` pairs only for the try/finally idiom.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("a lock needs a non-empty role name")
        self.name = name
        self._lock = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        sanitizer = _sanitizer
        attempt_edges: list[tuple[str, str]] = []
        if sanitizer is not None:
            attempt_edges = sanitizer.acquiring(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if not acquired and sanitizer is not None:
            sanitizer.abandoned(self.name, attempt_edges)
        return acquired

    def release(self) -> None:
        self._lock.release()
        sanitizer = _sanitizer
        if sanitizer is not None:
            sanitizer.released(self.name)

    def __enter__(self) -> "NamedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<NamedLock {self.name!r}>"


def named_lock(name: str) -> NamedLock:
    """The one sanctioned lock constructor (see FP309).

    Locks constructed here are nameable by the static analyzer; a raw
    ``threading.Lock()`` is anonymous and invisible to both the
    guarded-write check and the lock-order graph.
    """
    return NamedLock(name)


def _register(
    cls: type[_T], kind: str, lock: str | None, attrs: tuple[str, ...]
) -> type[_T]:
    guards = dict(getattr(cls, "__concurrency_guards__", {}))
    for attr in attrs:
        guards[attr] = (kind, lock)
    cls.__concurrency_guards__ = guards  # type: ignore[attr-defined]
    return cls


def guarded_by(
    lock: str, *attrs: str
) -> Callable[[type[_T]], type[_T]]:
    """Class decorator: ``attrs`` may only be written under ``lock``.

    The decorator form of the ``# guarded-by: <lock>`` comment; the
    static analyzer reads either.  ``lock`` is a role name constructed
    somewhere via :func:`named_lock`.
    """

    def decorate(cls: type[_T]) -> type[_T]:
        return _register(cls, GUARDED, lock, attrs)

    return decorate


def unshared(*attrs: str) -> Callable[[type[_T]], type[_T]]:
    """Class decorator: ``attrs`` are never shared across threads.

    The explicit waiver for per-query / per-thread state (spans,
    decision traces in flight) — the analyzer inventories the attribute
    but skips the guarded-write check.
    """

    def decorate(cls: type[_T]) -> type[_T]:
        return _register(cls, UNSHARED, None, attrs)

    return decorate


def read_only(*attrs: str) -> Callable[[type[_T]], type[_T]]:
    """Class decorator: ``attrs`` are set during init and never again.

    The analyzer enforces the claim: any post-``__init__`` write to a
    read-only attribute is FP403.
    """

    def decorate(cls: type[_T]) -> type[_T]:
        return _register(cls, READ_ONLY, None, attrs)

    return decorate


__all__ = [
    "GUARDED",
    "LockOrderError",
    "LockOrderSanitizer",
    "NamedLock",
    "READ_ONLY",
    "UNSHARED",
    "current_sanitizer",
    "disable_lock_sanitizer",
    "enable_lock_sanitizer",
    "guarded_by",
    "named_lock",
    "read_only",
    "unshared",
]
