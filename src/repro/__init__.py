"""Function Proxy: template-based proxy caching for table-valued functions.

A from-scratch reproduction of Luo & Xue, *Template-Based Proxy Caching
for Table-Valued Functions* (2004): a web proxy that performs *active
semantic caching* for SQL queries with embedded table-valued
user-defined functions, by registering function templates that abstract
each function as a spatial region selection query.

Quickstart::

    from repro import (
        CachingScheme, FunctionProxy, OriginServer, SkyCatalogConfig,
    )

    origin = OriginServer.skyserver(SkyCatalogConfig(n_objects=50_000))
    proxy = FunctionProxy(
        origin, origin.templates, scheme=CachingScheme.FULL_SEMANTIC
    )
    response = proxy.serve_form(
        "Radial", {"ra": "165.0", "dec": "8.0", "radius": "10"}
    )
    print(len(response.result), "objects,", response.record.status)

Package map (see DESIGN.md for the full inventory):

=====================  =================================================
``repro.core``         the function proxy: cache manager, descriptions
                       (array / R-tree), caching schemes, local
                       evaluation, remainder queries
``repro.templates``    function templates, query templates, info files
``repro.server``       the origin web site (synthetic SkyServer)
``repro.relational``   the in-memory relational engine
``repro.sqlparser``    SQL dialect parser
``repro.udf``          user-defined function framework + SkyServer lib
``repro.skydata``      synthetic sky catalog + spatial index
``repro.geometry``     region shapes and relations
``repro.network``      simulated clock, links, topology
``repro.workload``     trace generator, analyzer, browser emulator
``repro.harness``      per-table/figure experiment runners
``repro.webapp``       Flask HTTP deployment (optional)
=====================  =================================================
"""

from repro.core.proxy import FunctionProxy, ProxyResponse
from repro.core.schemes import CachingScheme
from repro.core.description import ArrayDescription, RTreeDescription
from repro.core.stats import QueryStatus, TraceStats
from repro.server.origin import OriginServer
from repro.server.costs import ServerCostModel
from repro.core.costs import ProxyCostModel
from repro.network.link import NetworkLink, Topology
from repro.skydata.generator import SkyCatalogConfig
from repro.templates.manager import BoundQuery, TemplateManager
from repro.templates.function_template import FunctionTemplate, Shape
from repro.templates.query_template import QueryTemplate
from repro.templates.info_file import TemplateInfoFile
from repro.workload.generator import RadialTraceConfig, generate_radial_trace
from repro.workload.rbe import BrowserEmulator
from repro.workload.trace import Trace, TraceQuery

__version__ = "1.0.0"

__all__ = [
    "ArrayDescription",
    "BoundQuery",
    "BrowserEmulator",
    "CachingScheme",
    "FunctionProxy",
    "FunctionTemplate",
    "NetworkLink",
    "OriginServer",
    "ProxyCostModel",
    "ProxyResponse",
    "QueryStatus",
    "QueryTemplate",
    "RTreeDescription",
    "RadialTraceConfig",
    "ServerCostModel",
    "Shape",
    "SkyCatalogConfig",
    "TemplateInfoFile",
    "TemplateManager",
    "Topology",
    "Trace",
    "TraceQuery",
    "TraceStats",
    "generate_radial_trace",
]
