"""Tokenizer for the function-embedded SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from repro.sqlparser.errors import ParseError

KEYWORDS = {
    "select",
    "top",
    "from",
    "join",
    "inner",
    "on",
    "where",
    "and",
    "or",
    "not",
    "between",
    "in",
    "is",
    "null",
    "as",
    "order",
    "by",
    "asc",
    "desc",
    "group",
    "distinct",
}

# Multi-character operators must be matched before their prefixes.
OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
PUNCTUATION = ("(", ")", ",", ".")


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAMETER = "parameter"  # $name template placeholder
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word.lower()


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on stray characters."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            # SQL line comment.
            newline = text.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            token, i = _scan_number(text, i)
            yield token
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.lower() in KEYWORDS:
                yield Token(TokenType.KEYWORD, word.lower(), start)
            else:
                yield Token(TokenType.IDENTIFIER, word, start)
            continue
        if ch == "$":
            start = i
            i += 1
            name_start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            if i == name_start:
                raise ParseError("'$' must be followed by a parameter name", start)
            yield Token(TokenType.PARAMETER, text[name_start:i], start)
            continue
        if ch == "'":
            token, i = _scan_string(text, i)
            yield token
            continue
        matched_operator = next(
            (op for op in OPERATORS if text.startswith(op, i)), None
        )
        if matched_operator is not None:
            # Normalize the two not-equal spellings.
            value = "<>" if matched_operator == "!=" else matched_operator
            yield Token(TokenType.OPERATOR, value, i)
            i += len(matched_operator)
            continue
        if ch in PUNCTUATION:
            yield Token(TokenType.PUNCT, ch, i)
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.END, None, n)


def _scan_number(text: str, start: int) -> tuple[Token, int]:
    i = start
    n = len(text)
    saw_dot = False
    saw_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not saw_dot and not saw_exp:
            # A dot followed by a letter is a qualified name, not a decimal.
            if i + 1 < n and text[i + 1].isalpha():
                break
            saw_dot = True
            i += 1
        elif ch in "eE" and not saw_exp and i > start:
            lookahead = i + 1
            if lookahead < n and text[lookahead] in "+-":
                lookahead += 1
            if lookahead < n and text[lookahead].isdigit():
                saw_exp = True
                i = lookahead
            else:
                break
        else:
            break
    literal = text[start:i]
    try:
        value: Any = float(literal) if (saw_dot or saw_exp) else int(literal)
    except ValueError:
        raise ParseError(f"malformed number {literal!r}", start) from None
    return Token(TokenType.NUMBER, value, start), i


def _scan_string(text: str, start: int) -> tuple[Token, int]:
    """Single-quoted string; '' is the escaped quote (SQL convention)."""
    i = start + 1
    n = len(text)
    parts: list[str] = []
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", start)
