"""AST nodes for the function-embedded SELECT dialect.

WHERE clauses and select-list expressions reuse the engine's expression
nodes (:mod:`repro.relational.expressions`), so a parsed statement can be
planned and executed directly.  The nodes added here cover statement
structure: the select list, FROM sources (a base table or a table-valued
function call), joins, ordering, and TOP-N.

Every node renders back to SQL via ``to_sql``; parsing the rendering
yields an equal AST (property-tested), which is what lets the proxy
rewrite and forward queries textually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.relational.errors import ExecutionError
from repro.relational.expressions import Expression, _sql_literal


@dataclass(frozen=True)
class Parameter(Expression):
    """A template placeholder ``$name``.

    Parameters appear only inside *templates*; binding
    (:meth:`SelectStatement.bind`) replaces them with literals before a
    statement reaches the executor.  Evaluating an unbound parameter is a
    programming error and raises immediately.
    """

    name: str

    def evaluate(self, env) -> Any:
        raise ExecutionError(f"unbound template parameter ${self.name}")

    def to_sql(self) -> str:
        return f"${self.name}"

    def _collect_refs(self, refs: set[str]) -> None:
        pass


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None

    def output_name(self) -> str:
        """The column name this item produces in the result."""
        if self.alias:
            return self.alias
        sql = self.expression.to_sql()
        # A bare column reference keeps its unqualified name, as in SQL.
        if sql.replace(".", "").replace("_", "").isalnum():
            return sql.split(".")[-1]
        return sql

    def to_sql(self) -> str:
        sql = self.expression.to_sql()
        return f"{sql} AS {self.alias}" if self.alias else sql


@dataclass(frozen=True)
class TableSource:
    """A base table in FROM, with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class FunctionSource:
    """A table-valued function call in FROM, with an optional alias.

    Arguments are expressions; in templates they may be
    :class:`Parameter` nodes, in concrete queries they must evaluate
    without an environment (literals or arithmetic over literals).
    """

    name: str
    args: tuple[Expression, ...]
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name

    def argument_values(self) -> list[Any]:
        """Evaluate the arguments as constants."""
        return [arg.evaluate({}) for arg in self.args]

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        call = f"{self.name}({inner})"
        return f"{call} {self.alias}" if self.alias else call


@dataclass(frozen=True)
class JoinClause:
    """An inner join: ``JOIN table alias ON condition``."""

    table: TableSource
    condition: Expression

    def to_sql(self) -> str:
        return f"JOIN {self.table.to_sql()} ON {self.condition.to_sql()}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False

    def to_sql(self) -> str:
        suffix = " DESC" if self.descending else ""
        return f"{self.expression.to_sql()}{suffix}"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT of the function-embedded query class.

    ``group_by`` and ``distinct`` extend the paper's dialect for the
    origin's free-SQL facility; the proxy's query templates never use
    them (template validation rejects statements it cannot reason
    about spatially, which keeps the caching logic honest).
    """

    select_items: tuple[SelectItem, ...]
    source: TableSource | FunctionSource
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    top: int | None = None
    star: bool = False
    distinct: bool = False
    group_by: tuple[Expression, ...] = ()

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        if self.top is not None:
            parts.append(f"TOP {self.top}")
        if self.star:
            parts.append("*")
        else:
            parts.append(", ".join(item.to_sql() for item in self.select_items))
        parts.append(f"FROM {self.source.to_sql()}")
        for join in self.joins:
            parts.append(join.to_sql())
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            keys = ", ".join(expr.to_sql() for expr in self.group_by)
            parts.append(f"GROUP BY {keys}")
        if self.order_by:
            keys = ", ".join(item.to_sql() for item in self.order_by)
            parts.append(f"ORDER BY {keys}")
        return " ".join(parts)

    # ------------------------------------------------------- templates
    def parameter_names(self) -> list[str]:
        """All ``$name`` placeholders, in first-appearance order."""
        names: list[str] = []
        self._walk_parameters(lambda p: names.append(p.name))
        deduped: list[str] = []
        for name in names:
            if name not in deduped:
                deduped.append(name)
        return deduped

    def _walk_parameters(self, visit) -> None:
        def walk_expr(expr: Expression) -> None:
            if isinstance(expr, Parameter):
                visit(expr)
                return
            for attr in vars(expr).values():
                if isinstance(attr, Expression):
                    walk_expr(attr)
                elif isinstance(attr, tuple):
                    for element in attr:
                        if isinstance(element, Expression):
                            walk_expr(element)

        for item in self.select_items:
            walk_expr(item.expression)
        if isinstance(self.source, FunctionSource):
            for arg in self.source.args:
                walk_expr(arg)
        for join in self.joins:
            walk_expr(join.condition)
        if self.where is not None:
            walk_expr(self.where)
        for expr in self.group_by:
            walk_expr(expr)
        for item in self.order_by:
            walk_expr(item.expression)

    def bind(self, values: dict[str, Any]) -> "SelectStatement":
        """Substitute literals for parameters, returning a new statement.

        Raises :class:`~repro.relational.errors.ExecutionError` when a
        placeholder has no value; extra values are ignored (a template
        info file may carry defaults for parameters a form omits).
        """
        missing = [n for n in self.parameter_names() if n not in values]
        if missing:
            raise ExecutionError(
                f"missing template parameter(s): {', '.join(missing)}"
            )

        def rebuild(expr: Expression) -> Expression:
            return bind_expression(expr, values)

        source = self.source
        if isinstance(source, FunctionSource):
            source = FunctionSource(
                source.name,
                tuple(rebuild(a) for a in source.args),
                source.alias,
            )
        return SelectStatement(
            select_items=tuple(
                SelectItem(rebuild(i.expression), i.alias)
                for i in self.select_items
            ),
            source=source,
            joins=tuple(
                JoinClause(j.table, rebuild(j.condition)) for j in self.joins
            ),
            where=None if self.where is None else rebuild(self.where),
            order_by=tuple(
                OrderItem(rebuild(o.expression), o.descending)
                for o in self.order_by
            ),
            top=self.top,
            star=self.star,
            distinct=self.distinct,
            group_by=tuple(rebuild(g) for g in self.group_by),
        )


def bind_expression(expr: Expression, values: dict[str, Any]) -> Expression:
    """Substitute literals for every :class:`Parameter` in ``expr``.

    Shared by :meth:`SelectStatement.bind` and the function-template
    evaluator (center/radius/bound expressions are written over ``$``
    parameters, exactly like the query templates).  A parameter without
    a value raises :class:`~repro.relational.errors.ExecutionError`.
    """
    from repro.relational.expressions import Literal

    if isinstance(expr, Parameter):
        if expr.name not in values:
            raise ExecutionError(f"missing template parameter ${expr.name}")
        return Literal(values[expr.name])
    changes = {}
    for name, attr in vars(expr).items():
        if isinstance(attr, Expression):
            changes[name] = bind_expression(attr, values)
        elif isinstance(attr, tuple) and any(
            isinstance(element, Expression) for element in attr
        ):
            changes[name] = tuple(
                bind_expression(element, values)
                if isinstance(element, Expression)
                else element
                for element in attr
            )
    if not changes:
        return expr
    fields = dict(vars(expr))
    fields.update(changes)
    return type(expr)(**fields)


def sql_literal(value: Any) -> str:
    """Render a Python value as a SQL literal (shared with templates)."""
    return _sql_literal(value)
