"""Parser errors with position information."""


class ParseError(ValueError):
    """A tokenizer or parser failure.

    Carries the character position so the origin server and proxy can
    point at the offending spot when rejecting a malformed request.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position
