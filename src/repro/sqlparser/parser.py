"""Recursive-descent parser for the function-embedded SELECT dialect.

Grammar (EBNF, keywords case-insensitive)::

    select     = "SELECT" ["DISTINCT"] ["TOP" integer] select_list
                 "FROM" from_source { join } ["WHERE" or_expr]
                 ["GROUP" "BY" or_expr {"," or_expr}]
                 ["ORDER" "BY" order_item {"," order_item}]
    select_list= "*" | select_item {"," select_item}
    select_item= or_expr ["AS"] [identifier]
    from_source= identifier "(" [args] ")" [alias]      (function source)
               | identifier [alias]                       (table source)
    join       = ["INNER"] "JOIN" identifier [alias] "ON" or_expr
    or_expr    = and_expr {"OR" and_expr}
    and_expr   = not_expr {"AND" not_expr}
    not_expr   = "NOT" not_expr | predicate
    predicate  = additive [comparison | between | in | is-null]
    additive   = term {("+"|"-") term}
    term       = factor {("*"|"/") factor}
    factor     = "-" factor | atom
    atom       = number | string | "NULL" | parameter
               | "COUNT" "(" "*" ")"
               | identifier ["(" args ")"]   (function call / column ref)
               | "(" or_expr ")"

Operator precedence and associativity follow SQL.
"""

from __future__ import annotations

from repro.relational.expressions import (
    And,
    Between,
    BinaryOp,
    BinaryOperator,
    ColumnRef,
    CountStar,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
)
from repro.sqlparser.ast import (
    FunctionSource,
    JoinClause,
    OrderItem,
    Parameter,
    SelectItem,
    SelectStatement,
    TableSource,
)
from repro.sqlparser.errors import ParseError
from repro.sqlparser.tokens import Token, TokenType, tokenize

_COMPARISON_OPS = {
    "=": BinaryOperator.EQ,
    "<>": BinaryOperator.NE,
    "<": BinaryOperator.LT,
    "<=": BinaryOperator.LE,
    ">": BinaryOperator.GT,
    ">=": BinaryOperator.GE,
}


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.index = 0

    # ------------------------------------------------------- utilities
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self.fail(f"expected {word.upper()}")

    def accept_punct(self, symbol: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_punct(self, symbol: str) -> None:
        if not self.accept_punct(symbol):
            self.fail(f"expected {symbol!r}")

    def fail(self, message: str) -> None:
        token = self.current
        shown = "end of input" if token.type is TokenType.END else repr(token.value)
        raise ParseError(f"{message}, found {shown}", token.position)

    # ------------------------------------------------------- statement
    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        top = None
        if self.accept_keyword("top"):
            token = self.current
            if token.type is not TokenType.NUMBER or not isinstance(
                token.value, int
            ):
                self.fail("expected an integer after TOP")
            if token.value < 0:
                self.fail("TOP count must be non-negative")
            top = token.value
            self.advance()

        star = False
        items: list[SelectItem] = []
        if self.current.type is TokenType.OPERATOR and self.current.value == "*":
            star = True
            self.advance()
        else:
            items.append(self.parse_select_item())
            while self.accept_punct(","):
                items.append(self.parse_select_item())

        self.expect_keyword("from")
        source = self.parse_from_source()

        joins: list[JoinClause] = []
        while self.current.is_keyword("join") or self.current.is_keyword("inner"):
            self.accept_keyword("inner")
            self.expect_keyword("join")
            table = self.parse_table_source()
            self.expect_keyword("on")
            condition = self.parse_or()
            joins.append(JoinClause(table, condition))

        where = None
        if self.accept_keyword("where"):
            where = self.parse_or()

        group_by: list[Expression] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_or())
            while self.accept_punct(","):
                group_by.append(self.parse_or())

        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())

        if self.current.type is not TokenType.END:
            self.fail("unexpected trailing input")
        return SelectStatement(
            select_items=tuple(items),
            source=source,
            joins=tuple(joins),
            where=where,
            order_by=tuple(order_by),
            top=top,
            star=star,
            distinct=distinct,
            group_by=tuple(group_by),
        )

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_or()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return SelectItem(expression, alias)

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_or()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(expression, descending)

    def expect_identifier(self, what: str) -> str:
        token = self.current
        if token.type is not TokenType.IDENTIFIER:
            self.fail(f"expected {what}")
        self.advance()
        return token.value

    def parse_from_source(self) -> TableSource | FunctionSource:
        name = self.expect_identifier("table or function name")
        if self.accept_punct("("):
            args: list[Expression] = []
            if not self.accept_punct(")"):
                args.append(self.parse_or())
                while self.accept_punct(","):
                    args.append(self.parse_or())
                self.expect_punct(")")
            alias = self.parse_optional_alias()
            return FunctionSource(name, tuple(args), alias)
        return TableSource(name, self.parse_optional_alias())

    def parse_table_source(self) -> TableSource:
        name = self.expect_identifier("table name")
        return TableSource(name, self.parse_optional_alias())

    def parse_optional_alias(self) -> str | None:
        if self.accept_keyword("as"):
            return self.expect_identifier("alias")
        if self.current.type is TokenType.IDENTIFIER:
            return self.advance().value
        return None

    # ----------------------------------------------------- expressions
    def parse_or(self) -> Expression:
        operands = [self.parse_and()]
        while self.accept_keyword("or"):
            operands.append(self.parse_and())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def parse_and(self) -> Expression:
        operands = [self.parse_not()]
        while self.accept_keyword("and"):
            operands.append(self.parse_not())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def parse_not(self) -> Expression:
        if self.accept_keyword("not"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        left = self.parse_additive()
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            self.advance()
            right = self.parse_additive()
            return BinaryOp(_COMPARISON_OPS[token.value], left, right)
        if token.is_keyword("between"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            return Between(left, low, high)
        negated = False
        if token.is_keyword("not"):
            # Only NOT IN / NOT BETWEEN reach here (prefix NOT is handled
            # above); look ahead to decide.
            lookahead = self.tokens[self.index + 1]
            if lookahead.is_keyword("in"):
                self.advance()
                negated = True
            elif lookahead.is_keyword("between"):
                self.advance()
                self.expect_keyword("between")
                low = self.parse_additive()
                self.expect_keyword("and")
                high = self.parse_additive()
                return Not(Between(left, low, high))
        if self.current.is_keyword("in"):
            self.advance()
            self.expect_punct("(")
            choices = [self.parse_or()]
            while self.accept_punct(","):
                choices.append(self.parse_or())
            self.expect_punct(")")
            membership = InList(left, tuple(choices))
            return Not(membership) if negated else membership
        if negated:
            self.fail("expected IN after NOT")
        if self.current.is_keyword("is"):
            self.advance()
            is_not = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNull(left, negated=is_not)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_term()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in ("+", "-")
        ):
            op = BinaryOperator.ADD if self.advance().value == "+" else (
                BinaryOperator.SUB
            )
            left = BinaryOp(op, left, self.parse_term())
        return left

    def parse_term(self) -> Expression:
        left = self.parse_factor()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in ("*", "/")
        ):
            op = BinaryOperator.MUL if self.advance().value == "*" else (
                BinaryOperator.DIV
            )
            left = BinaryOp(op, left, self.parse_factor())
        return left

    def parse_factor(self) -> Expression:
        if self.current.type is TokenType.OPERATOR and self.current.value == "-":
            self.advance()
            # Fold a negated numeric literal into the literal itself so
            # that "-1" round-trips as Literal(-1), not Negate(Literal(1)).
            if self.current.type is TokenType.NUMBER:
                return Literal(-self.advance().value)
            return Negate(self.parse_factor())
        if self.current.type is TokenType.OPERATOR and self.current.value == "+":
            self.advance()
            return self.parse_factor()
        return self.parse_atom()

    def parse_atom(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self.advance()
            return Literal(None)
        if token.type is TokenType.PARAMETER:
            self.advance()
            return Parameter(token.value)
        if self.accept_punct("("):
            inner = self.parse_or()
            self.expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            name = token.value
            if self.accept_punct("("):
                # COUNT(*) is the one place "*" is an argument.
                if (
                    name.lower() == "count"
                    and self.current.type is TokenType.OPERATOR
                    and self.current.value == "*"
                ):
                    self.advance()
                    self.expect_punct(")")
                    return CountStar()
                args: list[Expression] = []
                if not self.accept_punct(")"):
                    args.append(self.parse_or())
                    while self.accept_punct(","):
                        args.append(self.parse_or())
                    self.expect_punct(")")
                return FuncCall(name, tuple(args))
            # Qualified column reference: alias.column
            while self.accept_punct("."):
                name += "." + self.expect_identifier("column name after '.'")
            return ColumnRef(name)
        self.fail("expected an expression")
        raise AssertionError("unreachable")


def parse_select(text: str) -> SelectStatement:
    """Parse a SELECT statement (concrete query or template)."""
    return _Parser(text).parse_select()


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (used by function templates)."""
    parser = _Parser(text)
    expression = parser.parse_or()
    if parser.current.type is not TokenType.END:
        parser.fail("unexpected trailing input")
    return expression
