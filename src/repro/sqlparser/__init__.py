"""SQL parsing for function-embedded queries.

The proxy, the origin server, and the template layer all need to read
and write SQL text of the class the paper targets (Figure 2):

.. code-block:: sql

    SELECT TOP 100 p.objID, p.ra, p.dec, p.u, p.g, p.r
    FROM fGetNearbyObjEq(182.5, 10.3, 15.0) n
    JOIN PhotoPrimary p ON n.objID = p.objID
    WHERE p.g < 20.5 AND p.type = 3
    ORDER BY n.distance

This package provides a tokenizer, a recursive-descent parser producing
an AST that renders back to SQL (round-trip property-tested), and
template placeholders (``$name``) for the parameterized query templates
of Section 2.
"""

from repro.sqlparser.errors import ParseError
from repro.sqlparser.tokens import Token, TokenType, tokenize
from repro.sqlparser.ast import (
    FunctionSource,
    JoinClause,
    OrderItem,
    Parameter,
    SelectItem,
    SelectStatement,
    TableSource,
)
from repro.sqlparser.parser import parse_expression, parse_select

__all__ = [
    "FunctionSource",
    "JoinClause",
    "OrderItem",
    "Parameter",
    "ParseError",
    "SelectItem",
    "SelectStatement",
    "TableSource",
    "Token",
    "TokenType",
    "parse_expression",
    "parse_select",
    "tokenize",
]
