"""The experiment harness: regenerates every table and figure.

One module per experiment, mirroring DESIGN.md's per-experiment index:

* :mod:`repro.harness.trace_stats` — the Section 4.1 workload profile;
* :mod:`repro.harness.table1` — Table 1, cache efficiency of AC vs PC
  across cache sizes;
* :mod:`repro.harness.fig5` — Figure 5, response time of NC / PC /
  ACR / ACNR across cache sizes;
* :mod:`repro.harness.fig6` — Figure 6, response time of the three
  active schemes;
* :mod:`repro.harness.ablations` — the checking-time claim (< 100 ms,
  array vs R-tree) and the remainder-query tradeoff discussion;
* :mod:`repro.harness.fault_availability` — answered fraction per
  scheme under an origin outage (the resilience layer's headline);
* :mod:`repro.harness.recovery` — post-crash hit ratio, warm restart
  (journal + snapshot recovery) vs cold, per scheme;
* :mod:`repro.harness.saturation` — throughput / latency / shed
  fraction across a closed-loop client ladder (graceful saturation
  under admission control);
* :mod:`repro.harness.shard_availability` — answered fraction and
  post-crash hit ratio across a shard ladder when the busiest shard
  crashes mid-trace (failover + warm handoff vs the no-failover
  control).

Every experiment takes an :class:`~repro.harness.config.ExperimentScale`
so the same code runs at paper scale (11,323 queries) or at the smaller
default scale used by the benchmark suite.
"""

from repro.harness.config import ExperimentScale
from repro.harness.runner import ExperimentRunner, RunResult
from repro.harness.render import render_table

__all__ = ["ExperimentRunner", "ExperimentScale", "RunResult", "render_table"]
