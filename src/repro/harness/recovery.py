"""Warm vs cold restart: what crash-consistent persistence buys.

Not a paper table — the paper's proxy loses its whole cache with the
process.  This experiment measures the hit-ratio recovery the
persistence subsystem (:mod:`repro.persistence`) provides after a
mid-trace crash, per caching scheme.

Protocol, per scheme:

1. **Warm-up** — replay the first ``crash_fraction`` of the measured
   trace through a proxy journaling every cache mutation to a fresh
   persistence directory.
2. **Crash** — stop the proxy at that query (the scheduled kill) and
   apply a seeded :class:`~repro.faults.crash.CrashPlan`'s tail damage
   to the journal: by default a torn final append (``truncate``), so
   recovery must stop cleanly at the tear.
3. **Warm restart** — build a new proxy over the damaged directory;
   construction runs :func:`~repro.persistence.recovery.recover_cache`
   and the report lands on ``proxy.recovery_report``.  Replay the rest
   of the trace.
4. **Cold restart** — replay the same remainder through a proxy with
   an empty cache (what every restart looked like before this
   subsystem existed).

The headline is ``warm_hit_ratio`` vs ``cold_hit_ratio`` on the
post-crash remainder: for the caching schemes, the recovered cache
answers repeats and contained queries that the cold proxy must forward
again.  The no-cache scheme journals nothing and recovers nothing —
its row is the experiment's control.

Everything is seeded and simulated-clock-driven, so the whole table is
deterministic, including the exact bytes the crash tears off.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.schemes import CachingScheme
from repro.core.stats import TraceStats
from repro.faults.crash import CrashPlan
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner
from repro.persistence import CachePersister
from repro.workload.rbe import BrowserEmulator

#: The schemes compared: no caching (control), passive, full semantic.
SCHEMES = (
    CachingScheme.NO_CACHE,
    CachingScheme.PASSIVE,
    CachingScheme.FULL_SEMANTIC,
)


@dataclass(frozen=True)
class SchemeRecovery:
    """One scheme's crash-and-restart measurements."""

    scheme: CachingScheme
    pre_crash_queries: int
    pre_crash_hit_ratio: float
    entries_at_crash: int
    journal_records: int
    damage: dict
    entries_restored: int
    entries_stale: int
    records_replayed: int
    stop_reason: str | None
    warm_hit_ratio: float
    cold_hit_ratio: float
    recovery_report: dict

    @property
    def warm_advantage(self) -> float:
        """Post-restart hit-ratio gain of recovering vs starting cold."""
        return self.warm_hit_ratio - self.cold_hit_ratio

    @property
    def restored_fraction(self) -> float:
        """Share of the pre-crash cache the warm restart got back."""
        if self.entries_at_crash == 0:
            return 0.0
        return self.entries_restored / self.entries_at_crash

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme.value,
            "pre_crash_queries": self.pre_crash_queries,
            "pre_crash_hit_ratio": self.pre_crash_hit_ratio,
            "entries_at_crash": self.entries_at_crash,
            "journal_records": self.journal_records,
            "damage": dict(self.damage),
            "entries_restored": self.entries_restored,
            "entries_stale": self.entries_stale,
            "records_replayed": self.records_replayed,
            "stop_reason": self.stop_reason,
            "restored_fraction": self.restored_fraction,
            "warm_hit_ratio": self.warm_hit_ratio,
            "cold_hit_ratio": self.cold_hit_ratio,
            "warm_advantage": self.warm_advantage,
            "recovery_report": dict(self.recovery_report),
        }


@dataclass(frozen=True)
class RecoveryExperimentResult:
    """The warm-vs-cold restart table across caching schemes."""

    schemes: dict[str, SchemeRecovery]
    crash_fraction: float
    damage: str
    seed: int
    snapshot_every: int

    def to_dict(self) -> dict:
        return {
            "crash_fraction": self.crash_fraction,
            "damage": self.damage,
            "seed": self.seed,
            "snapshot_every": self.snapshot_every,
            "schemes": {
                label: row.to_dict() for label, row in self.schemes.items()
            },
        }

    def render(self) -> str:
        headers = [
            "Scheme",
            "entries",
            "restored",
            "stop",
            "warm hit",
            "cold hit",
            "advantage",
        ]
        rows = []
        for label, row in self.schemes.items():
            rows.append(
                [
                    label,
                    row.entries_at_crash,
                    row.entries_restored,
                    row.stop_reason or "clean",
                    row.warm_hit_ratio,
                    row.cold_hit_ratio,
                    row.warm_advantage,
                ]
            )
        return render_table(
            "Crash recovery: post-restart hit ratio, warm (recovered "
            f"journal, {self.damage} tail damage) vs cold, after a crash "
            f"at {self.crash_fraction:.0%} of the trace",
            headers,
            rows,
        )


def run_recovery(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
    crash_fraction: float = 0.5,
    damage: str = "truncate",
    seed: int = 11,
    snapshot_every: int = 32,
    state_dir: str | Path | None = None,
) -> RecoveryExperimentResult:
    """Run the warm-vs-cold restart comparison.

    ``state_dir`` keeps each scheme's persistence directory (under
    ``<state_dir>/<scheme>``) instead of a temporary one — the CI smoke
    job uses this to upload the damaged journals with the report.
    """
    if not 0.0 < crash_fraction < 1.0:
        raise ValueError(
            f"crash_fraction must be inside (0, 1): {crash_fraction}"
        )
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    total = min(runner.scale.measure_queries, len(runner.trace))
    crash_at = max(1, int(total * crash_fraction))
    head = runner.trace[:crash_at]
    tail = runner.trace[crash_at:total]

    schemes: dict[str, SchemeRecovery] = {}
    for scheme in SCHEMES:
        if state_dir is not None:
            directory = Path(state_dir) / scheme.value
            row = _run_scheme(
                runner, scheme, head, tail, directory,
                damage, seed, snapshot_every,
            )
        else:
            with tempfile.TemporaryDirectory(
                prefix="repro-recovery-"
            ) as tmp:
                row = _run_scheme(
                    runner, scheme, head, tail, Path(tmp),
                    damage, seed, snapshot_every,
                )
        schemes[scheme.value] = row
    return RecoveryExperimentResult(
        schemes=schemes,
        crash_fraction=crash_fraction,
        damage=damage,
        seed=seed,
        snapshot_every=snapshot_every,
    )


def _run_scheme(
    runner: ExperimentRunner,
    scheme: CachingScheme,
    head,
    tail,
    directory: Path,
    damage: str,
    seed: int,
    snapshot_every: int,
) -> SchemeRecovery:
    # Phase 1: warm-up with journaling.
    persister = CachePersister(directory, snapshot_every=snapshot_every)
    proxy = runner.build_proxy(
        scheme, "array", cache_fraction=None, persistence=persister
    )
    pre_stats: TraceStats = BrowserEmulator(proxy).run(head)
    entries_at_crash = len(proxy.cache)
    journal_records = persister.total_records

    # Phase 2: the crash — the proxy stops here and the plan's seeded
    # damage tears the journal tail the way a kill mid-append would.
    plan = CrashPlan(seed=seed, damage=damage)
    damage_report = plan.session().apply_damage(persister.journal.path)

    # Phase 3: warm restart over the damaged directory.
    warm_persister = CachePersister(directory, snapshot_every=snapshot_every)
    warm_proxy = runner.build_proxy(
        scheme, "array", cache_fraction=None, persistence=warm_persister
    )
    report = warm_proxy.recovery_report
    assert report is not None  # persistence implies recovery
    warm_stats = BrowserEmulator(warm_proxy).run(tail)

    # Phase 4: cold restart — the pre-persistence baseline.
    cold_proxy = runner.build_proxy(scheme, "array", cache_fraction=None)
    cold_stats = BrowserEmulator(cold_proxy).run(tail)

    return SchemeRecovery(
        scheme=scheme,
        pre_crash_queries=len(head),
        pre_crash_hit_ratio=pre_stats.hit_ratio,
        entries_at_crash=entries_at_crash,
        journal_records=journal_records,
        damage=damage_report,
        entries_restored=report.entries_restored,
        entries_stale=report.entries_stale,
        records_replayed=report.records_replayed,
        stop_reason=report.stop_reason,
        warm_hit_ratio=warm_stats.hit_ratio,
        cold_hit_ratio=cold_stats.hit_ratio,
        recovery_report=report.to_dict(),
    )
