"""Shared experiment machinery: build once, run many configurations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.description import ArrayDescription, RTreeDescription
from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.core.stats import TraceStats
from repro.harness.config import ExperimentScale
from repro.server.origin import OriginServer
from repro.workload.generator import generate_radial_trace
from repro.workload.rbe import BrowserEmulator
from repro.workload.trace import Trace


@dataclass(frozen=True)
class RunResult:
    """One proxy configuration's measurements."""

    scheme: CachingScheme
    description_kind: str  # "array" or "rtree"
    cache_fraction: float | None  # None = unlimited
    stats: TraceStats
    final_cache_bytes: int
    final_cache_entries: int


class ExperimentRunner:
    """Builds the testbed for a scale and replays configurations.

    The origin server and the trace are built once and reused across
    configurations (the origin is stateless with respect to the proxy;
    its query counters are diagnostics only).  The *total result size*
    that anchors the cache-size axis is measured the way the paper
    implies: the bytes a passive cache of unlimited size holds after
    the whole measured trace — i.e. one stored result file per distinct
    query.
    """

    def __init__(self, scale: ExperimentScale) -> None:
        self.scale = scale
        self._origin: OriginServer | None = None
        self._trace: Trace | None = None
        self._total_result_bytes: int | None = None

    # --------------------------------------------------------- building
    @property
    def origin(self) -> OriginServer:
        if self._origin is None:
            self._origin = OriginServer.skyserver(
                self.scale.sky, self.scale.server_costs
            )
        return self._origin

    @property
    def trace(self) -> Trace:
        if self._trace is None:
            self._trace = generate_radial_trace(self.scale.trace)
        return self._trace

    @property
    def total_result_bytes(self) -> int:
        """The cache-size axis anchor ("total result size of the trace")."""
        if self._total_result_bytes is None:
            probe = self.run(
                CachingScheme.PASSIVE, "array", cache_fraction=None
            )
            self._total_result_bytes = probe.final_cache_bytes
        return self._total_result_bytes

    def cache_bytes_for(self, fraction: float | None) -> int | None:
        if fraction is None:
            return None
        return int(self.total_result_bytes * fraction)

    # ---------------------------------------------------------- running
    def build_proxy(
        self,
        scheme: CachingScheme,
        description_kind: str = "array",
        cache_fraction: float | None = None,
    ) -> FunctionProxy:
        costs = self.scale.proxy_costs
        if description_kind == "array":
            description = ArrayDescription(costs)
        elif description_kind == "rtree":
            description = RTreeDescription(costs)
        else:
            raise ValueError(
                f"unknown description kind {description_kind!r}; "
                "use 'array' or 'rtree'"
            )
        return FunctionProxy(
            origin=self.origin,
            templates=self.origin.templates,
            scheme=scheme,
            description=description,
            cache_bytes=self.cache_bytes_for(cache_fraction),
            costs=costs,
            topology=self.scale.topology,
        )

    def run(
        self,
        scheme: CachingScheme,
        description_kind: str = "array",
        cache_fraction: float | None = None,
        measure_queries: int | None = None,
    ) -> RunResult:
        """Replay the trace under one configuration."""
        proxy = self.build_proxy(scheme, description_kind, cache_fraction)
        emulator = BrowserEmulator(proxy)
        limit = measure_queries or self.scale.measure_queries
        stats = emulator.run(self.trace, limit=limit)
        return RunResult(
            scheme=scheme,
            description_kind=description_kind,
            cache_fraction=cache_fraction,
            stats=stats,
            final_cache_bytes=proxy.cache.current_bytes,
            final_cache_entries=len(proxy.cache),
        )
