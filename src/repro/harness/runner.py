"""Shared experiment machinery: build once, run many configurations.

Each run carries the proxy's full metrics-registry snapshot; when the
runner is built with a ``snapshot_dir``, the snapshot is also written
as JSON next to the benchmark results, so performance trajectories can
be diffed across PRs.  The scale's
:class:`~repro.harness.config.ObservabilityConfig` governs the rest of
the run artifacts: a ``decisions-<label>.json`` explain dump (always),
a ``trace-<label>.jsonl`` span export when tracing is enabled, a
``profile-<label>.json`` hot-path profile when profiling is enabled,
and ``timeseries-<label>.json`` / ``events-<label>.json`` live
telemetry (the time series embeds the final health report) when the
telemetry recorders are on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.description import ArrayDescription, RTreeDescription
from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.core.stats import TraceStats
from repro.harness.config import ExperimentScale
from repro.obs.events import EventRecorder
from repro.obs.instrument import ProxyInstrumentation
from repro.obs.profiling import Profiler
from repro.obs.propagation import IdGenerator
from repro.obs.spans import SpanTracer
from repro.obs.timeseries import TimeSeriesRecorder
from repro.persistence.atomic import atomic_write_text
from repro.server.origin import OriginServer
from repro.workload.generator import generate_radial_trace
from repro.workload.rbe import BrowserEmulator
from repro.workload.trace import Trace


@dataclass(frozen=True)
class RunResult:
    """One proxy configuration's measurements."""

    scheme: CachingScheme
    description_kind: str  # "array" or "rtree"
    cache_fraction: float | None  # None = unlimited
    stats: TraceStats
    final_cache_bytes: int
    final_cache_entries: int
    metrics_snapshot: dict = field(default_factory=dict)

    def label(self) -> str:
        """A filesystem-safe tag for this configuration."""
        fraction = (
            "unlimited"
            if self.cache_fraction is None
            else str(self.cache_fraction).replace(".", "_")
        )
        return f"{self.scheme.value}-{self.description_kind}-{fraction}"


class ExperimentRunner:
    """Builds the testbed for a scale and replays configurations.

    The origin server and the trace are built once and reused across
    configurations (the origin is stateless with respect to the proxy;
    its query counters are diagnostics only).  The *total result size*
    that anchors the cache-size axis is measured the way the paper
    implies: the bytes a passive cache of unlimited size holds after
    the whole measured trace — i.e. one stored result file per distinct
    query.
    """

    def __init__(
        self,
        scale: ExperimentScale,
        snapshot_dir: str | Path | None = None,
    ) -> None:
        self.scale = scale
        self.snapshot_dir = None if snapshot_dir is None else Path(snapshot_dir)
        self._origin: OriginServer | None = None
        self._trace: Trace | None = None
        self._total_result_bytes: int | None = None

    # --------------------------------------------------------- building
    @property
    def origin(self) -> OriginServer:
        if self._origin is None:
            self._origin = OriginServer.skyserver(
                self.scale.sky, self.scale.server_costs
            )
        return self._origin

    @property
    def trace(self) -> Trace:
        if self._trace is None:
            self._trace = generate_radial_trace(self.scale.trace)
        return self._trace

    @property
    def total_result_bytes(self) -> int:
        """The cache-size axis anchor ("total result size of the trace")."""
        if self._total_result_bytes is None:
            probe = self.run(
                CachingScheme.PASSIVE, "array", cache_fraction=None
            )
            self._total_result_bytes = probe.final_cache_bytes
        return self._total_result_bytes

    def cache_bytes_for(self, fraction: float | None) -> int | None:
        if fraction is None:
            return None
        return int(self.total_result_bytes * fraction)

    # ---------------------------------------------------------- running
    def build_proxy(
        self,
        scheme: CachingScheme,
        description_kind: str = "array",
        cache_fraction: float | None = None,
        **proxy_kwargs,
    ) -> FunctionProxy:
        costs = self.scale.proxy_costs
        if description_kind == "array":
            description = ArrayDescription(costs)
        elif description_kind == "rtree":
            description = RTreeDescription(costs)
        else:
            raise ValueError(
                f"unknown description kind {description_kind!r}; "
                "use 'array' or 'rtree'"
            )
        return FunctionProxy(
            origin=self.origin,
            templates=self.origin.templates,
            scheme=scheme,
            description=description,
            cache_bytes=self.cache_bytes_for(cache_fraction),
            costs=costs,
            topology=self.scale.topology,
            instrumentation=self._build_instrumentation(),
            **proxy_kwargs,
        )

    def _build_instrumentation(self) -> ProxyInstrumentation:
        obs = self.scale.obs
        tracer = None
        if obs.tracing:
            tracer = SpanTracer(
                capacity=obs.trace_capacity,
                ids=IdGenerator(obs.id_seed),
            )
        profiler = None
        if obs.profiling:
            profiler = Profiler(top_k=obs.profile_top_k)
        timeseries = None
        if obs.timeseries:
            timeseries = TimeSeriesRecorder(
                interval_ms=obs.timeseries_interval_ms,
                capacity=obs.timeseries_capacity,
            )
        events = None
        if obs.events:
            events = EventRecorder(capacity=obs.event_capacity)
        return ProxyInstrumentation(
            tracer=tracer,
            decision_capacity=obs.explain_capacity,
            profiler=profiler,
            timeseries=timeseries,
            events=events,
        )

    def run(
        self,
        scheme: CachingScheme,
        description_kind: str = "array",
        cache_fraction: float | None = None,
        measure_queries: int | None = None,
    ) -> RunResult:
        """Replay the trace under one configuration."""
        proxy = self.build_proxy(scheme, description_kind, cache_fraction)
        emulator = BrowserEmulator(proxy)
        limit = measure_queries or self.scale.measure_queries
        stats = emulator.run(self.trace, limit=limit)
        result = RunResult(
            scheme=scheme,
            description_kind=description_kind,
            cache_fraction=cache_fraction,
            stats=stats,
            final_cache_bytes=proxy.cache.current_bytes,
            final_cache_entries=len(proxy.cache),
            metrics_snapshot=proxy.metrics.snapshot(),
        )
        self._write_snapshot(result, proxy)
        return result

    def _write_snapshot(
        self, result: RunResult, proxy: FunctionProxy
    ) -> Path | None:
        """Persist the run's observability artifacts beside the results:
        the metrics snapshot, the decision-explain dump, and (when the
        scale enables tracing) the JSONL span export.  Writes are
        atomic (temp + rename), so an interrupted run never leaves a
        half-written artifact for a later diff to choke on."""
        if self.snapshot_dir is None:
            return None
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        label = result.label()
        path = self.snapshot_dir / f"metrics-{label}.json"
        atomic_write_text(
            path,
            json.dumps(result.metrics_snapshot, indent=2, sort_keys=True)
            + "\n",
        )
        explain = {
            "actions": proxy.obs.decisions.action_counts(),
            "slo": proxy.obs.slo.snapshot(),
            "decisions": proxy.obs.decisions.recent(),
        }
        atomic_write_text(
            self.snapshot_dir / f"decisions-{label}.json",
            json.dumps(explain, indent=2, sort_keys=True) + "\n",
        )
        if proxy.tracer.enabled:
            atomic_write_text(
                self.snapshot_dir / f"trace-{label}.jsonl",
                proxy.tracer.export_jsonl(),
            )
        if proxy.profiler.enabled:
            atomic_write_text(
                self.snapshot_dir / f"profile-{label}.json",
                json.dumps(
                    proxy.profiler.snapshot(), indent=2, sort_keys=True
                )
                + "\n",
            )
        if proxy.timeseries.enabled:
            telemetry = proxy.timeseries.snapshot()
            telemetry["health"] = proxy.health.evaluate(
                proxy.telemetry_clock.now_ms
            )
            atomic_write_text(
                self.snapshot_dir / f"timeseries-{label}.json",
                json.dumps(telemetry, indent=2, sort_keys=True) + "\n",
            )
        if proxy.events.enabled:
            atomic_write_text(
                self.snapshot_dir / f"events-{label}.json",
                json.dumps(
                    proxy.events.snapshot(), indent=2, sort_keys=True
                )
                + "\n",
            )
        return path
