"""Run every reproduction experiment and print the tables.

Usage::

    python -m repro.harness [quick|default|paper]

Regenerates, in order: the Section 4.1 trace profile, Table 1,
Figure 5, Figure 6, the two ablations, the fault-availability
table (origin outage + resilience layer), the crash-recovery
table (warm vs cold restart), the saturation ladder (graceful
degradation under closed-loop overload), and the shard-availability
table (mid-trace shard crash, failover vs control).  The same code
backs the
``benchmarks/`` suite; this entry point is for eyeballing a full run
without pytest.
"""

from __future__ import annotations

import sys

from repro.harness.ablations import (
    run_description_ablation,
    run_remainder_ablation,
)
from repro.harness.config import ExperimentScale
from repro.harness.fault_availability import run_fault_availability
from repro.harness.fig5 import run_fig5
from repro.harness.fig6 import run_fig6
from repro.harness.recovery import run_recovery
from repro.harness.runner import ExperimentRunner
from repro.harness.saturation import run_saturation
from repro.harness.shard_availability import run_shard_availability
from repro.harness.table1 import run_table1
from repro.harness.trace_stats import run_trace_stats
from repro.obs.wallclock import Stopwatch


def main(argv: list[str]) -> int:
    name = argv[0] if argv else "default"
    factory = {
        "quick": ExperimentScale.quick,
        "default": ExperimentScale.default,
        "paper": ExperimentScale.paper,
    }.get(name)
    if factory is None:
        print(f"unknown scale {name!r}; use quick, default, or paper")
        return 2
    scale = factory()
    print(f"Scale: {scale.name} ({scale.trace.n_queries} queries, "
          f"{scale.sky.n_objects} objects, measuring first "
          f"{scale.measure_queries})")
    runner = ExperimentRunner(scale)

    experiments = [
        ("trace profile", lambda: run_trace_stats(runner)),
        ("Table 1", lambda: run_table1(runner)),
        ("Figure 5", lambda: run_fig5(runner)),
        ("Figure 6", lambda: run_fig6(runner)),
        ("description ablation", lambda: run_description_ablation(runner)),
        ("remainder ablation", lambda: run_remainder_ablation(scale)),
        ("fault availability", lambda: run_fault_availability(runner)),
        ("crash recovery", lambda: run_recovery(runner)),
        ("saturation", lambda: run_saturation(runner)),
        ("shard availability", lambda: run_shard_availability(runner)),
    ]
    for label, run in experiments:
        watch = Stopwatch()
        result = run()
        print()
        print(result.render())
        print(f"[{label}: {watch.elapsed_s:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
