"""Table 1: average cache efficiency of AC and PC across cache sizes.

Paper values (Section 4.2)::

    Cache Size   1/6    1/3    1/2    1
    AC           0.531  0.565  0.582  0.593
    PC           0.290  0.305  0.311  0.313

Shape to reproduce: active caching's efficiency is roughly double
passive caching's, and grows more as the cache grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner

PAPER_AC = {1 / 6: 0.531, 1 / 3: 0.565, 1 / 2: 0.582, 1.0: 0.593}
PAPER_PC = {1 / 6: 0.290, 1 / 3: 0.305, 1 / 2: 0.311, 1.0: 0.313}


@dataclass(frozen=True)
class Table1Result:
    """Measured efficiencies keyed by cache fraction."""

    ac: dict[float, float]
    pc: dict[float, float]

    def render(self) -> str:
        fractions = sorted(self.ac)
        headers = ["Cache Size"] + [_fraction_label(f) for f in fractions]
        rows = [
            ["AC (measured)"] + [self.ac[f] for f in fractions],
            ["AC (paper)"] + [PAPER_AC[f] for f in fractions],
            ["PC (measured)"] + [self.pc[f] for f in fractions],
            ["PC (paper)"] + [PAPER_PC[f] for f in fractions],
        ]
        return render_table(
            "Table 1: average cache efficiency of AC and PC",
            headers,
            rows,
        )


def _fraction_label(fraction: float) -> str:
    for denominator in (6, 3, 2, 1):
        if abs(fraction - 1 / denominator) < 1e-9:
            return "1" if denominator == 1 else f"1/{denominator}"
    return f"{fraction:.3f}"


def run_table1(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
) -> Table1Result:
    """Measure Table 1 (AC = full semantic caching, array description)."""
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    ac: dict[float, float] = {}
    pc: dict[float, float] = {}
    for fraction in runner.scale.cache_fractions:
        ac[fraction] = runner.run(
            CachingScheme.FULL_SEMANTIC, "array", fraction
        ).stats.average_cache_efficiency
        pc[fraction] = runner.run(
            CachingScheme.PASSIVE, "array", fraction
        ).stats.average_cache_efficiency
    return Table1Result(ac=ac, pc=pc)
