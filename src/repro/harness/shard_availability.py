"""Shard availability: what a mid-trace shard crash costs the tier.

The paper's proxy is one process; the sharded tier asks what happens
when the cache is spread across N workers and one of them dies with a
full cache.  For each shard count the experiment runs three scenarios
on identical seeded load:

* **baseline** — no fault; the per-count reference for aggregate hit
  ratio and answered fraction;
* **failover** — the busiest shard crashes mid-trace with health-aware
  failover and warm handoff on: its durable snapshot+journal image is
  replayed into the ring successor and traffic re-routes, so the
  answered fraction should stay near 1.0 and the post-handoff hit
  ratio near the baseline's;
* **control** — the same crash with failover *and* handoff disabled:
  every query owned by the dead shard sheds, making the availability
  collapse the failover path prevents visible in the same table.

Protocol per scenario: fresh shard proxies (each with its own
admission controller and persistence directory), a
:class:`~repro.cluster.router.ShardRouter` with the shard-crash plan,
and a seeded closed-loop population on one deterministic event loop.
The run is driven to the crash instant, the pre-crash record count is
marked, and the remaining events drain — the post-crash slice is what
the *post-handoff* columns aggregate.  Everything runs on event time,
so the whole table is reproducible bit for bit.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.admission import AdmissionConfig, AdmissionController
from repro.cluster import ClusterFrontend, RouterConfig, Shard, ShardRouter
from repro.core.schemes import CachingScheme
from repro.core.stats import QueryOutcome, QueryRecord, TraceStats
from repro.faults.shard import ShardCrashPlan, ShardFaultWindow
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner
from repro.obs.events import EventRecorder
from repro.obs.timeseries import ROUTER_LANES, TimeSeriesRecorder
from repro.persistence.persister import CachePersister
from repro.sched import EventLoop
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID
from repro.workload.closed_loop import ClosedLoopConfig, ClosedLoopDriver

#: Shard-count ladders: the quick ladder keeps the test suite fast.
QUICK_SHARD_COUNTS = (1, 2, 4)
FULL_SHARD_COUNTS = (1, 2, 4, 8)

#: The three scenarios every shard count runs.
SCENARIOS = ("baseline", "failover", "control")

#: Per-shard admission: generous enough that backpressure is not the
#: story (the saturation bench owns that axis), present so the tier
#: exercises the real queue path and sheds structurally when a control
#: run drives all of a dead shard's traffic into one place.
SHARD_ADMISSION = AdmissionConfig(
    max_inflight=8,
    max_queue_depth=32,
    queue_deadline_ms=15_000.0,
    overload_threshold=256,
    overload_cooldown_ms=2_000.0,
)

#: The spatial partition cell for the radial template (unit-sphere
#: coordinates).  The quick trace's hotspot spans ~0.04-0.13 per axis,
#: so 0.02 yields tens of distinct cells — enough keys to spread one
#: hot template across every shard count on the ladder.
REGION_CELL = 0.02

#: When the scheduled crash fires, in event-loop milliseconds.
CRASH_MS = 15_000.0


@dataclass(frozen=True)
class AvailabilityPoint:
    """One (shard count, scenario) cell of the availability table."""

    shards: int
    scenario: str  # "baseline" | "failover" | "control"
    crashed_shard: str | None
    records: int
    answered_fraction: float
    hit_ratio: float  # among answered records, whole run
    post_records: int
    post_answered_fraction: float
    post_hit_ratio: float  # among answered records after the crash mark
    shed: int
    tunneled: int
    failovers: int
    handoff_entries: int
    handoff_replayed: int
    end_ms: float

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "scenario": self.scenario,
            "crashed_shard": self.crashed_shard,
            "records": self.records,
            "answered_fraction": self.answered_fraction,
            "hit_ratio": self.hit_ratio,
            "post_records": self.post_records,
            "post_answered_fraction": self.post_answered_fraction,
            "post_hit_ratio": self.post_hit_ratio,
            "shed": self.shed,
            "tunneled": self.tunneled,
            "failovers": self.failovers,
            "handoff_entries": self.handoff_entries,
            "handoff_replayed": self.handoff_replayed,
            "end_ms": self.end_ms,
        }


@dataclass(frozen=True)
class ShardAvailabilityResult:
    """The availability table across the shard-count ladder."""

    points: tuple[AvailabilityPoint, ...]
    crash_ms: float
    region_cell: float
    n_clients: int
    queries_per_client: int
    think_time_ms: float
    seed: int

    def point(self, shards: int, scenario: str) -> AvailabilityPoint:
        for point in self.points:
            if point.shards == shards and point.scenario == scenario:
                return point
        raise KeyError(f"no point for {shards} shards / {scenario!r}")

    def to_dict(self) -> dict:
        return {
            "crash_ms": self.crash_ms,
            "region_cell": self.region_cell,
            "n_clients": self.n_clients,
            "queries_per_client": self.queries_per_client,
            "think_time_ms": self.think_time_ms,
            "seed": self.seed,
            "points": [point.to_dict() for point in self.points],
        }

    def render(self) -> str:
        headers = [
            "shards",
            "scenario",
            "records",
            "answered",
            "hit ratio",
            "post answered",
            "post hit",
            "shed",
            "tunnel",
            "failovers",
            "handoff",
        ]
        rows = [
            [
                point.shards,
                point.scenario,
                point.records,
                point.answered_fraction,
                point.hit_ratio,
                point.post_answered_fraction,
                point.post_hit_ratio,
                point.shed,
                point.tunneled,
                point.failovers,
                f"{point.handoff_replayed}/{point.handoff_entries}",
            ]
            for point in self.points
        ]
        return render_table(
            "Shard availability: mid-trace crash at "
            f"{self.crash_ms:.0f} ms with/without health-aware failover",
            headers,
            rows,
        )


def shard_counts_for(scale: ExperimentScale) -> tuple[int, ...]:
    return QUICK_SHARD_COUNTS if scale.name == "quick" else FULL_SHARD_COUNTS


def _hit_ratio_answered(records: list[QueryRecord]) -> float:
    """Hit ratio among *answered* records only.

    ``TraceStats.hit_ratio`` counts every record that skipped the
    origin — which would credit sheds (they never contact anything) as
    hits.  Availability runs produce sheds by design, so the tier's
    cache quality is measured over the queries that returned tuples.
    """
    answered = [record for record in records if record.answered]
    if not answered:
        return 0.0
    hits = sum(1 for record in answered if not record.contacted_origin)
    return hits / len(answered)


def busiest_shard(runner: ExperimentRunner, n_shards: int) -> str:
    """The shard owning the most trace queries — the worst one to lose.

    Computed from ring primaries alone via a throwaway cache-less probe
    router (no serving, no rng draws, no persistence), so every
    scenario of a shard count agrees on the victim before any load runs.
    """
    probe = ShardRouter(
        tuple(
            Shard(
                f"shard-{index}",
                runner.build_proxy(CachingScheme.NO_CACHE, "array"),
            )
            for index in range(n_shards)
        ),
        config=RouterConfig(
            region_partitions={RADIAL_TEMPLATE_ID: REGION_CELL}
        ),
    )
    counts: dict[str, int] = {}
    for query in runner.trace:
        bound = runner.origin.templates.bind(
            query.template_id, query.param_dict()
        )
        primary = probe.ring.primary(probe.route_key(bound))
        counts[primary] = counts.get(primary, 0) + 1
    return max(sorted(counts), key=lambda shard_id: counts[shard_id])


def build_tier(
    runner: ExperimentRunner,
    n_shards: int,
    persistence_dir: str | Path,
    crash_plan: ShardCrashPlan,
    failover: bool,
    handoff_on_crash: bool,
    admission: AdmissionConfig = SHARD_ADMISSION,
) -> ShardRouter:
    """A fresh N-shard router: per-shard admission + persistence, an
    origin-tunnel fallback, and the router-lane telemetry recorders."""
    shards = []
    for index in range(n_shards):
        shard_id = f"shard-{index}"
        proxy = runner.build_proxy(
            CachingScheme.FULL_SEMANTIC,
            "array",
            cache_fraction=None,
            admission=AdmissionController(admission),
            persistence=CachePersister(
                Path(persistence_dir) / shard_id, shard_id=shard_id
            ),
        )
        shards.append(Shard(shard_id, proxy))
    fallback = runner.build_proxy(
        CachingScheme.NO_CACHE, "array", cache_fraction=None
    )
    return ShardRouter(
        tuple(shards),
        fallback=fallback,
        config=RouterConfig(
            failover=failover,
            handoff_on_crash=handoff_on_crash,
            region_partitions={RADIAL_TEMPLATE_ID: REGION_CELL},
        ),
        crash_plan=crash_plan,
        events=EventRecorder(),
        timeseries=TimeSeriesRecorder(lanes=ROUTER_LANES),
    )


def run_scenario(
    runner: ExperimentRunner,
    n_shards: int,
    scenario: str,
    crash_ms: float,
    n_clients: int,
    queries_per_client: int,
    think_time_ms: float,
    seed: int,
) -> AvailabilityPoint:
    """One (shard count, scenario) cell on a fresh tier and loop."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; use {SCENARIOS}")
    failover = scenario != "control"
    victim = busiest_shard(runner, n_shards)
    with tempfile.TemporaryDirectory(prefix="shard-avail-") as tmp:
        faults = ()
        if scenario != "baseline":
            faults = (ShardFaultWindow(victim, "crash", crash_ms),)
        router = build_tier(
            runner,
            n_shards,
            tmp,
            ShardCrashPlan(seed=seed, faults=faults),
            failover=failover,
            handoff_on_crash=failover,
        )
        frontend = ClusterFrontend(router, EventLoop())
        driver = ClosedLoopDriver(
            frontend,
            runner.trace,
            ClosedLoopConfig(
                n_clients=n_clients,
                queries_per_client=queries_per_client,
                think_time_ms=think_time_ms,
                seed=seed,
            ),
        )
        # Drive to the crash instant, mark the slice boundary, drain.
        stats = driver.run(until_ms=crash_ms)
        pre_count = len(stats.records)
        driver.loop.run()
        post = TraceStats(stats.records[pre_count:])
        counts = stats.outcome_counts()
        handoff_entries = sum(h.entries for h in router.handoffs)
        handoff_replayed = sum(h.replayed for h in router.handoffs)
        tunnel_metric = router.registry.get("router_tunnel_total")
        tunneled = int(tunnel_metric.total()) if tunnel_metric else 0
        return AvailabilityPoint(
            shards=n_shards,
            scenario=scenario,
            crashed_shard=victim if scenario != "baseline" else None,
            records=len(stats.records),
            answered_fraction=stats.answered_fraction,
            hit_ratio=_hit_ratio_answered(stats.records),
            post_records=len(post.records),
            post_answered_fraction=post.answered_fraction,
            post_hit_ratio=_hit_ratio_answered(post.records),
            shed=counts.get(QueryOutcome.SHED, 0)
            + counts.get(QueryOutcome.QUEUED_TIMEOUT, 0),
            tunneled=tunneled,
            failovers=sum(
                1
                for decision in router.recent_decisions()
                if decision.rerouted
            ),
            handoff_entries=handoff_entries,
            handoff_replayed=handoff_replayed,
            end_ms=driver.loop.now_ms,
        )


def run_shard_availability(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
    shard_counts: tuple[int, ...] | None = None,
    crash_ms: float = CRASH_MS,
    n_clients: int = 40,
    queries_per_client: int = 10,
    think_time_ms: float = 3_000.0,
    seed: int = 339,
) -> ShardAvailabilityResult:
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    counts = shard_counts or shard_counts_for(runner.scale)
    points = []
    for n_shards in counts:
        for scenario in SCENARIOS:
            points.append(
                run_scenario(
                    runner,
                    n_shards,
                    scenario,
                    crash_ms=crash_ms,
                    n_clients=n_clients,
                    queries_per_client=queries_per_client,
                    think_time_ms=think_time_ms,
                    seed=seed,
                )
            )
    return ShardAvailabilityResult(
        points=tuple(points),
        crash_ms=crash_ms,
        region_cell=REGION_CELL,
        n_clients=n_clients,
        queries_per_client=queries_per_client,
        think_time_ms=think_time_ms,
        seed=seed,
    )
