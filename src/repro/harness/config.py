"""Experiment scales: paper-size and laptop-size parameter sets.

The paper's numbers come from an 11,323-query trace against terabytes
of sky data.  Re-running every configuration at that scale is possible
with this code but slow in a test loop, so experiments take a *scale*:

* :meth:`ExperimentScale.paper` — full trace length, dense catalog;
* :meth:`ExperimentScale.default` — a few thousand queries, a catalog
  dense enough for realistic result sizes; what the benchmark suite
  runs;
* :meth:`ExperimentScale.quick` — smoke-test size for unit tests.

All scales share the calibrated cost models, so measured response
times land in the paper's millisecond range at any scale; only the
trace length and catalog density change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.costs import ProxyCostModel
from repro.network.link import NetworkLink, Topology
from repro.server.costs import ServerCostModel
from repro.skydata.generator import SkyCatalogConfig
from repro.workload.generator import RadialTraceConfig

# Calibrated models shared by all scales.  See DESIGN.md section 5 and
# the calibration notes in EXPERIMENTS.md: the origin costs about 1.5 s
# per query, the WAN adds ~0.3 s of latency plus bandwidth-proportional
# transfer, and proxy-side work is tens of milliseconds.
DEFAULT_SERVER_COSTS = ServerCostModel(
    base_ms=1700.0,
    per_tuple_ms=1.0,
    remainder_surcharge_ms=1200.0,
    per_hole_ms=150.0,
)
DEFAULT_PROXY_COSTS = ProxyCostModel(
    parse_ms=2.0,
    check_per_array_entry_ms=0.01,
    check_per_rtree_node_ms=0.25,
    check_per_candidate_ms=0.3,
    read_per_tuple_ms=0.12,
    eval_per_tuple_ms=0.08,
    merge_per_tuple_ms=0.05,
    store_per_kb_ms=0.05,
    array_update_ms=0.05,
    rtree_update_per_node_ms=1.0,
    evict_per_entry_ms=0.2,
)
DEFAULT_TOPOLOGY = Topology(
    client_proxy=NetworkLink(latency_ms=5.0, bandwidth_bytes_per_ms=1000.0),
    proxy_origin=NetworkLink(latency_ms=150.0, bandwidth_bytes_per_ms=250.0),
    request_bytes=600,
)

# The cache-size axis of Table 1 and Figure 5, as fractions of the
# trace's total result size.
CACHE_SIZE_FRACTIONS = (1 / 6, 1 / 3, 1 / 2, 1.0)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Harness-side observability knobs.

    ``tracing`` turns on a real :class:`~repro.obs.spans.SpanTracer`
    (the default stays the free null tracer); the capacities bound the
    span ring buffer and the decision-explain log; ``id_seed`` makes
    trace/span ids reproducible run to run (``None``: OS entropy).
    ``profiling`` swaps the no-op profiler for a real
    :class:`~repro.obs.profiling.Profiler` aggregating the hot-path
    stages, with ``profile_top_k`` slowest queries retained; the
    runner then writes a ``profile-<label>.json`` artifact per run.
    ``timeseries`` / ``events`` install live telemetry recorders
    (:mod:`repro.obs.timeseries` / :mod:`repro.obs.events`) on the
    proxy, producing ``timeseries-<label>.json`` (with the embedded
    health report) and ``events-<label>.json`` artifacts.
    """

    tracing: bool = False
    trace_capacity: int = 256
    explain_capacity: int = 256
    id_seed: int | None = None
    profiling: bool = False
    profile_top_k: int = 10
    timeseries: bool = False
    timeseries_interval_ms: float = 1_000.0
    timeseries_capacity: int = 512
    events: bool = False
    event_capacity: int = 256

    def __post_init__(self) -> None:
        if self.trace_capacity < 1 or self.explain_capacity < 1:
            raise ValueError(
                "observability capacities must be positive: "
                f"trace={self.trace_capacity} "
                f"explain={self.explain_capacity}"
            )
        if self.profile_top_k < 1:
            raise ValueError(
                "profile_top_k must be positive: "
                f"{self.profile_top_k}"
            )
        if self.timeseries_interval_ms <= 0:
            raise ValueError(
                "timeseries_interval_ms must be positive: "
                f"{self.timeseries_interval_ms}"
            )
        if self.timeseries_capacity < 1 or self.event_capacity < 1:
            raise ValueError(
                "telemetry capacities must be positive: "
                f"timeseries={self.timeseries_capacity} "
                f"events={self.event_capacity}"
            )


@dataclass(frozen=True)
class ExperimentScale:
    """One self-consistent experiment parameterization."""

    name: str
    sky: SkyCatalogConfig
    trace: RadialTraceConfig
    measure_queries: int  # Figure 5 measures the first 10,000
    server_costs: ServerCostModel = DEFAULT_SERVER_COSTS
    proxy_costs: ProxyCostModel = DEFAULT_PROXY_COSTS
    topology: Topology = DEFAULT_TOPOLOGY
    cache_fractions: tuple[float, ...] = CACHE_SIZE_FRACTIONS
    obs: ObservabilityConfig = ObservabilityConfig()

    @staticmethod
    def paper() -> "ExperimentScale":
        """Full paper scale: the 11,323-query trace, dense catalog."""
        sky = SkyCatalogConfig(
            n_objects=450_000,
            ra_min=120.0,
            ra_max=173.0,
            dec_min=0.0,
            dec_max=30.0,
        )
        return ExperimentScale(
            name="paper",
            sky=sky,
            trace=RadialTraceConfig(n_queries=11_323, sky=sky),
            measure_queries=10_000,
        )

    @staticmethod
    def default() -> "ExperimentScale":
        """Benchmark scale: same density, shorter trace."""
        sky = SkyCatalogConfig(
            n_objects=120_000,
            ra_min=150.0,
            ra_max=176.0,
            dec_min=5.0,
            dec_max=21.0,
        )
        return ExperimentScale(
            name="default",
            sky=sky,
            trace=RadialTraceConfig(n_queries=3_000, sky=sky),
            measure_queries=2_500,
        )

    @staticmethod
    def quick() -> "ExperimentScale":
        """Smoke-test scale for the unit/integration test suite."""
        sky = SkyCatalogConfig(
            n_objects=20_000,
            ra_min=160.0,
            ra_max=170.0,
            dec_min=5.0,
            dec_max=12.0,
        )
        return ExperimentScale(
            name="quick",
            sky=sky,
            trace=RadialTraceConfig(n_queries=500, sky=sky),
            measure_queries=500,
        )

    def with_trace_length(self, n_queries: int) -> "ExperimentScale":
        return replace(
            self,
            trace=replace(self.trace, n_queries=n_queries),
            measure_queries=min(self.measure_queries, n_queries),
        )

    def with_observability(
        self, obs: ObservabilityConfig
    ) -> "ExperimentScale":
        return replace(self, obs=obs)
