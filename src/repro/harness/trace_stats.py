"""Section 4.1's workload profile, measured on the synthetic trace.

The paper: "The query trace for the Radial search form has a total of
11,323 queries.  With an unlimited cache size, nearly 51% (17% query
exact match and 34% query containment) of the Radial search form
queries can be completely answered by the cache.  Additionally, about
9% of the queries overlap."

Our generator is calibrated against the quantities that drive Table 1
and Figure 5 — see EXPERIMENTS.md for how the 17/34 split relates to
occurrence- vs distinct-query counting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner
from repro.obs.metrics import MetricsRegistry
from repro.workload.analyzer import TraceProfile, analyze_trace


@dataclass(frozen=True)
class TraceStatsResult:
    profile: TraceProfile
    distinct_queries: int

    def render(self) -> str:
        profile = self.profile
        headers = ["Quantity", "Measured", "Paper"]
        rows = [
            ["Queries", profile.n_queries, 11_323],
            ["Distinct queries", self.distinct_queries, "(not stated)"],
            ["Fully answerable", profile.fully_answerable, 0.51],
            ["... exact match", profile.exact, "0.17 (see notes)"],
            ["... containment", profile.contained, "0.34 (see notes)"],
            ["Overlapping", profile.overlap, 0.09],
            ["Disjoint", profile.disjoint, "(remainder)"],
        ]
        return render_table(
            "Section 4.1 trace profile (unlimited-cache dispositions)",
            headers,
            rows,
        )

    def to_registry(self) -> MetricsRegistry:
        """The profile as a metrics registry (gauges per disposition)."""
        registry = MetricsRegistry()
        registry.gauge(
            "trace_queries", "Queries in the analyzed trace."
        ).set(self.profile.n_queries)
        registry.gauge(
            "trace_distinct_queries", "Distinct queries in the trace."
        ).set(self.distinct_queries)
        fractions = registry.gauge(
            "trace_disposition_fraction",
            "Unlimited-cache disposition fractions (Section 4.1).",
            ("disposition",),
        )
        profile = self.profile
        for disposition, value in (
            ("fully_answerable", profile.fully_answerable),
            ("exact", profile.exact),
            ("contained", profile.contained),
            ("overlap", profile.overlap),
            ("disjoint", profile.disjoint),
        ):
            fractions.labels(disposition=disposition).set(value)
        return registry

    def snapshot(self) -> dict:
        """A JSON-able metrics snapshot, for cross-PR perf diffing."""
        return self.to_registry().snapshot()


def run_trace_stats(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
) -> TraceStatsResult:
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    trace = runner.trace
    profile = analyze_trace(trace, runner.origin.templates)
    return TraceStatsResult(
        profile=profile, distinct_queries=trace.distinct_count()
    )
