"""Plain-text rendering of experiment tables."""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A fixed-width text table, the harness's output format.

    Numbers are formatted compactly (three decimals for floats under
    ten, otherwise no decimals — efficiencies vs milliseconds).
    """
    formatted = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    columns = [list(column) for column in zip(headers, *formatted)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = [title, ""]
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) < 10:
            return f"{cell:.3f}"
        return f"{cell:.0f}"
    return str(cell)
