"""Figure 6: the three active caching schemes compared.

Paper values (unlimited cache, array description)::

    First  (full semantic caching)          1236 ms   efficiency 0.593
    Second (containment + region containment) 1044 ms efficiency 0.544
    Third  (pure containment)               1081 ms   efficiency 0.511

Shape to reproduce: the *full* scheme has the best cache efficiency but
the *worst* response time — handling cache-intersecting queries costs
more (probe + a pricier remainder query + merge) than it saves, which
is the paper's headline finding.  The Second scheme edges out the Third
because region-containment consolidation keeps the cache tighter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner

PAPER_RESPONSE_MS = {"First": 1236.0, "Second": 1044.0, "Third": 1081.0}
PAPER_EFFICIENCY = {"First": 0.593, "Second": 0.544, "Third": 0.511}

SCHEMES = (
    ("First", CachingScheme.FULL_SEMANTIC),
    ("Second", CachingScheme.REGION_CONTAINMENT),
    ("Third", CachingScheme.CONTAINMENT_ONLY),
)


@dataclass(frozen=True)
class Fig6Result:
    response_ms: dict[str, float]
    efficiency: dict[str, float]

    def render(self) -> str:
        headers = [
            "Scheme",
            "resp ms",
            "paper ms",
            "efficiency",
            "paper eff",
        ]
        rows = [
            [
                label,
                self.response_ms[label],
                PAPER_RESPONSE_MS[label],
                self.efficiency[label],
                PAPER_EFFICIENCY[label],
            ]
            for label, _scheme in SCHEMES
        ]
        return render_table(
            "Figure 6: average response time of active caching schemes "
            "(unlimited cache, array description)",
            headers,
            rows,
        )


def run_fig6(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
) -> Fig6Result:
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    response_ms: dict[str, float] = {}
    efficiency: dict[str, float] = {}
    for label, scheme in SCHEMES:
        result = runner.run(scheme, "array", cache_fraction=None)
        response_ms[label] = result.stats.average_response_ms
        efficiency[label] = result.stats.average_cache_efficiency
    return Fig6Result(response_ms=response_ms, efficiency=efficiency)
