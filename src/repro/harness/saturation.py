"""Graceful saturation: throughput and latency as offered load climbs.

The paper's experiments run one query at a time; this experiment asks
what the proxy does when *thousands* of closed-loop clients hit it at
once.  A proxy without admission control would queue without bound and
every response time would diverge.  With the admission layer
(:mod:`repro.admission`) the answer should be *graceful saturation*:

* throughput rises with offered load until the service capacity is
  reached, then stays on a plateau instead of collapsing;
* the latency of queries that *are* admitted stays bounded by the
  configured queue deadline — waiting is capped, not unbounded;
* the excess load is turned away as structured ``shed`` /
  ``queued-timeout`` records, and the shed fraction grows with offered
  load while ``serve`` never raises.

Protocol: for each rung of a client ladder (8 clients up to 10,000 at
bench scale), build a fresh proxy + :class:`~repro.admission.controller.
AdmissionController` + :class:`~repro.sched.loop.EventLoop` and drive a
seeded :class:`~repro.workload.closed_loop.ClosedLoopDriver` population
to completion.  Everything runs on the deterministic event-time axis,
so the whole curve is reproducible bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.admission import AdmissionConfig, AdmissionController
from repro.core.schemes import CachingScheme
from repro.core.stats import QueryOutcome
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner
from repro.sched import EventLoop, ProxyFrontend
from repro.workload.closed_loop import ClosedLoopConfig, ClosedLoopDriver

#: Client-population ladders.  The quick ladder keeps unit tests fast;
#: the full ladder's 10,000-client rung is the saturation headline.
QUICK_LADDER = (8, 64, 800)
FULL_LADDER = (8, 64, 800, 2_500, 10_000)

#: The admission configuration under test.  A short queue keeps the
#: worst-case wait (queue_depth / max_inflight service times) well
#: under the deadline, so admitted queries finish inside it.
BENCH_ADMISSION = AdmissionConfig(
    max_inflight=8,
    max_queue_depth=16,
    queue_deadline_ms=15_000.0,
    overload_threshold=64,
    overload_cooldown_ms=2_000.0,
)

#: Outcomes that mean the query was admitted and dispatched (a failed
#: dispatch still occupied a slot; only shed/timed-out queries never ran).
ADMITTED_OUTCOMES = frozenset(
    {
        QueryOutcome.SERVED,
        QueryOutcome.DEGRADED,
        QueryOutcome.PARTIAL,
        QueryOutcome.FAILED,
    }
)


@dataclass(frozen=True)
class LoadPoint:
    """One rung of the ladder: the proxy under ``n_clients`` of load."""

    n_clients: int
    submitted: int
    #: Records the proxy produced — equals ``submitted`` when every
    #: query resolved structurally (the never-raises contract).
    records: int
    served: int
    shed: int
    timed_out: int
    failed: int
    end_ms: float
    throughput_qps: float
    p95_admitted_ms: float
    shed_fraction: float
    overload_opens: int
    #: This rung's live-telemetry snapshots ({"timeseries", "events"})
    #: when the runner's scale enables the recorders; ``None`` otherwise.
    #: Deliberately excluded from :meth:`to_dict` — the stitched
    #: artifacts (:func:`stitch_telemetry`) are the export surface.
    telemetry: dict | None = None

    def to_dict(self) -> dict:
        return {
            "n_clients": self.n_clients,
            "submitted": self.submitted,
            "records": self.records,
            "served": self.served,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "end_ms": self.end_ms,
            "throughput_qps": self.throughput_qps,
            "p95_admitted_ms": self.p95_admitted_ms,
            "shed_fraction": self.shed_fraction,
            "overload_opens": self.overload_opens,
        }


@dataclass(frozen=True)
class SaturationResult:
    """The throughput-vs-load curve across the client ladder."""

    points: tuple[LoadPoint, ...]
    admission: dict
    queries_per_client: int
    think_time_ms: float
    seed: int

    @property
    def deadline_ms(self) -> float:
        return float(self.admission["config"]["queue_deadline_ms"])

    @property
    def peak_throughput_qps(self) -> float:
        return max(point.throughput_qps for point in self.points)

    @property
    def plateau_fraction(self) -> float:
        """Worst throughput at or past the peak, as a fraction of it.

        1.0 is a flat plateau; a congestion-collapse curve (throughput
        falling as load keeps climbing) drags this toward zero.
        """
        peak = self.peak_throughput_qps
        if peak <= 0:
            return 0.0
        start = max(
            index
            for index, point in enumerate(self.points)
            if point.throughput_qps == peak
        )
        return min(
            point.throughput_qps for point in self.points[start:]
        ) / peak

    def to_dict(self) -> dict:
        return {
            "admission": self.admission,
            "queries_per_client": self.queries_per_client,
            "think_time_ms": self.think_time_ms,
            "seed": self.seed,
            "peak_throughput_qps": self.peak_throughput_qps,
            "plateau_fraction": self.plateau_fraction,
            "points": [point.to_dict() for point in self.points],
        }

    def render(self) -> str:
        headers = [
            "clients",
            "submitted",
            "served",
            "shed",
            "timeout",
            "qps",
            "p95 adm ms",
            "shed frac",
            "opens",
        ]
        rows = [
            [
                point.n_clients,
                point.submitted,
                point.served,
                point.shed,
                point.timed_out,
                point.throughput_qps,
                point.p95_admitted_ms,
                point.shed_fraction,
                point.overload_opens,
            ]
            for point in self.points
        ]
        return render_table(
            "Saturation: closed-loop load ladder against "
            f"{self.admission['config']['max_inflight']} service slots "
            f"(queue {self.admission['config']['max_queue_depth']}, "
            f"deadline {self.deadline_ms:.0f} ms)",
            headers,
            rows,
        )


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered)) - 1))
    return ordered[rank]


def ladder_for(scale: ExperimentScale) -> tuple[int, ...]:
    return QUICK_LADDER if scale.name == "quick" else FULL_LADDER


def run_load_point(
    runner: ExperimentRunner,
    n_clients: int,
    admission: AdmissionConfig,
    queries_per_client: int,
    think_time_ms: float,
    seed: int,
) -> LoadPoint:
    """One ladder rung on a fresh proxy, controller, and event loop."""
    proxy = runner.build_proxy(
        CachingScheme.FULL_SEMANTIC,
        "array",
        cache_fraction=None,
        admission=AdmissionController(admission),
    )
    frontend = ProxyFrontend(proxy, EventLoop())
    driver = ClosedLoopDriver(
        frontend,
        runner.trace,
        ClosedLoopConfig(
            n_clients=n_clients,
            queries_per_client=queries_per_client,
            think_time_ms=think_time_ms,
            seed=seed,
        ),
    )
    stats = driver.run()
    telemetry = None
    if proxy.timeseries.enabled or proxy.events.enabled:
        series = proxy.timeseries.snapshot()
        series["health"] = proxy.health.evaluate(driver.loop.now_ms)
        telemetry = {
            "timeseries": series,
            "events": proxy.events.snapshot(),
        }
    snapshot = proxy.admission.snapshot()
    counts = {
        outcome.value: count
        for outcome, count in stats.outcome_counts().items()
    }
    served = counts.get(QueryOutcome.SERVED.value, 0)
    shed = counts.get(QueryOutcome.SHED.value, 0)
    timed_out = counts.get(QueryOutcome.QUEUED_TIMEOUT.value, 0)
    end_ms = driver.loop.now_ms
    admitted_ms = [
        record.response_ms
        for record in stats.records
        if record.outcome in ADMITTED_OUTCOMES
    ]
    submitted = snapshot["submitted"]
    return LoadPoint(
        n_clients=n_clients,
        submitted=submitted,
        records=len(stats.records),
        served=served,
        shed=shed,
        timed_out=timed_out,
        failed=counts.get(QueryOutcome.FAILED.value, 0),
        end_ms=end_ms,
        throughput_qps=served / (end_ms / 1_000.0) if end_ms > 0 else 0.0,
        p95_admitted_ms=_percentile(admitted_ms, 0.95),
        shed_fraction=(shed + timed_out) / submitted if submitted else 0.0,
        overload_opens=snapshot["overload_opens"],
        telemetry=telemetry,
    )


def run_saturation(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
    ladder: tuple[int, ...] | None = None,
    admission: AdmissionConfig = BENCH_ADMISSION,
    queries_per_client: int = 2,
    think_time_ms: float = 4_000.0,
    seed: int = 339,
) -> SaturationResult:
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    rungs = ladder or ladder_for(runner.scale)
    points = tuple(
        run_load_point(
            runner,
            n_clients,
            admission,
            queries_per_client,
            think_time_ms,
            seed,
        )
        for n_clients in rungs
    )
    return SaturationResult(
        points=points,
        admission={"config": AdmissionController(admission).snapshot()["config"]},
        queries_per_client=queries_per_client,
        think_time_ms=think_time_ms,
        seed=seed,
    )


def stitch_telemetry(result: SaturationResult) -> tuple[dict, dict] | None:
    """Concatenate the per-rung telemetry onto one monotone time axis.

    Each rung runs on a fresh proxy whose clock starts at zero, so the
    per-rung samples and events all live near the origin.  Stitching
    shifts every rung's timestamps by the cumulative duration of the
    rungs before it (rounded up to the sampling grid), producing one
    ``timeseries`` document and one ``events`` document whose timeline
    walks the whole ladder — the shed-rate lane rising rung over rung
    is the graceful-saturation picture in time-series form.  Returns
    ``None`` when the rungs carried no telemetry (recorders disabled).
    """
    stitched = [p for p in result.points if p.telemetry is not None]
    if not stitched:
        return None
    first = stitched[0].telemetry["timeseries"]
    interval = float(first.get("interval_ms") or 1_000.0)
    samples: list[dict] = []
    events: list[dict] = []
    counts: dict[str, int] = {}
    total = 0
    rungs: list[dict] = []
    offset = 0.0
    for point in stitched:
        series = point.telemetry["timeseries"]
        flight = point.telemetry["events"]
        for sample in series.get("samples", []):
            shifted = dict(sample)
            shifted["t_ms"] = sample["t_ms"] + offset
            samples.append(shifted)
        for event in flight.get("events", []):
            shifted = dict(event)
            shifted["at_ms"] = event["at_ms"] + offset
            events.append(shifted)
        total += flight.get("total", 0)
        for code, count in flight.get("counts", {}).items():
            counts[code] = counts.get(code, 0) + count
        span = math.ceil(point.end_ms / interval) * interval
        rungs.append(
            {
                "n_clients": point.n_clients,
                "t_start_ms": offset,
                "t_end_ms": offset + span,
                "shed_fraction": point.shed_fraction,
            }
        )
        offset += span
    timeseries_doc = {
        "enabled": True,
        "clock": "sim-ms",
        "interval_ms": interval,
        "capacity": first.get("capacity", 0),
        "lanes": first.get("lanes", {}),
        "samples": samples,
        "rungs": rungs,
        "health": stitched[-1].telemetry["timeseries"].get("health"),
    }
    events_doc = {
        "enabled": True,
        "clock": "sim-ms",
        "capacity": max(
            p.telemetry["events"].get("capacity", 0) for p in stitched
        ),
        "total": total,
        "counts": dict(sorted(counts.items())),
        "events": events,
        "rungs": rungs,
    }
    return timeseries_doc, events_doc
