"""Availability under origin faults: what caching buys when the
origin goes away.

The paper measures caching as a latency win.  This experiment measures
the *robustness* win the same cache provides: with the resilience
layer (retry, circuit breaker, stale-serve degradation), a semantic
cache keeps answering queries through an origin outage that makes a
cacheless proxy fail every request.

Protocol, per caching scheme:

1. **Calibrate** — replay the measured trace fault-free with a fixed
   think time between queries and read the simulated end time ``T``
   off the proxy's clock.  Response times differ across schemes, so
   each scheme gets its own ``T``; the outage is placed at the same
   *fractional* position for all of them.
2. **Fault** — replay the same trace on a fresh proxy with a seeded
   :class:`~repro.faults.plan.FaultPlan` installed: one outage window
   covering ``[0.35 T, 0.55 T)`` plus a small transient error rate
   over the whole run (exercising the retry path outside the outage).
3. **Report** — the answered fraction (served + degraded + partial),
   p95 response time, per-outcome counts, total retries, and breaker
   opens.

Everything is simulated-clock-driven and seeded, so the whole table
is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schemes import CachingScheme
from repro.core.stats import QueryOutcome, TraceStats
from repro.faults.plan import FaultPlan, OutageWindow
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner
from repro.workload.rbe import BrowserEmulator

#: The schemes compared: no caching, passive, and two active schemes.
SCHEMES = (
    CachingScheme.NO_CACHE,
    CachingScheme.PASSIVE,
    CachingScheme.CONTAINMENT_ONLY,
    CachingScheme.FULL_SEMANTIC,
)

#: Where the outage sits, as fractions of the calibrated trace time.
OUTAGE_WINDOW_FRACTIONS = (0.35, 0.55)


@dataclass(frozen=True)
class SchemeAvailability:
    """One scheme's measurements under the fault plan."""

    scheme: CachingScheme
    answered_fraction: float
    p95_ms: float
    fault_free_p95_ms: float
    outcome_counts: dict[str, int]
    total_retries: int
    breaker_opens: int
    outage_ms: tuple[float, float]

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme.value,
            "answered_fraction": self.answered_fraction,
            "p95_ms": self.p95_ms,
            "fault_free_p95_ms": self.fault_free_p95_ms,
            "outcome_counts": dict(self.outcome_counts),
            "total_retries": self.total_retries,
            "breaker_opens": self.breaker_opens,
            "outage_ms": list(self.outage_ms),
        }


@dataclass(frozen=True)
class FaultAvailabilityResult:
    """The availability table across caching schemes."""

    schemes: dict[str, SchemeAvailability]
    think_time_ms: float
    error_rate: float
    seed: int

    @property
    def answered_fraction(self) -> dict[str, float]:
        return {
            label: row.answered_fraction
            for label, row in self.schemes.items()
        }

    def to_dict(self) -> dict:
        return {
            "think_time_ms": self.think_time_ms,
            "error_rate": self.error_rate,
            "seed": self.seed,
            "schemes": {
                label: row.to_dict() for label, row in self.schemes.items()
            },
        }

    def render(self) -> str:
        headers = [
            "Scheme",
            "answered",
            "p95 ms",
            "served",
            "degraded",
            "partial",
            "failed",
            "retries",
            "opens",
        ]
        rows = []
        for label, row in self.schemes.items():
            counts = row.outcome_counts
            rows.append(
                [
                    label,
                    row.answered_fraction,
                    row.p95_ms,
                    counts.get(QueryOutcome.SERVED.value, 0),
                    counts.get(QueryOutcome.DEGRADED.value, 0),
                    counts.get(QueryOutcome.PARTIAL.value, 0),
                    counts.get(QueryOutcome.FAILED.value, 0),
                    row.total_retries,
                    row.breaker_opens,
                ]
            )
        return render_table(
            "Fault availability: answered fraction per scheme under an "
            f"origin outage covering {OUTAGE_WINDOW_FRACTIONS[0]:.0%}-"
            f"{OUTAGE_WINDOW_FRACTIONS[1]:.0%} of the trace",
            headers,
            rows,
        )


def _replay(
    runner: ExperimentRunner,
    scheme: CachingScheme,
    plan: FaultPlan | None,
    think_time_ms: float,
) -> tuple[TraceStats, float, int, int]:
    """One trace replay; returns (stats, end_ms, retries, opens)."""
    proxy = runner.build_proxy(scheme, "array", cache_fraction=None)
    if plan is not None:
        proxy.install_fault_plan(plan)
    emulator = BrowserEmulator(proxy)
    stats = emulator.run(
        runner.trace,
        limit=runner.scale.measure_queries,
        think_time_ms=think_time_ms,
    )
    return (
        stats,
        proxy.clock.now_ms,
        stats.total_retries,
        proxy.breaker.opens,
    )


def run_fault_availability(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
    think_time_ms: float = 1_000.0,
    error_rate: float = 0.02,
    seed: int = 7,
) -> FaultAvailabilityResult:
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    schemes: dict[str, SchemeAvailability] = {}
    for scheme in SCHEMES:
        calibration, end_ms, _, _ = _replay(
            runner, scheme, None, think_time_ms
        )
        outage = OutageWindow(
            start_ms=OUTAGE_WINDOW_FRACTIONS[0] * end_ms,
            end_ms=OUTAGE_WINDOW_FRACTIONS[1] * end_ms,
        )
        plan = FaultPlan(
            seed=seed, outages=(outage,), error_rate=error_rate
        )
        stats, _, retries, opens = _replay(
            runner, scheme, plan, think_time_ms
        )
        schemes[scheme.value] = SchemeAvailability(
            scheme=scheme,
            answered_fraction=stats.answered_fraction,
            p95_ms=stats.response_percentile(0.95),
            fault_free_p95_ms=calibration.response_percentile(0.95),
            outcome_counts={
                outcome.value: count
                for outcome, count in stats.outcome_counts().items()
            },
            total_retries=retries,
            breaker_opens=opens,
            outage_ms=(outage.start_ms, outage.end_ms),
        )
    return FaultAvailabilityResult(
        schemes=schemes,
        think_time_ms=think_time_ms,
        error_rate=error_rate,
        seed=seed,
    )
