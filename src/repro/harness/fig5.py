"""Figure 5: average response time under the proxy configurations.

Paper shape (Section 4.2, Figure 5), over the first 10,000 queries:

* NC (no cache) slowest, a bit over 2 seconds, flat in cache size;
* PC around 1.4 s (~30% better than NC);
* active caching around 1.2 s, best at every size;
* the R-tree description (ACR) does *not* beat the array (ACNR) and is
  sometimes slightly slower;
* response time barely improves with cache size (maintenance cost
  offsets efficiency gains).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner
from repro.harness.table1 import _fraction_label

PAPER_SERIES_NOTES = {
    "NC": "just over 2000 ms, flat",
    "PC": "about 1400 ms",
    "ACNR": "about 1200 ms",
    "ACR": "about 1200 ms, never faster than ACNR",
}

# The four plotted series: (label, scheme, description kind).
SERIES = (
    ("ACR", CachingScheme.FULL_SEMANTIC, "rtree"),
    ("ACNR", CachingScheme.FULL_SEMANTIC, "array"),
    ("PC", CachingScheme.PASSIVE, "array"),
    ("NC", CachingScheme.NO_CACHE, "array"),
)


@dataclass(frozen=True)
class Fig5Result:
    """response_ms[series_label][cache_fraction]"""

    response_ms: dict[str, dict[float, float]]

    def render(self) -> str:
        fractions = sorted(next(iter(self.response_ms.values())))
        headers = ["Series"] + [_fraction_label(f) for f in fractions]
        rows = [
            [label] + [self.response_ms[label][f] for f in fractions]
            for label, _scheme, _kind in SERIES
        ]
        return render_table(
            "Figure 5: average response time (ms) of the first "
            "N trace queries",
            headers,
            rows,
        )


def run_fig5(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
) -> Fig5Result:
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    response_ms: dict[str, dict[float, float]] = {}
    for label, scheme, kind in SERIES:
        series: dict[float, float] = {}
        for fraction in runner.scale.cache_fractions:
            result = runner.run(scheme, kind, fraction)
            series[fraction] = result.stats.average_response_ms
        response_ms[label] = series
    return Fig5Result(response_ms=response_ms)
