"""Ablations backing the paper's two micro-claims.

1. **Checking time** (Section 4.2): "the cache checking time with or
   without the R-tree index is always under 100 milliseconds", and
   "the maintenance of the R-tree index is more costly than that of an
   array".  :func:`run_description_ablation` measures, per query, the
   *real* wall-clock description-probe time under both implementations
   plus the simulated check and maintenance charges.

2. **Remainder tradeoff** (Section 3.2): whether shipping a remainder
   query beats re-fetching the whole result depends on the balance
   between saved transfer and the remainder's extra server cost.
   :func:`run_remainder_ablation` replays an overlap-heavy trace under
   the full-semantic scheme and the region-containment scheme (which
   forwards whole queries on general overlap) and reports server time,
   bytes shipped from the origin, and response time for each.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner


@dataclass(frozen=True)
class DescriptionAblationResult:
    """Array vs R-tree cache description measurements."""

    max_check_wall_ms: dict[str, float]
    mean_check_sim_ms: dict[str, float]
    mean_maintenance_sim_ms: dict[str, float]
    response_ms: dict[str, float]

    def render(self) -> str:
        headers = [
            "Description",
            "max real check ms",
            "mean sim check ms",
            "mean sim maint ms",
            "avg response ms",
        ]
        rows = [
            [
                kind,
                self.max_check_wall_ms[kind],
                self.mean_check_sim_ms[kind],
                self.mean_maintenance_sim_ms[kind],
                self.response_ms[kind],
            ]
            for kind in ("array", "rtree")
        ]
        return render_table(
            "Ablation: cache description (paper claim: checking < 100 ms "
            "real time; R-tree maintenance costlier than array)",
            headers,
            rows,
        )


def run_description_ablation(
    runner: ExperimentRunner | None = None,
    scale: ExperimentScale | None = None,
) -> DescriptionAblationResult:
    runner = runner or ExperimentRunner(scale or ExperimentScale.default())
    max_wall: dict[str, float] = {}
    mean_check: dict[str, float] = {}
    mean_maint: dict[str, float] = {}
    response: dict[str, float] = {}
    for kind in ("array", "rtree"):
        result = runner.run(
            CachingScheme.FULL_SEMANTIC, kind, cache_fraction=None
        )
        stats = result.stats
        steps = stats.average_step_ms()
        max_wall[kind] = stats.max_check_wall_ms()
        mean_check[kind] = steps.get("check", 0.0)
        mean_maint[kind] = steps.get("maintenance", 0.0)
        response[kind] = stats.average_response_ms
    return DescriptionAblationResult(
        max_check_wall_ms=max_wall,
        mean_check_sim_ms=mean_check,
        mean_maintenance_sim_ms=mean_maint,
        response_ms=response,
    )


@dataclass(frozen=True)
class RemainderAblationResult:
    """Remainder queries vs whole-query forwarding on overlaps."""

    response_ms: dict[str, float]
    origin_bytes: dict[str, float]
    origin_ms: dict[str, float]
    efficiency: dict[str, float]

    def render(self) -> str:
        headers = [
            "Overlap handling",
            "avg response ms",
            "avg origin ms",
            "avg origin KB",
            "efficiency",
        ]
        rows = [
            [
                label,
                self.response_ms[label],
                self.origin_ms[label],
                self.origin_bytes[label] / 1024.0,
                self.efficiency[label],
            ]
            for label in ("remainder", "forward-whole")
        ]
        return render_table(
            "Ablation: remainder queries vs whole-query forwarding on an "
            "overlap-heavy trace (paper Section 3.2 tradeoff)",
            headers,
            rows,
        )


def run_remainder_ablation(
    scale: ExperimentScale | None = None,
) -> RemainderAblationResult:
    """Replay an overlap-heavy variant of the trace both ways."""
    scale = scale or ExperimentScale.default()
    overlap_heavy = replace(
        scale,
        trace=replace(
            scale.trace, p_repeat=0.1, p_zoom=0.1, p_pan=0.45, p_zoom_out=0.0
        ),
    )
    runner = ExperimentRunner(overlap_heavy)
    labelled = {
        "remainder": CachingScheme.FULL_SEMANTIC,
        "forward-whole": CachingScheme.REGION_CONTAINMENT,
    }
    response: dict[str, float] = {}
    origin_bytes: dict[str, float] = {}
    origin_ms: dict[str, float] = {}
    efficiency: dict[str, float] = {}
    for label, scheme in labelled.items():
        stats = runner.run(scheme, "array", cache_fraction=None).stats
        steps = stats.average_step_ms()
        response[label] = stats.average_response_ms
        origin_ms[label] = steps.get("origin", 0.0)
        origin_bytes[label] = (
            sum(r.origin_bytes for r in stats.records) / len(stats.records)
            if stats.records
            else 0.0
        )
        efficiency[label] = stats.average_cache_efficiency
    return RemainderAblationResult(
        response_ms=response,
        origin_bytes=origin_bytes,
        origin_ms=origin_ms,
        efficiency=efficiency,
    )
