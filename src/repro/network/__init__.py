"""Simulated network and time.

The paper measures wall-clock response times between a browser emulator
in Hong Kong and the SkyServer.  We cannot reproduce that testbed, so
time is *simulated*: every component charges its work to a
:class:`~repro.network.clock.SimulatedClock` through explicit cost
models (:mod:`repro.server.costs` for the origin,
:mod:`repro.core.costs` for the proxy) and
:class:`~repro.network.link.NetworkLink` for transfer delays.

The result is deterministic and laptop-scale while preserving the
*relative* costs that drive the paper's findings: WAN round trips and
server execution dominate; local cache answering is cheap; remainder
queries cost the server more than plain ones.
"""

from repro.network.clock import SimulatedClock
from repro.network.link import NetworkLink, Topology

__all__ = ["NetworkLink", "SimulatedClock", "Topology"]
