"""Network links: latency + bandwidth delay models.

A :class:`Topology` may carry a *transfer recorder* — any object
satisfying the :class:`TransferRecorder` protocol (see
:class:`repro.obs.instrument.ProxyInstrumentation`) — that is notified
of every simulated round trip, feeding per-hop byte counters and
latency histograms without changing the returned delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol, runtime_checkable


@runtime_checkable
class TransferRecorder(Protocol):
    """Observer of simulated round trips (per-hop bytes and delay)."""

    def record_transfer(self, hop: str, n_bytes: int, ms: float) -> None:
        ...


@dataclass(frozen=True)
class NetworkLink:
    """A one-way network path with fixed latency and bandwidth.

    ``transfer_ms(n)`` is the classic first-byte + serialization model:
    ``latency + n / bandwidth``.  Defaults are per-direction; a request/
    response exchange charges the link twice.
    """

    latency_ms: float
    bandwidth_bytes_per_ms: float

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError(f"negative latency: {self.latency_ms}")
        if self.bandwidth_bytes_per_ms <= 0:
            raise ValueError(
                f"bandwidth must be positive: {self.bandwidth_bytes_per_ms}"
            )

    def transfer_ms(self, n_bytes: int) -> float:
        if n_bytes < 0:
            raise ValueError(f"negative payload size: {n_bytes}")
        return self.latency_ms + n_bytes / self.bandwidth_bytes_per_ms


@dataclass(frozen=True)
class Topology:
    """The experiment's two-hop network: browser -- proxy -- origin.

    Defaults approximate the paper's setting: the proxy sits near the
    clients (campus LAN) while the origin web site is across a WAN
    (Hong Kong to the SkyServer).  Request messages are small and fixed
    size; responses carry the serialized result table.
    """

    client_proxy: NetworkLink = NetworkLink(
        latency_ms=5.0, bandwidth_bytes_per_ms=1000.0
    )
    proxy_origin: NetworkLink = NetworkLink(
        latency_ms=150.0, bandwidth_bytes_per_ms=250.0
    )
    request_bytes: int = 600
    recorder: TransferRecorder | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.request_bytes <= 0:
            raise ValueError(
                f"request size must be positive: {self.request_bytes}"
            )

    def instrumented(self, recorder: TransferRecorder) -> "Topology":
        """A copy of this topology that reports transfers to
        ``recorder.record_transfer(hop, n_bytes, ms)``."""
        return replace(self, recorder=recorder)

    def origin_round_trip_ms(
        self, response_bytes: int, *, factor: float = 1.0
    ) -> float:
        """Proxy -> origin request plus origin -> proxy response.

        ``factor`` scales the whole round trip — the hook fault
        injection uses for slowdown windows — and is recorded scaled,
        so instrumentation sees the delay actually charged.
        """
        if factor <= 0:
            raise ValueError(f"round-trip factor must be positive: {factor}")
        ms = (
            self.proxy_origin.transfer_ms(self.request_bytes)
            + self.proxy_origin.transfer_ms(response_bytes)
        ) * factor
        self._record("origin", self.request_bytes + response_bytes, ms)
        return ms

    def client_round_trip_ms(self, response_bytes: int) -> float:
        """Browser -> proxy request plus proxy -> browser response."""
        ms = self.client_proxy.transfer_ms(
            self.request_bytes
        ) + self.client_proxy.transfer_ms(response_bytes)
        self._record("client", self.request_bytes + response_bytes, ms)
        return ms

    def _record(self, hop: str, n_bytes: int, ms: float) -> None:
        if self.recorder is not None:
            self.recorder.record_transfer(hop, n_bytes, ms)
