"""A simulated millisecond clock."""

from __future__ import annotations

from repro.locking import guarded_by, named_lock


@guarded_by("proxy.clock", "_now_ms")
class SimulatedClock:
    """Monotonic simulated time in milliseconds.

    Components advance the clock by the cost of their work; nothing ever
    reads the real time, so experiment results are reproducible across
    machines and runs.

    ``advance`` takes the ``proxy.clock`` named lock so concurrent
    serve stages charging costs never lose an increment; ``now_ms``
    reads without it (a float read is atomic under the GIL).
    """

    def __init__(self) -> None:
        self._lock = named_lock("proxy.clock")
        self._now_ms = 0.0

    @property
    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, delta_ms: float) -> None:
        if delta_ms < 0:
            raise ValueError(f"cannot advance time by {delta_ms} ms")
        with self._lock:
            self._now_ms += delta_ms

    def measure(self) -> "_Span":
        """Context-free span helper: ``span = clock.measure()`` ...
        ``elapsed = span.elapsed()``."""
        return _Span(self)


class _Span:
    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._start = clock.now_ms

    def elapsed(self) -> float:
        return self._clock.now_ms - self._start
