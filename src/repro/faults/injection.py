"""Fault-injecting wrappers for the origin server and the topology.

Both wrappers are transparent when no fault is scheduled: they delegate
to the wrapped object and return its answers unchanged.  When the plan
says otherwise they *simulate* the failure — raising the retryable
errors of :mod:`repro.faults.errors` or scaling the simulated costs —
and every injected delay flows through the existing instrumentation
paths (``server_ms`` on the origin response, ``transfer_ms`` via the
topology's recorder), so :class:`~repro.core.stats.QueryRecord`
timings stay honest.

Time comes exclusively from the proxy's
:class:`~repro.network.clock.SimulatedClock`; the wrappers never read
the wall clock (lint rule FP301).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.faults.errors import OriginTimeoutError, OriginUnavailableError
from repro.faults.plan import FaultKind, FaultSession
from repro.network.clock import SimulatedClock
from repro.network.link import Topology
from repro.server.origin import OriginResponse, OriginServer
from repro.sqlparser.ast import SelectStatement
from repro.templates.manager import BoundQuery


class FaultyOrigin:
    """An origin server wrapper that fails on the plan's schedule.

    Implements the ``execute_*`` surface of
    :class:`~repro.server.origin.OriginServer` (and of the HTTP client
    that mirrors it); everything else — ``catalog``, ``templates``,
    ``costs`` — is delegated untouched.  ``data_version`` additionally
    applies any version bumps the plan scheduled at or before the
    current simulated time, which is how a plan flips the data version
    mid-trace.
    """

    def __init__(
        self,
        inner: OriginServer,
        session: FaultSession,
        clock: SimulatedClock,
    ) -> None:
        self._inner = inner
        self._session = session
        self._clock = clock

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    @property
    def inner(self) -> OriginServer:
        return self._inner

    @property
    def data_version(self) -> int:
        for _ in range(self._session.due_version_bumps(self._clock.now_ms)):
            self._inner.bump_data_version()
        return self._inner.data_version

    # ----------------------------------------------------- fault gating
    def _guarded(
        self, fn: Callable[[], OriginResponse]
    ) -> OriginResponse:
        decision = self._session.origin_attempt(self._clock.now_ms)
        if decision.kind is FaultKind.OUTAGE:
            raise OriginUnavailableError(
                "origin outage window active", reason="outage"
            )
        if decision.kind is FaultKind.TIMEOUT:
            raise OriginTimeoutError()
        if decision.kind is FaultKind.ERROR:
            raise OriginUnavailableError("injected transient failure")
        response = fn()
        if decision.slowdown > 1.0:
            response = OriginResponse(
                response.result, response.server_ms * decision.slowdown
            )
        return response

    # ------------------------------------------- OriginServer interface
    def execute_bound(self, bound: BoundQuery) -> OriginResponse:
        return self._guarded(lambda: self._inner.execute_bound(bound))

    def execute_statement(
        self, statement: SelectStatement
    ) -> OriginResponse:
        return self._guarded(
            lambda: self._inner.execute_statement(statement)
        )

    def execute_sql(self, sql: str) -> OriginResponse:
        return self._guarded(lambda: self._inner.execute_sql(sql))

    def execute_remainder(
        self, statement: SelectStatement, n_holes: int
    ) -> OriginResponse:
        return self._guarded(
            lambda: self._inner.execute_remainder(statement, n_holes)
        )

    def execute_form(
        self, form_name: str, form_values: Mapping[str, str]
    ) -> OriginResponse:
        return self._guarded(
            lambda: self._inner.execute_form(form_name, form_values)
        )


class FaultyTopology:
    """A topology wrapper that stretches the proxy -> origin hop.

    During a slowdown window every origin round trip is multiplied by
    the window's factor, charged through
    :meth:`~repro.network.link.Topology.origin_round_trip_ms`'s own
    recorder path.  The client hop (browser -- proxy, a LAN) is never
    scaled.
    """

    def __init__(
        self,
        inner: Topology,
        session: FaultSession,
        clock: SimulatedClock,
    ) -> None:
        self._inner = inner
        self._session = session
        self._clock = clock

    @property
    def inner(self) -> Topology:
        return self._inner

    @property
    def request_bytes(self) -> int:
        return self._inner.request_bytes

    def instrumented(self, recorder: Any) -> "FaultyTopology":
        return FaultyTopology(
            self._inner.instrumented(recorder), self._session, self._clock
        )

    def origin_round_trip_ms(self, response_bytes: int) -> float:
        return self._inner.origin_round_trip_ms(
            response_bytes,
            factor=self._session.slowdown_factor(self._clock.now_ms),
        )

    def client_round_trip_ms(self, response_bytes: int) -> float:
        return self._inner.client_round_trip_ms(response_bytes)
