"""Seeded shard-level fault plans for the sharded proxy tier.

A :class:`ShardCrashPlan` schedules what goes wrong *inside the tier*
— a shard worker crashing, hanging, or slowing mid-trace — on the same
simulated clock and with the same determinism contract as the origin
:class:`~repro.faults.plan.FaultPlan`: plans are immutable and
JSON-round-trippable, a :class:`ShardCrashSession` owns the seeded
``random.Random``, and :meth:`ShardCrashSession.route_attempt` draws
exactly one random number per routing attempt regardless of the
configured rates, so enabling one fault kind never perturbs another's
draws.  Nothing here may read the wall clock (FP301) or use unseeded
randomness (FP305).

Fault kinds, per window:

* ``crash`` — the shard is dead for the window (forever when the
  window is open-ended): the router must not dispatch to it and its
  cache is gone unless a warm handoff exported it first;
* ``hang`` — the shard accepts nothing for the window but keeps its
  cache: attempts are unreachable, recovery is in place;
* ``slow`` — the shard serves at ``factor``× its normal simulated
  response time for the window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random
from typing import Any, Mapping

from repro.faults.errors import FaultPlanError

#: The pinned shard-fault kinds (wire values of ``ShardFaultWindow.kind``).
SHARD_FAULT_KINDS = ("crash", "hang", "slow")


@dataclass(frozen=True)
class ShardFaultWindow:
    """One shard's scheduled misbehaviour over a half-open interval.

    ``end_ms=None`` leaves the window open-ended — the idiom for a
    mid-trace crash the shard never comes back from.
    """

    shard_id: str
    kind: str
    start_ms: float
    end_ms: float | None = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.shard_id:
            raise FaultPlanError("shard fault window needs a shard id")
        if self.kind not in SHARD_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown shard fault kind {self.kind!r}; expected one "
                f"of {SHARD_FAULT_KINDS}"
            )
        if self.start_ms < 0:
            raise FaultPlanError(
                f"window starts before t=0: {self.start_ms}"
            )
        if self.end_ms is not None and self.end_ms <= self.start_ms:
            raise FaultPlanError(
                f"empty or inverted window: [{self.start_ms}, "
                f"{self.end_ms})"
            )
        if self.kind == "slow" and self.factor < 1.0:
            raise FaultPlanError(
                f"slowdown factor must be >= 1: {self.factor}"
            )

    def active(self, now_ms: float) -> bool:
        if now_ms < self.start_ms:
            return False
        return self.end_ms is None or now_ms < self.end_ms


@dataclass(frozen=True)
class ShardCrashPlan:
    """A seeded, simulated-clock-driven shard fault schedule."""

    seed: int = 0
    faults: tuple[ShardFaultWindow, ...] = ()
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise FaultPlanError(
                f"error_rate must be in [0, 1]: {self.error_rate}"
            )

    def session(self) -> "ShardCrashSession":
        """A fresh, mutable execution of this plan."""
        return ShardCrashSession(self)

    # -------------------------------------------------------- wire form
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [
                {
                    "shard_id": w.shard_id,
                    "kind": w.kind,
                    "start_ms": w.start_ms,
                    "end_ms": w.end_ms,
                    "factor": w.factor,
                }
                for w in self.faults
            ],
            "error_rate": self.error_rate,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ShardCrashPlan":
        """Parse a wire-form plan; raises :class:`FaultPlanError` on
        anything malformed."""
        if not isinstance(payload, Mapping):
            raise FaultPlanError(
                "shard crash plan must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {"seed", "faults", "error_rate"}
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown shard crash plan fields: {sorted(unknown)}"
            )
        try:
            faults = tuple(
                ShardFaultWindow(
                    shard_id=str(w["shard_id"]),
                    kind=str(w["kind"]),
                    start_ms=float(w["start_ms"]),
                    end_ms=(
                        None
                        if w.get("end_ms") is None
                        else float(w["end_ms"])
                    ),
                    factor=float(w.get("factor", 1.0)),
                )
                for w in payload.get("faults", ())
            )
            return ShardCrashPlan(
                seed=int(payload.get("seed", 0)),
                faults=faults,
                error_rate=float(payload.get("error_rate", 0.0)),
            )
        except FaultPlanError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(
                f"malformed shard crash plan: {exc}"
            ) from exc


class ShardFaultKind(enum.Enum):
    """What a single routing attempt at one shard runs into."""

    NONE = "none"
    CRASH = "crash"
    HANG = "hang"
    ERROR = "transient"


@dataclass(frozen=True)
class ShardDecision:
    """One routing attempt's injected fate plus the slowdown factor."""

    kind: ShardFaultKind
    slowdown: float = 1.0


class ShardCrashSession:
    """Mutable per-run state of a plan: the seeded rng plus the set of
    shard-down transitions not yet reported (for EV12)."""

    def __init__(self, plan: ShardCrashPlan) -> None:
        self.plan = plan
        self._rng = Random(plan.seed)
        self._reported: set[int] = set()

    def slowdown_factor(self, shard_id: str, now_ms: float) -> float:
        """Product of every slow window active on ``shard_id``."""
        factor = 1.0
        for window in self.plan.faults:
            if (
                window.shard_id == shard_id
                and window.kind == "slow"
                and window.active(now_ms)
            ):
                factor *= window.factor
        return factor

    def down(self, shard_id: str, now_ms: float) -> bool:
        """Whether ``shard_id`` is crashed or hung at ``now_ms``."""
        return any(
            window.shard_id == shard_id
            and window.kind in ("crash", "hang")
            and window.active(now_ms)
            for window in self.plan.faults
        )

    def crashed(self, shard_id: str, now_ms: float) -> bool:
        """Whether ``shard_id`` is inside a crash window (cache lost)."""
        return any(
            window.shard_id == shard_id
            and window.kind == "crash"
            and window.active(now_ms)
            for window in self.plan.faults
        )

    def route_attempt(
        self, shard_id: str, now_ms: float
    ) -> ShardDecision:
        """Decide the fate of one router -> shard attempt at ``now_ms``.

        Exactly one rng draw happens per attempt (even when the error
        rate is zero), so decision streams stay aligned across plan
        variants that share a seed.
        """
        slowdown = self.slowdown_factor(shard_id, now_ms)
        draw = self._rng.random()
        for window in self.plan.faults:
            if window.shard_id != shard_id or not window.active(now_ms):
                continue
            if window.kind == "crash":
                return ShardDecision(ShardFaultKind.CRASH, slowdown)
            if window.kind == "hang":
                return ShardDecision(ShardFaultKind.HANG, slowdown)
        if draw < self.plan.error_rate:
            return ShardDecision(ShardFaultKind.ERROR, slowdown)
        return ShardDecision(ShardFaultKind.NONE, slowdown)

    def newly_down(
        self, now_ms: float
    ) -> list[tuple[str, str, float]]:
        """Crash/hang windows that began at or before ``now_ms`` and
        were not reported yet, as ``(shard_id, kind, start_ms)`` rows
        in schedule order — each one maps to an ``EV12`` emission."""
        due = []
        for index, window in enumerate(self.plan.faults):
            if (
                window.kind in ("crash", "hang")
                and index not in self._reported
                and window.start_ms <= now_ms
            ):
                self._reported.add(index)
                due.append((window.shard_id, window.kind, window.start_ms))
        due.sort(key=lambda row: (row[2], row[0]))
        return due
