"""Deterministic crash plans: when the proxy dies, and how the tail
of its journal gets mangled.

A :class:`CrashPlan` extends the fault vocabulary of
:mod:`repro.faults.plan` from the origin to the *proxy itself*: it
schedules process deaths at journal-record offsets and describes the
torn-write damage the crash leaves behind on the cache journal
(:mod:`repro.persistence.journal`).  Like a :class:`FaultPlan`, a
crash plan is immutable, JSON-round-trippable, and seeded — the same
plan applied to the same journal bytes produces the same damage, so
every crash-recovery experiment replays bit-identically.

Damage kinds:

* ``truncate`` — chop a seeded number of bytes off the journal tail,
  the classic torn append (the filesystem persisted a prefix of the
  final write);
* ``bitflip`` — flip one seeded bit inside the tail window, modelling
  a corrupted-but-complete final write (caught by the record CRC);
* ``none`` — a clean kill: the journal survives intact and recovery
  loses nothing.

A :class:`CrashSession` is one execution: it owns the seeded RNG and
the queue of crash points not yet fired.  The persister asks
``should_crash`` after every journal append and, when told yes,
applies the damage and raises
:class:`~repro.faults.errors.SimulatedCrash`.
"""

from __future__ import annotations

import os
from pathlib import Path
from random import Random
from typing import Any, Mapping

from repro.faults.errors import FaultPlanError

#: The damage kinds a crash can inflict on the journal tail.
DAMAGE_KINDS = ("none", "truncate", "bitflip")


class CrashPlan:
    """A seeded schedule of proxy deaths at journal-record offsets."""

    def __init__(
        self,
        seed: int = 0,
        crash_after_records: tuple[int, ...] = (),
        damage: str = "truncate",
        tail_window_bytes: int = 64,
    ) -> None:
        if damage not in DAMAGE_KINDS:
            raise FaultPlanError(
                f"damage must be one of {DAMAGE_KINDS}, not {damage!r}"
            )
        if tail_window_bytes < 1:
            raise FaultPlanError(
                f"tail window must be at least 1 byte: {tail_window_bytes}"
            )
        points = tuple(sorted(int(p) for p in crash_after_records))
        for point in points:
            if point < 1:
                raise FaultPlanError(
                    f"crash point before the first record: {point}"
                )
        if len(set(points)) != len(points):
            raise FaultPlanError(f"duplicate crash points: {points}")
        self.seed = int(seed)
        self.crash_after_records = points
        self.damage = damage
        self.tail_window_bytes = int(tail_window_bytes)

    def session(self) -> "CrashSession":
        """A fresh, mutable execution of this plan."""
        return CrashSession(self)

    # -------------------------------------------------------- wire form
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "crash_after_records": list(self.crash_after_records),
            "damage": self.damage,
            "tail_window_bytes": self.tail_window_bytes,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "CrashPlan":
        if not isinstance(payload, Mapping):
            raise FaultPlanError(
                "crash plan must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {
            "seed", "crash_after_records", "damage", "tail_window_bytes",
        }
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown crash plan fields: {sorted(unknown)}"
            )
        try:
            return CrashPlan(
                seed=int(payload.get("seed", 0)),
                crash_after_records=tuple(
                    int(p) for p in payload.get("crash_after_records", ())
                ),
                damage=str(payload.get("damage", "truncate")),
                tail_window_bytes=int(payload.get("tail_window_bytes", 64)),
            )
        except FaultPlanError:
            raise
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed crash plan: {exc}") from exc


class CrashSession:
    """One execution of a crash plan: seeded RNG + pending crash points."""

    def __init__(self, plan: CrashPlan) -> None:
        self.plan = plan
        self._rng = Random(plan.seed)
        self._pending = list(plan.crash_after_records)
        self.crashes_fired = 0

    def pending_crash_points(self) -> tuple[int, ...]:
        return tuple(self._pending)

    def should_crash(self, records_appended: int) -> bool:
        """Whether the append that just made the journal
        ``records_appended`` records long is the fatal one."""
        if self._pending and records_appended >= self._pending[0]:
            self._pending.pop(0)
            self.crashes_fired += 1
            return True
        return False

    def apply_damage(self, journal_path: str | Path) -> dict[str, Any]:
        """Mangle the journal tail per the plan; returns what was done.

        Deterministic: the byte counts and bit positions come from the
        session's seeded RNG.  A missing or empty journal absorbs any
        damage kind as a no-op (there is no tail to tear).
        """
        path = Path(journal_path)
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            size = 0
        if self.plan.damage == "none" or size == 0:
            return {"damage": "none", "bytes": 0}
        if self.plan.damage == "truncate":
            cut = self._rng.randint(
                1, min(self.plan.tail_window_bytes, size)
            )
            os.truncate(path, size - cut)
            return {"damage": "truncate", "bytes": cut}
        # bitflip: one bit inside the tail window.
        window = min(self.plan.tail_window_bytes, size)
        offset = size - window + self._rng.randrange(window)
        bit = self._rng.randrange(8)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ (1 << bit)]))
        return {"damage": "bitflip", "offset": offset, "bit": bit}
