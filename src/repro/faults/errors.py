"""The fault subsystem's error hierarchy.

Two families, deliberately distinct:

* **Injected failures** — what a :class:`~repro.faults.injection.FaultyOrigin`
  raises to *simulate* an unreliable origin
  (:class:`OriginUnavailableError`, :class:`OriginTimeoutError`).  These
  are retryable: the proxy's :class:`~repro.faults.resilience.OriginGateway`
  catches them, backs off, and tries again.
* **Structured outcomes** — what the gateway raises *after* resilience
  gave up (:class:`OriginUnavailable`) or when the origin answered with
  a query-level error that retrying cannot fix
  (:class:`OriginQueryError`).  The proxy converts these into a
  :class:`~repro.core.stats.QueryRecord` with a non-``served`` outcome
  instead of letting them escape ``FunctionProxy.serve``.
"""

from __future__ import annotations


class FaultError(Exception):
    """Root of everything the fault subsystem raises."""


class FaultPlanError(FaultError):
    """A fault plan is malformed (bad window, rate, or payload)."""


class OriginUnavailableError(FaultError):
    """An injected transient failure of the proxy -> origin hop.

    ``reason`` distinguishes the injection mechanism (``"outage"`` for a
    scheduled outage window, ``"transient"`` for a probabilistic error).
    Retryable: a later attempt may succeed.
    """

    def __init__(self, message: str, reason: str = "transient") -> None:
        super().__init__(message)
        self.reason = reason


class OriginTimeoutError(OriginUnavailableError):
    """An injected hang: the origin never answers within the attempt
    timeout.  The gateway charges the full per-attempt timeout for it."""

    def __init__(self, message: str = "origin attempt timed out") -> None:
        super().__init__(message, reason="timeout")


class OriginUnavailable(FaultError):
    """Terminal, structured outcome: the origin could not be reached.

    Raised by the gateway once retries are exhausted or the circuit
    breaker refuses the hop; the proxy maps it to a ``failed`` (or
    degraded) query outcome, never to an uncaught exception.
    """

    def __init__(self, reason: str, retries: int = 0) -> None:
        super().__init__(f"origin unavailable ({reason})")
        self.reason = reason
        self.retries = retries


class OriginQueryError(FaultError):
    """The origin answered, but with a query-level error (parse or
    execution failure).  Not retryable — the same query would fail
    again — and not a breaker failure: the origin is alive."""

    def __init__(self, message: str, retries: int = 0) -> None:
        super().__init__(message)
        self.reason = "query-error"
        self.retries = retries


class SimulatedCrash(FaultError):
    """The proxy process "died" at a scheduled crash point.

    Raised by the cache persister when a
    :class:`~repro.faults.crash.CrashPlan` says the current journal
    append is the one the process does not survive — *after* the
    plan's tail damage was applied to the journal file.  Harness code
    catches it where a supervisor would observe the process exit;
    nothing else may swallow it.
    """

    def __init__(self, records_appended: int, damage: str) -> None:
        super().__init__(
            f"simulated crash after journal record {records_appended} "
            f"(tail damage: {damage})"
        )
        self.records_appended = records_appended
        self.damage = damage
