"""Fault injection and resilience for the function proxy.

The paper's setting — a slow origin across a WAN — silently assumed a
*reliable* origin.  This package drops that assumption:

* :mod:`repro.faults.plan` — seeded, simulated-clock-driven fault
  schedules (outage windows, slowdowns, transient errors, timeouts,
  data-version flips);
* :mod:`repro.faults.injection` — wrappers that make an
  :class:`~repro.server.origin.OriginServer` and a
  :class:`~repro.network.link.Topology` misbehave on schedule;
* :mod:`repro.faults.resilience` — the proxy-side answer: retry with
  capped backoff and deterministic jitter, a circuit breaker over the
  proxy -> origin hop, and the degradation policy that keeps cached
  answers flowing while the origin is down;
* :mod:`repro.faults.errors` — the retryable injected errors and the
  structured terminal outcomes;
* :mod:`repro.faults.crash` — seeded crash plans for the *proxy
  itself*: scheduled process deaths at journal-record offsets with
  deterministic torn-write damage (see :mod:`repro.persistence`);
* :mod:`repro.faults.shard` — seeded shard-level fault schedules for
  the sharded tier (:mod:`repro.cluster`): crash, hang, or slow one
  shard worker mid-trace.

Everything is deterministic under a fixed seed: replaying the same
plan over the same trace yields identical query-record streams.
"""

from repro.faults.crash import CrashPlan, CrashSession
from repro.faults.errors import (
    FaultError,
    FaultPlanError,
    OriginQueryError,
    OriginTimeoutError,
    OriginUnavailable,
    OriginUnavailableError,
    SimulatedCrash,
)
from repro.faults.injection import FaultyOrigin, FaultyTopology
from repro.faults.plan import (
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultSession,
    OutageWindow,
    SlowdownWindow,
)
from repro.faults.resilience import (
    BREAKER_STATE_VALUES,
    BreakerState,
    CircuitBreaker,
    DegradationPolicy,
    OriginGateway,
    ResilienceConfig,
    RetryPolicy,
)
from repro.faults.shard import (
    SHARD_FAULT_KINDS,
    ShardCrashPlan,
    ShardCrashSession,
    ShardDecision,
    ShardFaultKind,
    ShardFaultWindow,
)

__all__ = [
    "BREAKER_STATE_VALUES",
    "BreakerState",
    "CircuitBreaker",
    "CrashPlan",
    "CrashSession",
    "DegradationPolicy",
    "FaultDecision",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSession",
    "FaultyOrigin",
    "FaultyTopology",
    "OriginGateway",
    "OriginQueryError",
    "OriginTimeoutError",
    "OriginUnavailable",
    "OriginUnavailableError",
    "OutageWindow",
    "ResilienceConfig",
    "RetryPolicy",
    "SHARD_FAULT_KINDS",
    "ShardCrashPlan",
    "ShardCrashSession",
    "ShardDecision",
    "ShardFaultKind",
    "ShardFaultWindow",
    "SimulatedCrash",
    "SlowdownWindow",
]
