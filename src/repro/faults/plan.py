"""Deterministic fault plans: what goes wrong, and when.

A :class:`FaultPlan` is a *schedule* over the simulated clock — outage
windows, latency-multiplier windows, per-attempt error/timeout
probabilities, and data-version bump times — plus a seed.  Plans are
immutable and JSON-round-trippable (the proxy app's ``POST /faults``
body is :meth:`FaultPlan.to_dict` output).

A :class:`FaultSession` is one *execution* of a plan: it owns the
seeded ``random.Random`` and the set of version bumps not yet applied.
Determinism contract: given the same plan and the same sequence of
``origin_attempt(now_ms)`` calls, a session makes identical decisions
— it draws exactly one random number per attempt regardless of the
configured rates, so enabling one fault kind never perturbs another's
draws.  Nothing in this module may read the wall clock (lint rule
FP301) or use unseeded randomness (lint rule FP305).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from random import Random
from typing import Any, Iterable, Mapping

from repro.faults.errors import FaultPlanError


def _check_window(start_ms: float, end_ms: float) -> None:
    if start_ms < 0:
        raise FaultPlanError(f"window starts before t=0: {start_ms}")
    if end_ms <= start_ms:
        raise FaultPlanError(
            f"empty or inverted window: [{start_ms}, {end_ms})"
        )


@dataclass(frozen=True)
class OutageWindow:
    """A half-open interval of simulated ms during which the origin is
    down: every attempt fails immediately with an outage error."""

    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)

    def active(self, now_ms: float) -> bool:
        return self.start_ms <= now_ms < self.end_ms


@dataclass(frozen=True)
class SlowdownWindow:
    """A window during which the proxy -> origin hop runs ``factor``
    times slower (applied to both network latency and server time)."""

    start_ms: float
    end_ms: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.factor < 1.0:
            raise FaultPlanError(
                f"slowdown factor must be >= 1: {self.factor}"
            )

    def active(self, now_ms: float) -> bool:
        return self.start_ms <= now_ms < self.end_ms


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be in [0, 1]: {value}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, simulated-clock-driven fault schedule."""

    seed: int = 0
    outages: tuple[OutageWindow, ...] = ()
    slowdowns: tuple[SlowdownWindow, ...] = ()
    error_rate: float = 0.0
    timeout_rate: float = 0.0
    version_bumps: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        _check_rate("error_rate", self.error_rate)
        _check_rate("timeout_rate", self.timeout_rate)
        if self.error_rate + self.timeout_rate > 1.0:
            raise FaultPlanError(
                "error_rate + timeout_rate exceeds 1: "
                f"{self.error_rate} + {self.timeout_rate}"
            )
        for bump_ms in self.version_bumps:
            if bump_ms < 0:
                raise FaultPlanError(
                    f"version bump before t=0: {bump_ms}"
                )

    def session(self) -> "FaultSession":
        """A fresh, mutable execution of this plan."""
        return FaultSession(self)

    # -------------------------------------------------------- wire form
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "outages": [
                {"start_ms": w.start_ms, "end_ms": w.end_ms}
                for w in self.outages
            ],
            "slowdowns": [
                {
                    "start_ms": w.start_ms,
                    "end_ms": w.end_ms,
                    "factor": w.factor,
                }
                for w in self.slowdowns
            ],
            "error_rate": self.error_rate,
            "timeout_rate": self.timeout_rate,
            "version_bumps": list(self.version_bumps),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "FaultPlan":
        """Parse the ``POST /faults`` body; raises
        :class:`FaultPlanError` on anything malformed."""
        if not isinstance(payload, Mapping):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        known = {
            "seed", "outages", "slowdowns", "error_rate", "timeout_rate",
            "version_bumps",
        }
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan fields: {sorted(unknown)}"
            )
        try:
            outages = tuple(
                OutageWindow(
                    start_ms=float(w["start_ms"]),
                    end_ms=float(w["end_ms"]),
                )
                for w in payload.get("outages", ())
            )
            slowdowns = tuple(
                SlowdownWindow(
                    start_ms=float(w["start_ms"]),
                    end_ms=float(w["end_ms"]),
                    factor=float(w["factor"]),
                )
                for w in payload.get("slowdowns", ())
            )
            return FaultPlan(
                seed=int(payload.get("seed", 0)),
                outages=outages,
                slowdowns=slowdowns,
                error_rate=float(payload.get("error_rate", 0.0)),
                timeout_rate=float(payload.get("timeout_rate", 0.0)),
                version_bumps=tuple(
                    float(b) for b in payload.get("version_bumps", ())
                ),
            )
        except FaultPlanError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc


class FaultKind(enum.Enum):
    """What a single origin attempt runs into."""

    NONE = "none"
    OUTAGE = "outage"
    ERROR = "transient"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class FaultDecision:
    """One attempt's injected fate plus the active slowdown factor."""

    kind: FaultKind
    slowdown: float = 1.0


class FaultSession:
    """Mutable per-run state of a plan: seeded rng + pending bumps."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = Random(plan.seed)
        self._pending_bumps = sorted(plan.version_bumps)

    def slowdown_factor(self, now_ms: float) -> float:
        """Product of every slowdown window active at ``now_ms``."""
        factor = 1.0
        for window in self.plan.slowdowns:
            if window.active(now_ms):
                factor *= window.factor
        return factor

    def origin_attempt(self, now_ms: float) -> FaultDecision:
        """Decide the fate of one proxy -> origin attempt at ``now_ms``.

        Exactly one rng draw happens per attempt (even when both rates
        are zero), so decision streams stay aligned across plan
        variants that share a seed.
        """
        slowdown = self.slowdown_factor(now_ms)
        draw = self._rng.random()
        if any(window.active(now_ms) for window in self.plan.outages):
            return FaultDecision(FaultKind.OUTAGE, slowdown)
        if draw < self.plan.timeout_rate:
            return FaultDecision(FaultKind.TIMEOUT, slowdown)
        if draw < self.plan.timeout_rate + self.plan.error_rate:
            return FaultDecision(FaultKind.ERROR, slowdown)
        return FaultDecision(FaultKind.NONE, slowdown)

    def due_version_bumps(self, now_ms: float) -> int:
        """Pop and count the version bumps scheduled at or before
        ``now_ms``; each one maps to an ``origin.bump_data_version()``."""
        due = 0
        while self._pending_bumps and self._pending_bumps[0] <= now_ms:
            self._pending_bumps.pop(0)
            due += 1
        return due

    def pending_version_bumps(self) -> Iterable[float]:
        return tuple(self._pending_bumps)
