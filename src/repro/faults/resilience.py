"""Resilience for the proxy -> origin hop: retry, breaker, degradation.

Three cooperating policies, all driven by the proxy's simulated clock:

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  (seeded) jitter and a per-attempt timeout.  Every wait is *charged*
  in simulated ms through the query observation, so retries show up in
  response times exactly like real waits would.
* :class:`CircuitBreaker` — the classic closed / open / half-open
  state machine guarding the hop.  ``failure_threshold`` consecutive
  failures open it; after ``cooldown_ms`` of simulated time a single
  half-open probe decides between closing and re-opening.
* :class:`DegradationPolicy` — what the proxy may do while the origin
  is unreachable: serve full answers from cache marked ``degraded``
  (stale-serve), serve the cached portion of an overlap query as a
  ``partial`` answer, or fail fast with a structured outcome.

:class:`OriginGateway` ties the first two together around a single
origin call and is the *only* path the proxy uses to reach the origin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Protocol

from repro.faults.errors import (
    OriginQueryError,
    OriginTimeoutError,
    OriginUnavailable,
    OriginUnavailableError,
)
from repro.locking import guarded_by, named_lock
from repro.network.clock import SimulatedClock
from repro.relational.errors import RelationalError
from repro.server.origin import OriginResponse
from repro.sqlparser.errors import ParseError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter."""

    max_attempts: int = 3
    base_backoff_ms: float = 200.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 5_000.0
    jitter_fraction: float = 0.2
    attempt_timeout_ms: float = 10_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"need at least one attempt: {self.max_attempts}"
            )
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff times cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter fraction must be in [0, 1]: {self.jitter_fraction}"
            )
        if self.attempt_timeout_ms <= 0:
            raise ValueError(
                f"attempt timeout must be positive: {self.attempt_timeout_ms}"
            )

    def backoff_ms(self, retry_index: int, rng: Random) -> float:
        """Simulated wait before retry ``retry_index`` (0-based).

        Jitter is drawn from the gateway's seeded rng, so the same
        seed yields the same waits — determinism over realism.
        """
        base = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.backoff_multiplier**retry_index,
        )
        return base * (1.0 + self.jitter_fraction * rng.random())


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of breaker states (the ``breaker_state`` metric).
BREAKER_STATE_VALUES: dict[BreakerState, int] = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@guarded_by(
    "proxy.admission",
    "_state",
    "_consecutive_failures",
    "_opened_at_ms",
    "_probe_in_flight",
    "opens",
)
class CircuitBreaker:
    """Closed / open / half-open over the simulated clock.

    Thread-safe: all state moves under the ``proxy.admission`` lock,
    and in half-open exactly **one** probe is in flight at a time —
    ``allow()`` admits the first caller after the cooldown and refuses
    the rest until that probe resolves via ``record_success`` /
    ``record_failure``.  State-change callbacks fire *after* the lock
    is released, so a listener may take its own locks without creating
    an acquisition edge under ``proxy.admission``.
    """

    def __init__(
        self,
        clock: SimulatedClock,
        failure_threshold: int = 5,
        cooldown_ms: float = 30_000.0,
        on_state_change: Callable[[BreakerState], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be >= 1: {failure_threshold}"
            )
        if cooldown_ms <= 0:
            raise ValueError(f"cooldown must be positive: {cooldown_ms}")
        self._lock = named_lock("proxy.admission")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_ms = 0.0
        self._probe_in_flight = False
        self._on_state_change = on_state_change
        self.opens = 0  # lifetime count of CLOSED/HALF_OPEN -> OPEN

    @property
    def state(self) -> BreakerState:
        return self._state

    def _transition(self, state: BreakerState) -> BreakerState | None:
        """Move to ``state`` (lock held by the caller); returns the new
        state when it changed so the caller can notify after release."""
        if state is self._state:
            return None
        self._state = state
        return state

    def _notify(self, changed: BreakerState | None) -> None:
        if changed is not None and self._on_state_change is not None:
            self._on_state_change(changed)

    def allow(self) -> bool:
        """Whether an origin attempt may proceed right now.

        An open breaker whose cooldown elapsed moves to half-open and
        admits exactly one probe attempt; concurrent callers are
        refused until that probe resolves.
        """
        changed: BreakerState | None = None
        admitted = True
        with self._lock:
            if self._state is BreakerState.OPEN:
                elapsed = self._clock.now_ms - self._opened_at_ms
                if elapsed < self.cooldown_ms:
                    admitted = False
                else:
                    changed = self._transition(BreakerState.HALF_OPEN)
            if admitted and self._state is BreakerState.HALF_OPEN:
                if self._probe_in_flight:
                    admitted = False
                else:
                    self._probe_in_flight = True
        self._notify(changed)
        return admitted

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            changed = self._transition(BreakerState.CLOSED)
        self._notify(changed)

    def record_failure(self) -> None:
        changed: BreakerState | None = None
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if (
                self._state is BreakerState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                if self._state is not BreakerState.OPEN:
                    self.opens += 1
                self._opened_at_ms = self._clock.now_ms
                changed = self._transition(BreakerState.OPEN)
        self._notify(changed)


@dataclass(frozen=True)
class DegradationPolicy:
    """What the proxy may serve while the origin is unreachable.

    * ``stale_ok`` — exact/contained answers still come from cache,
      marked ``degraded`` while the breaker is not closed;
    * ``partial_ok`` — an overlap query whose remainder cannot reach
      the origin degrades to the cached portion only (``partial``);
    * ``tunnel_on_overload`` — when the admission queue crosses its
      degrade watermark, new queries may still be admitted in tunnel
      mode (no cache work, forwarded whole) instead of being shed.

    Fail-fast for uncacheable / disjoint queries is always on: they
    produce a structured ``failed`` outcome, never an exception.
    """

    stale_ok: bool = True
    partial_ok: bool = True
    tunnel_on_overload: bool = True


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything :class:`~repro.core.proxy.FunctionProxy` needs to
    survive a misbehaving origin."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degradation: DegradationPolicy = field(default_factory=DegradationPolicy)
    breaker_failure_threshold: int = 5
    breaker_cooldown_ms: float = 30_000.0
    jitter_seed: int = 0


class ChargeSink(Protocol):
    """Where the gateway charges simulated time (a query observation)."""

    def charge(self, step: str, sim_ms: float) -> None: ...


class GatewayListener(Protocol):
    """Metrics hook: one call per retry, one per terminal failure."""

    def origin_retry(self) -> None: ...

    def origin_failure(self, reason: str) -> None: ...


class OriginGateway:
    """The one resilient path from the proxy to the origin.

    ``call`` runs an origin thunk under the retry policy with the
    breaker consulted before every attempt.  Failed attempts charge
    their simulated cost (a zero-byte round trip for fast failures,
    the full per-attempt timeout for hangs) plus the backoff wait, so
    the query's response time reflects the struggle.
    """

    def __init__(
        self,
        retry: RetryPolicy,
        breaker: CircuitBreaker,
        rng: Random,
        failure_rtt_ms: Callable[[], float],
        listener: GatewayListener | None = None,
    ) -> None:
        self.retry = retry
        self.breaker = breaker
        self._rng = rng
        self._failure_rtt_ms = failure_rtt_ms
        self._listener = listener

    def call(
        self,
        fn: Callable[[], OriginResponse],
        sink: ChargeSink,
    ) -> tuple[OriginResponse, int]:
        """Run one origin request; returns ``(response, retries)``.

        Raises :class:`OriginUnavailable` when the breaker refuses the
        hop or every attempt failed, and :class:`OriginQueryError`
        when the origin answered with a non-retryable query error.
        """
        retries = 0
        last_reason = "unreachable"
        for attempt in range(self.retry.max_attempts):
            if not self.breaker.allow():
                self._fail("breaker-open")
                raise OriginUnavailable("breaker-open", retries)
            try:
                response = fn()
            except OriginTimeoutError:
                self.breaker.record_failure()
                sink.charge("origin", self.retry.attempt_timeout_ms)
                last_reason = "timeout"
            except OriginUnavailableError as exc:
                self.breaker.record_failure()
                sink.charge("transfer", self._failure_rtt_ms())
                last_reason = exc.reason
            except (ParseError, RelationalError) as exc:
                # The origin is alive and answered; the query is bad.
                self.breaker.record_success()
                raise OriginQueryError(str(exc), retries) from exc
            else:
                self.breaker.record_success()
                return response, retries
            if attempt + 1 < self.retry.max_attempts:
                retries += 1
                if self._listener is not None:
                    self._listener.origin_retry()
                sink.charge(
                    "backoff", self.retry.backoff_ms(attempt, self._rng)
                )
        self._fail(last_reason)
        raise OriginUnavailable(last_reason, retries)

    def _fail(self, reason: str) -> None:
        if self._listener is not None:
            self._listener.origin_failure(reason)
