"""Multidimensional region geometry for semantic cache checking.

The paper's central trick (Section 3.1) is to abstract a table-valued
function as a *spatial region selection query*: the function returns all
points falling inside a multidimensional region.  Checking the relationship
between a new query and cached queries then becomes checking the
relationship between two regions, with no need to look at result tuples.

This package provides the region shapes named by the paper (hypercube /
hyperrectangle, hypersphere, and convex polytope), point-membership tests,
pairwise region relations (equal, contains, overlaps, disjoint), and the
difference regions used to build remainder queries.
"""

from repro.geometry.regions import (
    ConvexPolytope,
    DifferenceRegion,
    Halfspace,
    HyperRect,
    HyperSphere,
    Region,
    UnionRegion,
)
from repro.geometry.relations import RegionRelation, relate
from repro.geometry.measure import region_volume

__all__ = [
    "ConvexPolytope",
    "DifferenceRegion",
    "Halfspace",
    "HyperRect",
    "HyperSphere",
    "Region",
    "RegionRelation",
    "UnionRegion",
    "region_volume",
    "relate",
]
