"""Region measures (volumes).

Volumes are not needed for correctness of the caching schemes, but the
harness uses them for workload diagnostics (e.g. expected overlap mass)
and the tests use them to sanity-check the generators.
"""

from __future__ import annotations

import math

from repro.geometry.regions import (
    ConvexPolytope,
    GeometryError,
    HyperRect,
    HyperSphere,
    Region,
)


def unit_ball_volume(dims: int) -> float:
    """Volume of the unit ball in ``dims`` dimensions.

    Uses the closed form ``pi^(n/2) / Gamma(n/2 + 1)``.
    """
    if dims < 1:
        raise GeometryError(f"dimension must be positive, got {dims}")
    return math.pi ** (dims / 2.0) / math.gamma(dims / 2.0 + 1.0)


def region_volume(region: Region) -> float:
    """Exact volume for rects and spheres; bounding-box upper bound for
    polytopes (documented, and sufficient for diagnostics)."""
    if isinstance(region, HyperRect):
        volume = 1.0
        for length in region.side_lengths():
            volume *= max(length, 0.0)
        return volume
    if isinstance(region, HyperSphere):
        return unit_ball_volume(region.dims) * region.radius**region.dims
    if isinstance(region, ConvexPolytope):
        return region_volume(region.bounding_box())
    raise GeometryError(f"no volume rule for {type(region).__name__}")
