"""Pairwise region relations: the proxy's query-relationship check.

Section 3.1 of the paper: for function-embedded queries with spatial
region selection semantics, "we can transform the problem of checking the
relationship between two queries (query exact match, containment,
overlapping, or disjoint) into that of checking the spatial relationship
between the two corresponding regions".

:func:`relate` classifies an ordered pair of regions into one of

* ``EQUAL``      — same point set (query exact match),
* ``CONTAINS``   — the first strictly contains the second
                   (a *new* query first + *cached* query second means the
                   cached entry is subsumed: the region-containment case),
* ``CONTAINED``  — the first is inside the second (new query answerable
                   entirely from the cached entry),
* ``OVERLAP``    — the point sets intersect but neither contains the other
                   (the cache-intersecting case),
* ``DISJOINT``   — no common point.

Exactness
---------
All rect/rect, sphere/sphere, rect/sphere and sphere/rect checks are
exact up to ``EPSILON``.  Polytope pairs are exact for containment of a
rect or a sphere *inside* a polytope (convexity arguments) and for
bounding-box disjointness; the remaining polytope cases fall back to a
conservative ``OVERLAP`` answer.  Conservatism is safe for caching: the
proxy treats the pair as cache-intersecting or forwards the query, it
never fabricates tuples.
"""

from __future__ import annotations

import enum
import math

from repro.geometry.regions import (
    EPSILON,
    ConvexPolytope,
    GeometryError,
    HyperRect,
    HyperSphere,
    Region,
)


class RegionRelation(enum.Enum):
    """Relationship of an ordered region pair ``(first, second)``."""

    EQUAL = "equal"
    CONTAINS = "contains"
    CONTAINED = "contained"
    OVERLAP = "overlap"
    DISJOINT = "disjoint"

    def flip(self) -> "RegionRelation":
        """The relation of the reversed pair ``(second, first)``."""
        if self is RegionRelation.CONTAINS:
            return RegionRelation.CONTAINED
        if self is RegionRelation.CONTAINED:
            return RegionRelation.CONTAINS
        return self


def relate(first: Region, second: Region) -> RegionRelation:
    """Classify the relationship between two regions.

    Dispatches on the shape pair.  Raises :class:`GeometryError` on
    dimension mismatch or an unsupported shape (difference and union
    regions are transient query-evaluation artifacts, not cacheable
    shapes, and are deliberately rejected here).
    """
    if first.dims != second.dims:
        raise GeometryError(
            f"dimension mismatch: {first.dims}-d vs {second.dims}-d"
        )
    if isinstance(first, HyperRect) and isinstance(second, HyperRect):
        return _relate_rect_rect(first, second)
    if isinstance(first, HyperSphere) and isinstance(second, HyperSphere):
        return _relate_sphere_sphere(first, second)
    if isinstance(first, HyperRect) and isinstance(second, HyperSphere):
        return _relate_rect_sphere(first, second)
    if isinstance(first, HyperSphere) and isinstance(second, HyperRect):
        return _relate_rect_sphere(second, first).flip()
    if isinstance(first, ConvexPolytope) or isinstance(second, ConvexPolytope):
        return _relate_with_polytope(first, second)
    raise GeometryError(
        f"unsupported region pair: {type(first).__name__} vs "
        f"{type(second).__name__}"
    )


# ----------------------------------------------------------------- rects


def _relate_rect_rect(a: HyperRect, b: HyperRect) -> RegionRelation:
    a_in_b = True
    b_in_a = True
    disjoint = False
    for alo, ahi, blo, bhi in zip(a.lows, a.highs, b.lows, b.highs):
        if alo > bhi + EPSILON or blo > ahi + EPSILON:
            disjoint = True
        if alo < blo - EPSILON or ahi > bhi + EPSILON:
            a_in_b = False
        if blo < alo - EPSILON or bhi > ahi + EPSILON:
            b_in_a = False
    if a_in_b and b_in_a:
        return RegionRelation.EQUAL
    if disjoint:
        return RegionRelation.DISJOINT
    if b_in_a:
        return RegionRelation.CONTAINS
    if a_in_b:
        return RegionRelation.CONTAINED
    return RegionRelation.OVERLAP


# --------------------------------------------------------------- spheres


def _relate_sphere_sphere(a: HyperSphere, b: HyperSphere) -> RegionRelation:
    dist = math.dist(a.center, b.center)
    if dist <= EPSILON and abs(a.radius - b.radius) <= EPSILON:
        return RegionRelation.EQUAL
    if dist > a.radius + b.radius + EPSILON:
        return RegionRelation.DISJOINT
    # Ball containment: d + r_inner <= r_outer.
    if dist + b.radius <= a.radius + EPSILON:
        return RegionRelation.CONTAINS
    if dist + a.radius <= b.radius + EPSILON:
        return RegionRelation.CONTAINED
    return RegionRelation.OVERLAP


# ---------------------------------------------------------- rect/sphere


def _min_dist2_point_rect(center: tuple[float, ...], rect: HyperRect) -> float:
    """Squared distance from a point to the nearest point of a box."""
    total = 0.0
    for c, lo, hi in zip(center, rect.lows, rect.highs):
        if c < lo:
            total += (lo - c) ** 2
        elif c > hi:
            total += (c - hi) ** 2
    return total


def _max_dist2_point_rect(center: tuple[float, ...], rect: HyperRect) -> float:
    """Squared distance from a point to the farthest point of a box."""
    total = 0.0
    for c, lo, hi in zip(center, rect.lows, rect.highs):
        total += max(abs(c - lo), abs(hi - c)) ** 2
    return total


def _relate_rect_sphere(rect: HyperRect, sphere: HyperSphere) -> RegionRelation:
    """Relation of ``(rect, sphere)``; callers flip for the other order.

    A rect and a sphere of equal dimension >= 1 can never be EQUAL unless
    both are degenerate (a single point); that case falls out of the
    containment tests naturally.
    """
    r2 = (sphere.radius + EPSILON) ** 2
    min_d2 = _min_dist2_point_rect(sphere.center, rect)
    if min_d2 > (sphere.radius + EPSILON) ** 2:
        return RegionRelation.DISJOINT
    # Sphere inside rect: the per-axis interval [c - r, c + r] within bounds.
    sphere_in_rect = all(
        lo - EPSILON <= c - sphere.radius and c + sphere.radius <= hi + EPSILON
        for c, lo, hi in zip(sphere.center, rect.lows, rect.highs)
    )
    # Rect inside sphere: the farthest box point within the radius.
    rect_in_sphere = _max_dist2_point_rect(sphere.center, rect) <= r2
    if sphere_in_rect and rect_in_sphere:
        return RegionRelation.EQUAL  # both degenerate to the same point
    if sphere_in_rect:
        return RegionRelation.CONTAINS
    if rect_in_sphere:
        return RegionRelation.CONTAINED
    return RegionRelation.OVERLAP


# ------------------------------------------------------------ polytopes


def _polytope_contains_rect(poly: ConvexPolytope, rect: HyperRect) -> bool:
    """Exact: a convex set contains a box iff it contains every corner."""
    return all(poly.contains_point(corner) for corner in rect.corners())


def _polytope_contains_sphere(poly: ConvexPolytope, sphere: HyperSphere) -> bool:
    """Exact: every bounding halfspace at signed distance >= radius."""
    for half in poly.halfspaces:
        unit = half.normalized()
        value = sum(n * c for n, c in zip(unit.normal, sphere.center))
        if value + sphere.radius > unit.offset + EPSILON:
            return False
    return True


def _polytope_disjoint_sphere(poly: ConvexPolytope, sphere: HyperSphere) -> bool:
    """Sufficient (one-sided): some halfspace separates the sphere."""
    for half in poly.halfspaces:
        unit = half.normalized()
        value = sum(n * c for n, c in zip(unit.normal, sphere.center))
        if value - sphere.radius > unit.offset + EPSILON:
            return True
    return False


def _relate_with_polytope(first: Region, second: Region) -> RegionRelation:
    """Relations involving at least one polytope.

    Exact answers are produced for "other shape inside polytope" and for
    bounding-box / separating-halfspace disjointness.  The conservative
    fallback is OVERLAP, which the caching schemes handle safely (the
    query is forwarded or treated as cache-intersecting).
    """
    if isinstance(second, ConvexPolytope) and not isinstance(
        first, ConvexPolytope
    ):
        return _relate_with_polytope(second, first).flip()

    assert isinstance(first, ConvexPolytope)
    if isinstance(second, HyperRect):
        if _polytope_contains_rect(first, second):
            return RegionRelation.CONTAINS
        if _relate_rect_rect(first.bounding_box(), second) in (
            RegionRelation.CONTAINED,
            RegionRelation.EQUAL,
        ):
            # The polytope's (possibly loose) bounding box sits inside the
            # rect, so the polytope itself does too.  Exact in this
            # direction; a loose box only costs missed CONTAINED answers.
            return RegionRelation.CONTAINED
        if first.bounding_box().intersect(second) is None:
            return RegionRelation.DISJOINT
        if any(_halfspace_excludes_rect(h, second) for h in first.halfspaces):
            # A box that lies fully on the wrong side of one bounding
            # halfspace cannot meet the polytope (the box is convex).
            return RegionRelation.DISJOINT
        return RegionRelation.OVERLAP
    if isinstance(second, HyperSphere):
        if _polytope_contains_sphere(first, second):
            return RegionRelation.CONTAINS
        if _polytope_disjoint_sphere(first, second):
            return RegionRelation.DISJOINT
        return RegionRelation.OVERLAP
    if isinstance(second, ConvexPolytope):
        if _polytope_contains_rect(first, second.bounding_box()):
            # The polytope contains the other's entire bounding box, hence
            # the other polytope itself.  Exact in the CONTAINS direction.
            return RegionRelation.CONTAINS
        if _polytope_contains_rect(second, first.bounding_box()):
            return RegionRelation.CONTAINED
        if first.bounding_box().intersect(second.bounding_box()) is None:
            return RegionRelation.DISJOINT
        return RegionRelation.OVERLAP
    raise GeometryError(
        f"unsupported region pair: ConvexPolytope vs {type(second).__name__}"
    )


def _halfspace_excludes_rect(half, rect: HyperRect) -> bool:
    """True when every corner of the box violates the halfspace.

    Exact: the violating set ``normal . x > offset`` is convex and a box
    is the convex hull of its corners, so all-corners-outside implies the
    whole box is outside.
    """
    return all(not half.contains_point(c) for c in rect.corners())
