"""Rectangle difference decomposition.

Semantic caches over rectangular predicates classically represent a
remainder as a *set of disjoint boxes* rather than a NOT-predicate
(e.g. Dar et al.'s region coalescing).  For the paper's rectangular
template this module provides that representation:

``subtract_rect(base, hole)`` slices ``base \\ hole`` into at most
``2 * dims`` disjoint axis-aligned boxes using the standard slab sweep:
for each dimension, split off the part of the base below the hole and
the part above it, then clamp the working box to the hole's extent and
continue with the next dimension.

``decompose_difference(base, holes)`` folds the subtraction over many
holes.  The proxy's default remainder path ships NOT-predicates (like
the paper); box decomposition is exposed for rect workloads where the
origin prefers several simple range queries — see
``repro.core.remainder.build_box_remainders``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.regions import EPSILON, GeometryError, HyperRect


def subtract_rect(base: HyperRect, hole: HyperRect) -> list[HyperRect]:
    """Disjoint boxes covering ``base`` minus ``hole``.

    Returns ``[base]`` unchanged when the two are disjoint, and ``[]``
    when the hole covers the base.  Pieces are closed boxes; shared
    faces between a piece and the hole belong to the hole (so piece
    interiors never intersect the hole, and pieces are pairwise
    disjoint up to measure-zero faces — the right semantics for
    range-query remainders).
    """
    if base.dims != hole.dims:
        raise GeometryError(
            f"dimension mismatch: {base.dims}-d base vs {hole.dims}-d hole"
        )
    if base.intersect(hole) is None:
        return [base]

    pieces: list[HyperRect] = []
    lows = list(base.lows)
    highs = list(base.highs)
    for dim in range(base.dims):
        if hole.lows[dim] > lows[dim]:
            below_highs = list(highs)
            below_highs[dim] = hole.lows[dim]
            pieces.append(HyperRect(tuple(lows), tuple(below_highs)))
        if hole.highs[dim] < highs[dim]:
            above_lows = list(lows)
            above_lows[dim] = hole.highs[dim]
            pieces.append(HyperRect(tuple(above_lows), tuple(highs)))
        lows[dim] = max(lows[dim], hole.lows[dim])
        highs[dim] = min(highs[dim], hole.highs[dim])
    return [piece for piece in pieces if not piece.is_empty()]


def decompose_difference(
    base: HyperRect, holes: Iterable[HyperRect]
) -> list[HyperRect]:
    """Disjoint boxes covering ``base`` minus the union of ``holes``."""
    pieces = [base]
    for hole in holes:
        next_pieces: list[HyperRect] = []
        for piece in pieces:
            next_pieces.extend(subtract_rect(piece, hole))
        pieces = next_pieces
        if not pieces:
            break
    return pieces


def total_volume(pieces: Sequence[HyperRect]) -> float:
    """Sum of piece volumes (pieces are disjoint by construction)."""
    from repro.geometry.measure import region_volume

    return sum(region_volume(piece) for piece in pieces)


def covers_point_strictly(
    pieces: Sequence[HyperRect], point, tolerance: float = EPSILON
) -> bool:
    """Whether any piece contains ``point`` (used by property tests)."""
    return any(piece.contains_point(point) for piece in pieces)
