"""Region shapes used to abstract table-valued functions.

A *region* is a subset of N-dimensional Euclidean space.  The paper's
function templates (Figure 3) declare the shape of the region a
table-valued function selects: a hypersphere for radial searches such as
``fGetNearbyObjEq``, a hyperrectangle for rectangular searches such as
``fGetObjFromRect``, or in the general case a convex polytope.

All shapes support:

* ``contains_point(point)`` — membership test for a result tuple's
  coordinate point (used when evaluating a subsumed query locally);
* ``bounding_box()`` — the minimum enclosing :class:`HyperRect`, used by
  the R-tree cache description;
* structural equality via ``==`` with a numeric tolerance.

Pairwise relations (equal / contains / overlaps / disjoint) live in
:mod:`repro.geometry.relations`.

Numeric tolerance
-----------------
Coordinates originate from user form inputs, so values are short decimals
and an absolute tolerance of ``EPSILON`` (1e-9) is ample.  Containment
checks used for cache answering are written so that a *false negative*
(reporting "overlap" where the truth is "contained") is always safe: the
proxy then merely forwards a query it could have answered locally.
False positives are never produced for the exact shape pairs implemented
here; the one documented conservative case is noted on
:func:`repro.geometry.relations.relate`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

EPSILON = 1e-9

Point = Sequence[float]


class GeometryError(ValueError):
    """Raised for malformed shapes or dimension mismatches."""


def _check_dims(a: "Region", b: "Region") -> None:
    if a.dims != b.dims:
        raise GeometryError(
            f"dimension mismatch: {a.dims}-d region vs {b.dims}-d region"
        )


def _close(x: float, y: float) -> bool:
    return abs(x - y) <= EPSILON


class Region:
    """Abstract base for all region shapes.

    Subclasses must be immutable; the cache description stores regions as
    dictionary keys and shares them between the cache manager and the
    query processor.
    """

    dims: int

    def contains_point(self, point: Point) -> bool:
        raise NotImplementedError

    def bounding_box(self) -> "HyperRect":
        raise NotImplementedError

    def is_empty(self) -> bool:
        """True when the region contains no point at all."""
        raise NotImplementedError

    # Convenience wrappers over the relations module -------------------
    def contains_region(self, other: "Region") -> bool:
        from repro.geometry.relations import RegionRelation, relate

        rel = relate(self, other)
        return rel in (RegionRelation.EQUAL, RegionRelation.CONTAINS)

    def overlaps(self, other: "Region") -> bool:
        from repro.geometry.relations import RegionRelation, relate

        return relate(self, other) is not RegionRelation.DISJOINT


@dataclass(frozen=True)
class HyperRect(Region):
    """An axis-aligned hyperrectangle ``[low_i, high_i]`` per dimension.

    This is the shape of rectangular search functions such as the
    SkyServer's ``fGetObjFromRect(min_ra, max_ra, min_dec, max_dec)``.
    Bounds are inclusive on both ends, matching SQL ``BETWEEN``
    semantics used by such functions.
    """

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise GeometryError("lows and highs must have the same length")
        if not self.lows:
            raise GeometryError("a hyperrectangle needs at least one dimension")
        object.__setattr__(self, "lows", tuple(float(x) for x in self.lows))
        object.__setattr__(self, "highs", tuple(float(x) for x in self.highs))

    @property
    def dims(self) -> int:  # type: ignore[override]
        return len(self.lows)

    def is_empty(self) -> bool:
        return any(lo > hi + EPSILON for lo, hi in zip(self.lows, self.highs))

    def contains_point(self, point: Point) -> bool:
        if len(point) != self.dims:
            raise GeometryError(
                f"point has {len(point)} coordinates, region has {self.dims}"
            )
        return all(
            lo - EPSILON <= x <= hi + EPSILON
            for x, lo, hi in zip(point, self.lows, self.highs)
        )

    def bounding_box(self) -> "HyperRect":
        return self

    def corners(self) -> Iterable[tuple[float, ...]]:
        """Yield all 2^dims corner points.

        Used for exact rect-inside-sphere and rect-inside-polytope checks;
        the paper's regions are 2-d or 3-d so the corner count is small.
        """
        for choice in itertools.product(*zip(self.lows, self.highs)):
            yield choice

    def side_lengths(self) -> tuple[float, ...]:
        return tuple(hi - lo for lo, hi in zip(self.lows, self.highs))

    def intersect(self, other: "HyperRect") -> "HyperRect | None":
        """The intersection box, or None when the boxes are disjoint."""
        _check_dims(self, other)
        lows = tuple(max(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(min(a, b) for a, b in zip(self.highs, other.highs))
        if any(lo > hi + EPSILON for lo, hi in zip(lows, highs)):
            return None
        return HyperRect(lows, highs)

    def union_box(self, other: "HyperRect") -> "HyperRect":
        """The minimum box enclosing both; the R-tree's node expansion."""
        _check_dims(self, other)
        return HyperRect(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    @staticmethod
    def from_center(center: Point, half_widths: Point) -> "HyperRect":
        if len(center) != len(half_widths):
            raise GeometryError("center and half_widths must agree in length")
        return HyperRect(
            tuple(c - h for c, h in zip(center, half_widths)),
            tuple(c + h for c, h in zip(center, half_widths)),
        )


@dataclass(frozen=True)
class HyperSphere(Region):
    """A closed ball: all points within ``radius`` of ``center``.

    This is the shape declared by the paper's example function template
    for ``fGetNearbyObjEq(ra, dec, radius)`` (Figure 3): a 3-d
    hypersphere around the unit vector of the search center.
    """

    center: tuple[float, ...]
    radius: float

    def __post_init__(self) -> None:
        if not self.center:
            raise GeometryError("a hypersphere needs at least one dimension")
        if self.radius < 0:
            raise GeometryError(f"negative radius: {self.radius}")
        object.__setattr__(self, "center", tuple(float(x) for x in self.center))
        object.__setattr__(self, "radius", float(self.radius))

    @property
    def dims(self) -> int:  # type: ignore[override]
        return len(self.center)

    def is_empty(self) -> bool:
        return False  # a zero-radius sphere still contains its center

    def contains_point(self, point: Point) -> bool:
        if len(point) != self.dims:
            raise GeometryError(
                f"point has {len(point)} coordinates, region has {self.dims}"
            )
        dist2 = sum((x - c) ** 2 for x, c in zip(point, self.center))
        return dist2 <= (self.radius + EPSILON) ** 2

    def bounding_box(self) -> HyperRect:
        return HyperRect.from_center(self.center, (self.radius,) * self.dims)

    def center_distance(self, other: "HyperSphere") -> float:
        _check_dims(self, other)
        return math.dist(self.center, other.center)


@dataclass(frozen=True)
class Halfspace:
    """The halfspace ``normal . x <= offset``.

    Building block of :class:`ConvexPolytope`.  Normals need not be unit
    length; :meth:`normalized` rescales so that signed distances can be
    compared against sphere radii.
    """

    normal: tuple[float, ...]
    offset: float

    def __post_init__(self) -> None:
        if not self.normal:
            raise GeometryError("a halfspace needs at least one dimension")
        if all(_close(n, 0.0) for n in self.normal):
            raise GeometryError("halfspace normal must be non-zero")
        object.__setattr__(self, "normal", tuple(float(x) for x in self.normal))
        object.__setattr__(self, "offset", float(self.offset))

    @property
    def dims(self) -> int:
        return len(self.normal)

    def normalized(self) -> "Halfspace":
        norm = math.sqrt(sum(n * n for n in self.normal))
        return Halfspace(tuple(n / norm for n in self.normal), self.offset / norm)

    def contains_point(self, point: Point) -> bool:
        value = sum(n * x for n, x in zip(self.normal, point))
        return value <= self.offset + EPSILON


@dataclass(frozen=True)
class ConvexPolytope(Region):
    """An intersection of halfspaces (an H-polytope).

    The paper notes (Section 3.1, property 2) that a region "can be a
    hypercube (most common), a hypersphere, or even a polytope (more
    complex)".  We represent polytopes in halfspace form because the
    function templates that need them (e.g. great-circle band searches)
    naturally produce linear constraints, and halfspace form gives exact
    contains-point, polytope-contains-rect, and polytope-contains-sphere
    checks without a vertex enumeration.

    ``bbox`` must be supplied by the template that constructs the
    polytope: computing a tight bounding box of an H-polytope requires
    linear programming, which is out of proportion for the proxy.  Any
    enclosing box is valid; a looser box only makes the R-tree filter
    less selective, never incorrect.
    """

    halfspaces: tuple[Halfspace, ...]
    bbox: HyperRect

    def __post_init__(self) -> None:
        if not self.halfspaces:
            raise GeometryError("a polytope needs at least one halfspace")
        dims = {h.dims for h in self.halfspaces}
        if len(dims) != 1:
            raise GeometryError("halfspaces disagree on dimensionality")
        if self.bbox.dims != dims.pop():
            raise GeometryError("bounding box dimensionality mismatch")
        object.__setattr__(self, "halfspaces", tuple(self.halfspaces))

    @property
    def dims(self) -> int:  # type: ignore[override]
        return self.bbox.dims

    def is_empty(self) -> bool:
        # Emptiness of an H-polytope requires an LP feasibility test; the
        # proxy treats a polytope as potentially non-empty, which is the
        # safe direction (it may cache an empty result, never drop tuples).
        return False

    def contains_point(self, point: Point) -> bool:
        if len(point) != self.dims:
            raise GeometryError(
                f"point has {len(point)} coordinates, region has {self.dims}"
            )
        return all(h.contains_point(point) for h in self.halfspaces)

    def bounding_box(self) -> HyperRect:
        return self.bbox


@dataclass(frozen=True)
class DifferenceRegion(Region):
    """``base`` minus the union of ``holes``.

    This is the region of a *remainder query* (Dar et al.'s semantic
    caching): the part of a new query's region not covered by the cache.
    It is never stored in the cache description; it exists to (a) test
    membership when merging probe and remainder results and (b) render
    the remainder predicate via the template layer.
    """

    base: Region
    holes: tuple[Region, ...]

    def __post_init__(self) -> None:
        for hole in self.holes:
            _check_dims(self.base, hole)
        object.__setattr__(self, "holes", tuple(self.holes))

    @property
    def dims(self) -> int:  # type: ignore[override]
        return self.base.dims

    def is_empty(self) -> bool:
        # Exact emptiness would need region subtraction; the caller
        # detects full coverage through relation checks instead.
        return self.base.is_empty()

    def contains_point(self, point: Point) -> bool:
        if not self.base.contains_point(point):
            return False
        return not any(hole.contains_point(point) for hole in self.holes)

    def bounding_box(self) -> HyperRect:
        return self.base.bounding_box()


@dataclass(frozen=True)
class UnionRegion(Region):
    """A union of regions.

    Used when the proxy assembles the *cached portion* of an overlapping
    query from several cache entries (the region-containment case of
    Section 3.2 merges all subsumed entries with the remainder result).
    """

    parts: tuple[Region, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise GeometryError("a union needs at least one part")
        first = self.parts[0]
        for part in self.parts[1:]:
            _check_dims(first, part)
        object.__setattr__(self, "parts", tuple(self.parts))

    @property
    def dims(self) -> int:  # type: ignore[override]
        return self.parts[0].dims

    def is_empty(self) -> bool:
        return all(part.is_empty() for part in self.parts)

    def contains_point(self, point: Point) -> bool:
        return any(part.contains_point(point) for part in self.parts)

    def bounding_box(self) -> HyperRect:
        box = self.parts[0].bounding_box()
        for part in self.parts[1:]:
            box = box.union_box(part.bounding_box())
        return box
