"""Offline template linter: ``python -m repro.analysis [paths...]``.

Lints function-template and info-file XML documents (the document kind
is sniffed from the root element) and exits nonzero when any
error-severity diagnostic is found — the admission check a fleet
operator runs before shipping templates to proxies.

With no paths (or ``--builtin``) the shipped SkyServer templates are
analyzed, which is what CI runs to keep the built-in templates clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.analyzer import analyze_manager, analyze_path
from repro.analysis.diagnostics import AnalysisReport, merge_reports


def _builtin_report() -> AnalysisReport:
    """Analyze the shipped SkyServer templates."""
    from repro.templates.manager import TemplateManager
    from repro.templates.skyserver_templates import (
        register_skyserver_templates,
    )

    manager = TemplateManager(analysis_mode="off")
    register_skyserver_templates(manager)
    return analyze_manager(manager)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Statically analyze function-template / info-file XML for "
            "cacheability violations (paper Section 3.1 properties)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="template/info XML files or directories of them; "
        "default: the built-in SkyServer templates",
    )
    parser.add_argument(
        "--builtin",
        action="store_true",
        help="also analyze the built-in SkyServer templates",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    args = parser.parse_args(argv)

    reports: list[AnalysisReport] = []
    if args.builtin or not args.paths:
        reports.append(_builtin_report())
    for path in args.paths:
        try:
            reports.append(analyze_path(path))
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2
    report = merge_reports(reports)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 1 if report.has_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
