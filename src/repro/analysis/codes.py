"""The stable diagnostic-code registry.

Every finding the analyzer or the repo linter can produce is declared
here with a fixed code, default severity, one-line title, and — where
applicable — the paper property (Section 3.1) it enforces:

* **property 1** — determinism;
* **property 2** — spatial region selection semantics;
* **property 3** — semantics-preserving joins;
* **property 4** — result attribute availability.

Code blocks:

* ``FP1xx`` — function-template structure and semantics (XML layer);
* ``FP2xx`` — query-template / info-file checks against the properties;
* ``FP3xx`` — repository lint rules (:mod:`repro.analysis.pylint_rules`);
* ``FP4xx`` — concurrency-safety checks
  (:mod:`repro.analysis.concurrency`).

The table is pinned by a golden test; changing a code's meaning is a
breaking change for anyone filtering diagnostics by code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Severity


@dataclass(frozen=True)
class CodeInfo:
    """The registry entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    paper_property: int | None = None


_E = Severity.ERROR
_W = Severity.WARNING
_I = Severity.INFO

#: All diagnostic codes, in numeric order.
CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        # ----------------------------------------- FP1xx: function templates
        CodeInfo("FP101", _E, "function template XML is not well-formed"),
        CodeInfo("FP102", _E, "missing or empty required template element"),
        CodeInfo("FP103", _E, "unknown region shape"),
        CodeInfo("FP104", _E, "invalid dimension count"),
        CodeInfo("FP105", _E, "expression arity does not match dimensions"),
        CodeInfo("FP106", _E, "unparseable template expression"),
        CodeInfo(
            "FP107", _E,
            "region expression references an undeclared $-parameter", 2,
        ),
        CodeInfo(
            "FP108", _W,
            "declared parameter unused by every region expression", 2,
        ),
        CodeInfo(
            "FP109", _E,
            "point expression references a $-parameter", 4,
        ),
        CodeInfo(
            "FP110", _E,
            "non-deterministic function in a template expression", 1,
        ),
        CodeInfo(
            "FP111", _W,
            "unknown scalar function in a template expression", 1,
        ),
        # ------------------------------------- FP2xx: query templates / info
        CodeInfo("FP201", _E, "query template SQL does not parse"),
        CodeInfo(
            "FP202", _E,
            "FROM clause is not a table-valued function call", 2,
        ),
        CodeInfo(
            "FP203", _E,
            "embedded function does not match the function template", 2,
        ),
        CodeInfo(
            "FP204", _E,
            "function call arity differs from the function template", 2,
        ),
        CodeInfo(
            "FP205", _E,
            "join is not a semantics-preserving key equi-join", 3,
        ),
        CodeInfo(
            "FP206", _E,
            "point attribute missing from the select list", 4,
        ),
        CodeInfo("FP207", _E, "key column missing from the select list"),
        CodeInfo(
            "FP208", _I,
            "TOP-N template caches truncated results (exact match only)",
        ),
        CodeInfo(
            "FP209", _E,
            "embedded function is not registered at the origin", 1,
        ),
        CodeInfo(
            "FP210", _E,
            "embedded table-valued function is non-deterministic", 1,
        ),
        CodeInfo(
            "FP211", _E,
            "non-deterministic scalar function in the query template", 1,
        ),
        CodeInfo(
            "FP212", _E, "info file references an unknown query template",
        ),
        CodeInfo(
            "FP213", _E,
            "info file leaves a template parameter unbound",
        ),
        CodeInfo(
            "FP214", _W,
            "info file maps a field to an undeclared parameter",
        ),
        # ------------------------------------------- FP3xx: repository lint
        CodeInfo(
            "FP301", _E,
            "wall-clock call outside network/clock.py and obs/",
        ),
        CodeInfo(
            "FP302", _E,
            "float equality comparison outside geometry/",
        ),
        CodeInfo(
            "FP303", _E,
            "raised exception does not come from an errors module",
        ),
        CodeInfo("FP304", _E, "Python source file does not parse"),
        CodeInfo(
            "FP305", _E,
            "unseeded or module-level randomness outside tests", 1,
        ),
        CodeInfo(
            "FP306", _E,
            "manual __enter__/__exit__ call; use a with block",
        ),
        CodeInfo(
            "FP307", _E,
            "non-atomic whole-file write outside persistence/",
        ),
        CodeInfo(
            "FP308", _E,
            "benchmark prints results outside BenchReporter",
        ),
        CodeInfo(
            "FP309", _E,
            "raw threading.Lock/RLock outside repro/locking.py",
        ),
        CodeInfo(
            "FP310", _E,
            "unbounded queue or deque in a serve-path module",
        ),
        CodeInfo(
            "FP311", _E,
            "event emission with a code outside EVENT_CODES",
        ),
        CodeInfo(
            "FP312", _E,
            "direct shard-internal import outside repro.cluster",
        ),
        # --------------------------------------- FP4xx: concurrency safety
        CodeInfo(
            "FP401", _E,
            "shared mutable state without a concurrency registration",
        ),
        CodeInfo(
            "FP402", _E,
            "write to a guarded attribute outside its lock",
        ),
        CodeInfo(
            "FP403", _E,
            "read-only attribute mutated after __init__",
        ),
        CodeInfo(
            "FP404", _E,
            "lock-acquisition-order cycle (potential deadlock)",
        ),
        CodeInfo(
            "FP405", _E,
            "guarded-by registration names an unknown lock",
        ),
        CodeInfo(
            "FP406", _W,
            "guarded attribute is never written (stale registration)",
        ),
    )
}


def code_info(code: str) -> CodeInfo:
    """Look up a code; unknown codes are a programming error."""
    try:
        return CODES[code]
    except KeyError:
        raise KeyError(f"unknown diagnostic code {code!r}") from None


def severity_of(code: str) -> Severity:
    return code_info(code).severity
