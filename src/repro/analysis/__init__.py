"""Static cacheability analysis: a diagnostics engine for templates.

The paper's correctness argument rests on four statically-checkable
properties (Section 3.1): determinism, spatial region selection
semantics, semantics-preserving joins, and result attribute
availability.  A template that silently violates one produces *wrong
cache answers* at runtime; this package verifies all four — and more —
at admission time and turns every violation into a structured
:class:`Diagnostic` with a stable code, a severity, a source span, and
a fix hint.

Two prongs:

* **Domain analyzer** (``analyze_*``) — pass pipelines over function
  template XML, query templates, and info files (codes ``FP1xx`` /
  ``FP2xx``).  Wired into :class:`repro.templates.manager.TemplateManager`
  registration (strict mode rejects, permissive mode degrades the
  template to pass-through), the Flask apps' ``GET /analyze``, and the
  offline CLI ``python -m repro.analysis``.
* **Repository lint** (:mod:`repro.analysis.pylint_rules`) — custom AST
  rules enforcing repo invariants (codes ``FP3xx``), driven by
  ``tools/lint.py`` in CI.

Diagnostic counts feed the metrics registry as
``analysis_diagnostics_total{code=...,severity=...}``.
"""

from repro.analysis.analyzer import (
    analyze_function_template,
    analyze_function_template_xml,
    analyze_info_file,
    analyze_info_file_xml,
    analyze_manager,
    analyze_path,
    analyze_query_template,
)
from repro.analysis.codes import CODES, CodeInfo, code_info, severity_of
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    SourceSpan,
    merge_reports,
    span_at,
    span_of,
    whole_span,
)
from repro.analysis.pylint_rules import ALL_RULES, lint_file, run_lint

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "Severity",
    "SourceSpan",
    "analyze_function_template",
    "analyze_function_template_xml",
    "analyze_info_file",
    "analyze_info_file_xml",
    "analyze_manager",
    "analyze_path",
    "analyze_query_template",
    "code_info",
    "lint_file",
    "merge_reports",
    "run_lint",
    "severity_of",
    "span_at",
    "span_of",
    "whole_span",
]
