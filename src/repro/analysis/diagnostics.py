"""The diagnostic data model of the static cacheability analyzer.

A :class:`Diagnostic` is one structured finding: a stable code
(``FP101`` ... ``FP3xx``, see :mod:`repro.analysis.codes`), a severity,
a human-readable message, an optional :class:`SourceSpan` pointing into
the text the finding is about (template XML, query SQL, or a Python
source file), and an optional fix hint.  An :class:`AnalysisReport`
collects the diagnostics of one analysis run and renders them in the
classic ``path:line:col: CODE severity: message`` compiler style.

Nothing here imports the rest of the repository, so every layer
(templates, webapp, CLI, the repo linter) can depend on it freely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make a template unregistrable (strict mode) or
    degrade it to pass-through (permissive mode); ``WARNING`` and
    ``INFO`` findings are advisory and never block registration.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class SourceSpan:
    """A half-open character range ``[start, end)`` into some text.

    ``source`` labels the text (a template id, a function name, or a
    file path); ``line``/``column`` are 1-based and refer to ``start``.
    ``snippet`` carries the spanned text itself so a report is readable
    without the original document at hand.
    """

    source: str
    start: int
    end: int
    line: int
    column: int
    snippet: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "start": self.start,
            "end": self.end,
            "line": self.line,
            "column": self.column,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return f"{self.source}:{self.line}:{self.column}"


def _line_column(text: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of a character offset into ``text``."""
    prefix = text[:offset]
    line = prefix.count("\n") + 1
    last_newline = prefix.rfind("\n")
    column = offset - last_newline  # works for -1 too: offset + 1
    return line, column


def span_at(
    text: str, start: int, end: int, source: str = "<text>"
) -> SourceSpan:
    """A span for an explicit character range of ``text``."""
    start = max(0, min(start, len(text)))
    end = max(start, min(end, len(text)))
    line, column = _line_column(text, start)
    snippet = text[start:end]
    if len(snippet) > 80:
        snippet = snippet[:77] + "..."
    return SourceSpan(
        source=source,
        start=start,
        end=end,
        line=line,
        column=column,
        snippet=snippet,
    )


def span_of(
    text: str, needle: str, source: str = "<text>"
) -> SourceSpan | None:
    """The span of the first occurrence of ``needle`` in ``text``.

    The analyzer uses this to anchor findings into template XML and SQL
    text without a position-tracking parser; when the needle cannot be
    found (e.g. the finding is about something *absent* from the text),
    the caller falls back to :func:`whole_span` or no span at all.
    """
    if not needle:
        return None
    index = text.find(needle)
    if index < 0:
        return None
    return span_at(text, index, index + len(needle), source)


def whole_span(text: str, source: str = "<text>") -> SourceSpan:
    """A span covering all of ``text``."""
    return span_at(text, 0, len(text), source)


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str
    severity: Severity
    message: str
    subject: str = ""
    span: SourceSpan | None = None
    hint: str = ""

    def format(self) -> str:
        """The compiler-style one-or-two-line rendering."""
        where = str(self.span) if self.span is not None else self.subject
        prefix = f"{where}: " if where else ""
        text = f"{prefix}{self.code} {self.severity.value}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "subject": self.subject,
            "span": None if self.span is None else self.span.to_dict(),
            "hint": self.hint,
        }


@dataclass
class AnalysisReport:
    """The diagnostics of one analysis run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    # --------------------------------------------------------- filtering
    def with_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.with_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def count_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return counts

    # --------------------------------------------------------- rendering
    def summary(self) -> str:
        n_errors = len(self.errors)
        n_warnings = len(self.warnings)
        n_info = len(self.with_severity(Severity.INFO))
        return (
            f"{n_errors} error(s), {n_warnings} warning(s), "
            f"{n_info} info"
        )

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        lines = [d.format() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "info": len(self.with_severity(Severity.INFO)),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def merge_reports(reports: Iterable[AnalysisReport]) -> AnalysisReport:
    """One report holding every diagnostic of ``reports``, in order."""
    merged = AnalysisReport()
    for report in reports:
        merged.extend(report)
    return merged
