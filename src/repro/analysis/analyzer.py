"""Entry points of the static cacheability analyzer.

Each ``analyze_*`` function builds a :class:`PassContext`, runs the
relevant pass pipeline, and returns an :class:`AnalysisReport`.  The
callers are:

* :class:`repro.templates.manager.TemplateManager` — at registration,
  rejecting (strict mode) or degrading (permissive mode) artifacts
  with error diagnostics;
* the Flask apps' ``GET /analyze`` endpoints and their startup report;
* the offline CLI, ``python -m repro.analysis``.
"""

from __future__ import annotations

import pathlib
import xml.etree.ElementTree as ET
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import AnalysisReport, merge_reports
from repro.analysis.passes import (
    FUNCTION_TEMPLATE_PASSES,
    FunctionCatalog,
    PassContext,
    analyze_function_template_text,
    analyze_query_template_passes,
    check_info_file,
)
from repro.templates.function_template import FunctionTemplate
from repro.templates.info_file import TemplateInfoFile
from repro.templates.query_template import QueryTemplate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.templates.manager import TemplateManager


def analyze_function_template(
    template: FunctionTemplate,
    registry: FunctionCatalog | None = None,
) -> AnalysisReport:
    """Semantic passes (FP107–FP111) over a constructed template.

    Spans anchor into the template's XML serialization, which is also
    what a registered template round-trips through.
    """
    ctx = PassContext(
        subject=template.name,
        text=template.to_xml(),
        source=f"{template.name}.xml",
        registry=registry,
    )
    for semantic_pass in FUNCTION_TEMPLATE_PASSES:
        semantic_pass(template, ctx)
    return ctx.report


def analyze_function_template_xml(
    text: str,
    source: str = "<function-template>",
    registry: FunctionCatalog | None = None,
) -> AnalysisReport:
    """Structural + semantic passes (FP101–FP111) over raw XML text."""
    ctx = PassContext(
        subject=source, text=text, source=source, registry=registry
    )
    analyze_function_template_text(ctx)
    return ctx.report


def analyze_query_template(
    template: QueryTemplate,
    registry: FunctionCatalog | None = None,
) -> AnalysisReport:
    """Property passes (FP202–FP211) over a parsed query template."""
    ctx = PassContext(
        subject=template.template_id,
        text=template.sql,
        source=f"{template.template_id}.sql",
        registry=registry,
    )
    analyze_query_template_passes(template, ctx)
    return ctx.report


def analyze_info_file(
    info: TemplateInfoFile,
    template: QueryTemplate | None,
) -> AnalysisReport:
    """Binding passes (FP212–FP214) over an info file.

    ``template`` is the query template the info file names, or None
    when it is not registered (FP212).
    """
    ctx = PassContext(subject=info.form_name)
    check_info_file(info, template, ctx)
    return ctx.report


def analyze_info_file_xml(
    text: str, source: str = "<info-file>"
) -> AnalysisReport:
    """Structural checks over raw info-file XML (FP101 / FP102).

    Cross-references (FP212–FP214) need a template registry, so the
    offline linter only validates the document shape.
    """
    ctx = PassContext(subject=source, text=text, source=source)
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        ctx.emit("FP101", f"info file XML is not well-formed: {exc}")
        return ctx.report
    if root.tag != "TemplateInfo":
        ctx.emit(
            "FP102",
            f"expected root element <TemplateInfo>, got <{root.tag}>",
            span=ctx.span(f"<{root.tag}"),
        )
        return ctx.report
    for tag in ("FormName", "TemplateId"):
        element = root.find(tag)
        if element is None or not (element.text or "").strip():
            ctx.emit("FP102", f"missing or empty <{tag}> element")
    fields = root.find("Fields")
    if fields is not None:
        for field_el in fields.findall("Field"):
            if not field_el.get("name") or not field_el.get("param"):
                ctx.emit(
                    "FP102",
                    "<Field> needs both a name and a param attribute",
                    span=ctx.span("<Field"),
                )
    return ctx.report


def analyze_manager(
    manager: "TemplateManager",
    registry: FunctionCatalog | None = None,
) -> AnalysisReport:
    """Analyze everything registered with a template manager."""
    reports: list[AnalysisReport] = []
    for function_template in manager.function_templates():
        reports.append(
            analyze_function_template(function_template, registry)
        )
    for template_id in manager.query_template_ids():
        reports.append(
            analyze_query_template(
                manager.query_template(template_id), registry
            )
        )
    for info in manager.info_files():
        try:
            template: QueryTemplate | None = manager.query_template(
                info.template_id
            )
        except Exception:
            template = None
        reports.append(analyze_info_file(info, template))
    return merge_reports(reports)


def analyze_path(path: str | pathlib.Path) -> AnalysisReport:
    """Lint one template/info XML file (or a directory of them).

    The document kind is sniffed from the root element; files that are
    neither function templates nor info files get an FP102.
    """
    path = pathlib.Path(path)
    if path.is_dir():
        return merge_reports(
            analyze_path(child) for child in sorted(path.rglob("*.xml"))
        )
    text = path.read_text(encoding="utf-8")
    source = str(path)
    stripped = text.lstrip()
    if stripped.startswith("<?"):
        stripped = stripped.split("?>", 1)[-1].lstrip()
    if stripped.startswith("<TemplateInfo"):
        return analyze_info_file_xml(text, source)
    return analyze_function_template_xml(text, source)
