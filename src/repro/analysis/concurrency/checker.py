"""The FP4xx checks over the extracted source model.

One entry point, :func:`analyze_concurrency`, producing a normal
:class:`repro.analysis.diagnostics.AnalysisReport`:

* ``FP401`` — shared mutable state (a module-level mutable, or an
  instance attribute a serve-path class writes after ``__init__``)
  with no ``guarded_by`` / ``unshared`` / ``read-only`` registration;
* ``FP402`` — a write to a ``guarded`` attribute whose declared lock
  is not held, lexically or via the private-helper entry-held rule;
* ``FP403`` — a post-``__init__`` write to a ``read-only`` attribute;
* ``FP404`` — a cycle in the lock-acquisition-order graph
  (:mod:`repro.analysis.concurrency.lockorder`);
* ``FP405`` — a ``guarded_by`` registration naming a lock role that no
  ``named_lock("...")`` call in the analyzed tree constructs;
* ``FP406`` (warning) — a ``guarded`` registration whose attribute is
  never written outside ``__init__`` anywhere: stale, and hiding the
  real discipline (``--strict`` makes it fatal so the registry stays
  honest).

Diagnostics are sorted by location so output is stable for goldens.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass

from repro.analysis.codes import severity_of
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    SourceSpan,
)
from repro.analysis.concurrency.lockorder import LockGraph, build_graph
from repro.analysis.concurrency.model import (
    GUARDED,
    READ_ONLY,
    ClassModel,
    MethodSummary,
    ModuleModel,
    Project,
    Registration,
    WriteSite,
    build_project,
    compute_entry_held,
    summarize_methods,
)

_REGISTER_HINT = (
    'register it: @guarded_by("<lock>", ...) when a named lock protects '
    "it, @unshared for per-query/per-thread state, @read_only when it is "
    "set once during construction (comment forms: # guarded-by: <lock>, "
    "# unshared, # read-only)"
)


def _node_span(module: ModuleModel, node: ast.AST) -> SourceSpan:
    start, end, line, column, snippet = module.span_args(node)
    return SourceSpan(
        source=module.path.as_posix(),
        start=start,
        end=end,
        line=line,
        column=column,
        snippet=snippet,
    )


def _line_span(module: ModuleModel, line: int) -> SourceSpan:
    lines = module.text.split("\n")
    if 1 <= line <= len(lines):
        content = lines[line - 1]
    else:
        content = ""
    stripped = content.lstrip()
    column = len(content) - len(stripped) + 1
    start = module._offset(line, column - 1)
    snippet = stripped
    if len(snippet) > 80:
        snippet = snippet[:77] + "..."
    return SourceSpan(
        source=module.path.as_posix(),
        start=start,
        end=start + len(stripped),
        line=line,
        column=column,
        snippet=snippet,
    )


def _diag(
    code: str, message: str, span: SourceSpan, hint: str = ""
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity_of(code),
        message=message,
        span=span,
        hint=hint,
    )


@dataclass(frozen=True)
class _Found:
    """A registration plus the class that declares it."""

    klass: ClassModel
    registration: Registration


def _find_registration(
    project: Project, class_name: str, attr: str
) -> _Found | None:
    """The registration governing ``class_name.attr``, MRO-style."""
    start = project.resolve_class(class_name)
    if start is None:
        return None
    queue = [start]
    visited: set[str] = set()
    while queue:
        current = queue.pop(0)
        if current.name in visited:
            continue
        visited.add(current.name)
        if attr in current.registrations:
            return _Found(current, current.registrations[attr])
        for base in current.bases:
            parent = project.resolve_class(base)
            if parent is not None:
                queue.append(parent)
    return None


def _is_lock_attr(project: Project, class_name: str, attr: str) -> bool:
    klass = project.resolve_class(class_name)
    if klass is None:
        return False
    return project.lock_attr_of(klass, attr) is not None


def _check_module_state(project: Project) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for module in project.modules:
        for state in module.module_state:
            if state.waiver is not None:
                continue
            diagnostics.append(
                _diag(
                    "FP401",
                    f"module-level mutable '{state.name}' has no "
                    "concurrency registration",
                    _node_span(module, state.node),
                    hint=_REGISTER_HINT,
                )
            )
    return diagnostics


def _check_writes(
    project: Project,
    summaries: dict[tuple[str, str], MethodSummary],
    entry_held: dict[tuple[str, str], frozenset[str]],
) -> tuple[list[Diagnostic], set[tuple[str, str]]]:
    """FP401 (instances), FP402, FP403 — returns used registrations."""
    diagnostics: list[Diagnostic] = []
    used: set[tuple[str, str]] = set()
    unregistered_seen: set[tuple[str, str]] = set()

    all_writes: list[WriteSite] = []
    for summary in summaries.values():
        all_writes.extend(summary.writes)

    def sort_key(write: WriteSite) -> tuple[str, int, int]:
        module = write.summary.klass.module
        return (
            module.path.as_posix(),
            getattr(write.node, "lineno", 0),
            getattr(write.node, "col_offset", 0),
        )

    for write in sorted(all_writes, key=sort_key):
        owner = project.resolve_class(write.owner)
        if owner is None:
            continue
        found = _find_registration(project, write.owner, write.attr)
        if found is None:
            if write.in_init:
                continue  # construction is single-threaded
            if not owner.in_scope:
                continue
            if _is_lock_attr(project, write.owner, write.attr):
                continue
            key = (write.owner, write.attr)
            if key in unregistered_seen:
                continue
            unregistered_seen.add(key)
            module = write.summary.klass.module
            diagnostics.append(
                _diag(
                    "FP401",
                    f"'{write.owner}.{write.attr}' is written outside "
                    "__init__ but has no concurrency registration",
                    _node_span(module, write.node),
                    hint=_REGISTER_HINT,
                )
            )
            continue
        registration = found.registration
        if not write.in_init:
            used.add((found.klass.name, write.attr))
        if registration.kind == READ_ONLY:
            if not write.in_init:
                module = write.summary.klass.module
                diagnostics.append(
                    _diag(
                        "FP403",
                        f"'{write.owner}.{write.attr}' is registered "
                        "read-only but written after __init__",
                        _node_span(module, write.node),
                        hint="drop the read-only registration or stop "
                        "mutating the attribute after construction",
                    )
                )
            continue
        if registration.kind != GUARDED or write.in_init:
            continue
        lock = registration.lock or ""
        effective = set(write.held) | entry_held.get(
            write.summary.key, frozenset()
        )
        if lock not in effective:
            module = write.summary.klass.module
            holding = (
                "holding " + ", ".join(sorted(effective))
                if effective
                else "holding no lock"
            )
            diagnostics.append(
                _diag(
                    "FP402",
                    f"write to '{write.owner}.{write.attr}' (guarded by "
                    f"'{lock}') while {holding}",
                    _node_span(module, write.node),
                    hint=f"wrap the write in 'with <{lock} lock>:' or "
                    "move it into a helper whose every call site "
                    "holds the lock",
                )
            )
    return diagnostics, used


def _check_registrations(
    project: Project, used: set[tuple[str, str]]
) -> list[Diagnostic]:
    """FP405 (unknown lock) and FP406 (stale guarded registration)."""
    diagnostics: list[Diagnostic] = []
    for module in project.modules:
        for klass in module.classes.values():
            for attr, registration in sorted(
                klass.registrations.items()
            ):
                if registration.kind != GUARDED:
                    continue
                lock = registration.lock or ""
                if lock not in project.lock_names:
                    diagnostics.append(
                        _diag(
                            "FP405",
                            f"'{klass.name}.{attr}' is guarded by "
                            f"'{lock}', but no named_lock({lock!r}) "
                            "exists in the analyzed tree",
                            _line_span(module, registration.line),
                            hint="construct the lock via "
                            "repro.locking.named_lock or fix the role "
                            "name in the registration",
                        )
                    )
                elif (klass.name, attr) not in used:
                    diagnostics.append(
                        _diag(
                            "FP406",
                            f"'{klass.name}.{attr}' is registered as "
                            f"guarded by '{lock}' but never written "
                            "outside __init__",
                            _line_span(module, registration.line),
                            hint="stale registration: remove it or "
                            "use @read_only",
                        )
                    )
    return diagnostics


def _check_cycles(graph: LockGraph) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for cycle in graph.cycles:
        rendering = " -> ".join(cycle + cycle[:1])
        witness = graph.edges.get((cycle[0], cycle[1]))
        if witness is None and len(cycle) >= 2:
            witness = graph.edges.get((cycle[1], cycle[0]))
        span = (
            witness.span
            if witness is not None
            else SourceSpan("<lock-order graph>", 0, 0, 1, 1)
        )
        diagnostics.append(
            _diag(
                "FP404",
                f"lock-order cycle: {rendering}",
                span,
                hint="pick one global acquisition order for these "
                "locks and restructure the nested scopes to follow it",
            )
        )
    return diagnostics


def analyze_concurrency(
    paths: list[pathlib.Path],
) -> tuple[AnalysisReport, LockGraph]:
    """Run every FP4xx check over the files under ``paths``.

    Returns the report plus the lock-order graph (for ``--graph`` and
    the sanitizer-consistency test).
    """
    project = build_project(paths)
    report = AnalysisReport()
    for path, error in project.unparsed:
        report.add(
            Diagnostic(
                code="FP304",
                severity=severity_of("FP304"),
                message=f"cannot parse {path}: {error.msg}",
                subject=path.as_posix(),
            )
        )
    summaries = summarize_methods(project)
    entry_held = compute_entry_held(summaries, set(project.lock_names))
    graph = build_graph(summaries, entry_held)

    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_check_module_state(project))
    write_diags, used = _check_writes(project, summaries, entry_held)
    diagnostics.extend(write_diags)
    diagnostics.extend(_check_registrations(project, used))
    diagnostics.extend(_check_cycles(graph))

    def sort_key(diag: Diagnostic) -> tuple[str, int, int, str]:
        span = diag.span
        if span is None:
            return (diag.subject, 0, 0, diag.code)
        return (span.source, span.line, span.column, diag.code)

    for diagnostic in sorted(diagnostics, key=sort_key):
        report.add(diagnostic)
    return report, graph
