"""Concurrency-safety analysis: guarded state and lock order (FP4xx).

The serve path is about to go multi-threaded (ROADMAP items 1-2), and
nothing in a dynamic test suite reliably catches the races that will
introduce.  This package is the static leg of the concurrency story
(the runtime leg is :mod:`repro.locking`): an AST/dataflow pass over
``src/repro`` that enforces three invariants, each with a stable
diagnostic code flowing through the normal :mod:`repro.analysis`
plumbing:

* **Inventory** (``FP401``) — every piece of shared mutable state on
  the serve path (module-level mutables, instance attributes written
  after ``__init__`` by classes in the serve-path modules) must be
  *registered*: either ``@guarded_by("<lock>", ...)`` naming the
  :func:`repro.locking.named_lock` role that protects it, or an
  explicit ``@unshared`` / ``@read_only`` waiver (comment conventions
  ``# guarded-by: <lock>`` / ``# unshared`` / ``# read-only`` work
  too).  Unregistered shared state is an error: the point is that the
  *author* decides the discipline, and the analyzer holds them to it.

* **Guarded writes** (``FP402``/``FP403``/``FP405``/``FP406``) — every
  write to a ``guarded`` attribute must be lexically inside a ``with
  <lock>:`` block for the declared lock, where "lexically" extends
  across same-class private helper calls (a private method whose every
  call site holds the lock counts as locked) and through the
  ``acquire()`` / ``try/finally release()`` idiom.  Writes inside any
  ``__init__`` are exempt: construction is single-threaded by
  convention.  ``read-only`` attributes must never be written after
  ``__init__`` at all.

* **Lock order** (``FP404``) — nested ``with`` blocks and
  lock-acquiring calls build a lock-acquisition-order graph over the
  named-lock roles; a cycle in that graph is a potential deadlock.
  The same graph is exported (:func:`build_lock_graph`) so tests can
  assert the runtime :class:`repro.locking.LockOrderSanitizer` never
  observes an edge the static analysis did not predict.

The pass is deliberately *under-approximate* where Python defeats
static reasoning: a write through a receiver whose type cannot be
resolved is not checked (and produces no diagnostic), so every
diagnostic it does produce is actionable.  Receiver types come from
``__init__`` constructor calls, dataclass field and parameter
annotations, and the ``# lock-class: <Class>`` comment escape hatch.

Run it as ``python -m repro.analysis.concurrency [--strict] [paths]``;
CI runs it over ``src/repro`` with ``--strict`` (warnings fatal).
"""

from repro.analysis.concurrency.checker import analyze_concurrency
from repro.analysis.concurrency.lockorder import (
    LockGraph,
    build_lock_graph,
)
from repro.analysis.concurrency.model import (
    MUTATING_METHODS,
    SERVE_PATH_MODULES,
    SERVE_PATH_PRAGMA,
    Project,
    build_project,
)

__all__ = [
    "LockGraph",
    "MUTATING_METHODS",
    "Project",
    "SERVE_PATH_MODULES",
    "SERVE_PATH_PRAGMA",
    "analyze_concurrency",
    "build_lock_graph",
    "build_project",
]
