"""The source model the concurrency checks run against.

Two passes over every analyzed file:

* **Pass 1** (:func:`build_project`) parses each module and extracts
  the *declarations*: classes with their concurrency registrations
  (decorators and comment conventions), lock attributes
  (``self._lock = named_lock("role")``), attribute types (constructor
  calls, annotations, ``# lock-class:`` comments), module-level
  mutable state, and every ``named_lock("...")`` role constructed
  anywhere (the lock-name universe for ``FP405``).

* **Pass 2** (:func:`summarize_methods`) walks every method body with
  a held-lock context and produces flat :class:`WriteSite` /
  :class:`CallSite` / :class:`AcquireSite` records — the only thing
  the checker and the lock-order graph ever look at.  The walker
  tracks local aliases (``c = self.cache`` and then ``c.store(...)``
  still resolves to the cache), resolves receiver chains up to two
  attributes deep through the project-wide class table, recognizes
  ``with`` blocks and the ``acquire()`` / ``try/finally release()``
  idiom as lock scopes, and treats objects freshly constructed in the
  current method as unshared.

Everything here is resolution by *bare class name*: a name bound to
two different classes across the tree becomes ambiguous and resolves
to nothing (the pass under-approximates rather than guesses).
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field

#: Methods that mutate a builtin container in place.  A call like
#: ``self._entries.pop(...)`` on an attribute whose type does *not*
#: resolve to a project class counts as a write to that attribute; on
#: a resolvable project class it is a method call analyzed in the
#: callee instead.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Constructor calls whose result is mutable module-level state.
_MUTABLE_FACTORIES = frozenset(
    {
        "Counter",
        "OrderedDict",
        "bytearray",
        "defaultdict",
        "deque",
        "dict",
        "list",
        "set",
    }
)

#: Modules (repro-relative) whose classes are on the serve path: every
#: instance attribute they write after ``__init__`` must be registered
#: (FP401).  Classes elsewhere opt in by carrying any registration or
#: a named lock.  ``core/description.py`` is deliberately absent: the
#: cache description is owned by ``CacheManager`` and mutated only
#: under ``proxy.cache`` — an ownership convention, documented in
#: DESIGN.md, rather than a per-attribute registration.
SERVE_PATH_MODULES = frozenset(
    {
        "admission/controller.py",
        "core/cache.py",
        "core/proxy.py",
        "core/stats.py",
        "network/clock.py",
        "sched/frontend.py",
        "sched/loop.py",
        "obs/decisions.py",
        "obs/events.py",
        "obs/health.py",
        "obs/instrument.py",
        "obs/spans.py",
        "obs/timeseries.py",
        "persistence/journal.py",
        "persistence/persister.py",
        "templates/manager.py",
    }
)

#: A module outside the pinned set (fixtures, future code) can opt its
#: classes into the FP401 inventory with this comment near the top.
SERVE_PATH_PRAGMA = "concurrency: serve-path"

#: Files never analyzed: the lock infrastructure itself (its internal
#: mutex cannot be a NamedLock without infinite regress).
EXEMPT_RELATIVE = frozenset({"locking.py"})

#: Registration kinds — mirrors :mod:`repro.locking`.
GUARDED = "guarded"
UNSHARED = "unshared"
READ_ONLY = "read-only"

_GUARDED_BY_RE = re.compile(r"guarded-by:\s*([\w.]+)")
_LOCK_CLASS_RE = re.compile(r"lock-class:\s*(\w+)")
_UNSHARED_RE = re.compile(r"\bunshared\b")
_READ_ONLY_RE = re.compile(r"\bread-only\b")


# --------------------------------------------------------------------------
# declarations (pass 1)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Registration:
    """One attribute's declared concurrency discipline."""

    kind: str  # GUARDED | UNSHARED | READ_ONLY
    lock: str | None  # the named-lock role, for GUARDED
    line: int  # where the registration appears


@dataclass
class ClassModel:
    """One class declaration: registrations, locks, attribute types."""

    name: str
    module: "ModuleModel"
    #: the defining ClassDef, or the Module node for the pseudo-class
    #: that holds a module's top-level functions
    node: ast.AST
    bases: tuple[str, ...] = ()
    registrations: dict[str, Registration] = field(default_factory=dict)
    lock_attrs: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )

    @property
    def in_scope(self) -> bool:
        """Whether FP401 inventories this class's attribute writes."""
        return bool(
            self.module.serve_path or self.registrations or self.lock_attrs
        )


@dataclass
class ModuleState:
    """One module-level mutable binding and its waiver, if any."""

    name: str
    node: ast.stmt
    waiver: Registration | None


@dataclass
class ModuleModel:
    """One parsed source file plus its extracted declarations."""

    path: pathlib.Path
    rel: str  # repro-relative posix path, or the file name
    text: str
    tree: ast.Module
    serve_path: bool = False
    classes: dict[str, ClassModel] = field(default_factory=dict)
    module_state: list[ModuleState] = field(default_factory=list)
    named_locks: set[str] = field(default_factory=set)
    comments: dict[int, str] = field(default_factory=dict)
    code_lines: set[int] = field(default_factory=set)
    #: local names bound to repro.locking.named_lock
    lock_ctor_names: set[str] = field(default_factory=set)
    #: local names bound to the repro.locking module itself
    lock_module_names: set[str] = field(default_factory=set)
    _line_offsets: list[int] = field(default_factory=list)

    def span_args(self, node: ast.AST) -> tuple[int, int, int, int, str]:
        """(start, end, line, column, snippet) for an AST node."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end_lineno = getattr(node, "end_lineno", None) or lineno
        end_col = getattr(node, "end_col_offset", None)
        start = self._offset(lineno, col)
        if end_col is None:
            end = start + 1
        else:
            end = self._offset(end_lineno, end_col)
        snippet = self.text[start:end]
        if len(snippet) > 80:
            snippet = snippet[:77] + "..."
        return start, end, lineno, col + 1, snippet

    def _offset(self, line: int, column: int) -> int:
        index = min(max(line, 1), len(self._line_offsets)) - 1
        return min(self._line_offsets[index] + column, len(self.text))

    def comment_for(self, line: int) -> str:
        """The annotation comment governing a statement at ``line``.

        Either the trailing comment on the line itself, or a
        comment-only line immediately above it.
        """
        trailing = self.comments.get(line, "")
        if trailing:
            return trailing
        above = self.comments.get(line - 1, "")
        if above and (line - 1) not in self.code_lines:
            return above
        return ""

    def is_named_lock_call(self, node: ast.expr) -> str | None:
        """The role name if ``node`` is ``named_lock("<role>")``."""
        if not isinstance(node, ast.Call) or not node.args:
            return None
        func = node.func
        named = False
        if isinstance(func, ast.Name):
            named = func.id in self.lock_ctor_names
        elif isinstance(func, ast.Attribute) and func.attr == "named_lock":
            base = func.value
            if isinstance(base, ast.Name):
                named = base.id in self.lock_module_names
            elif isinstance(base, ast.Attribute):  # repro.locking.named_lock
                named = (
                    base.attr == "locking"
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "repro"
                )
        if not named:
            return None
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None


def _repro_relative(path: pathlib.Path) -> str:
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return path.name


def _collect_comments(
    text: str,
) -> tuple[dict[int, str], set[int]]:
    """Per-line comments and the set of lines carrying real code."""
    comments: dict[int, str] = {}
    code_lines: set[int] = set()
    skip = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return comments, code_lines
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments[token.start[0]] = token.string.lstrip("# ").rstrip()
        elif token.type not in skip:
            for line in range(token.start[0], token.end[0] + 1):
                code_lines.add(line)
    return comments, code_lines


def _registration_from_comment(
    comment: str, line: int
) -> Registration | None:
    match = _GUARDED_BY_RE.search(comment)
    if match:
        return Registration(GUARDED, match.group(1), line)
    if _READ_ONLY_RE.search(comment):
        return Registration(READ_ONLY, None, line)
    if _UNSHARED_RE.search(comment):
        return Registration(UNSHARED, None, line)
    return None


def _type_name(annotation: ast.expr | None) -> str | None:
    """The bare base name of a type annotation, if it has one."""
    node = annotation
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        for stop in "[|":
            index = text.find(stop)
            if index >= 0:
                text = text[:index]
        text = text.strip().strip('"')
        return text.rsplit(".", 1)[-1] or None
    if isinstance(node, ast.Subscript):
        return _type_name(node.value)
    if isinstance(node, ast.BinOp):  # X | None
        return _type_name(node.left)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _constructed_type(value: ast.expr) -> str | None:
    """The class name if ``value`` is (or falls back to) a call."""
    if isinstance(value, ast.BoolOp):
        for candidate in reversed(value.values):
            name = _constructed_type(candidate)
            if name is not None:
                return name
        return None
    if isinstance(value, ast.IfExp):
        return _constructed_type(value.body) or _constructed_type(
            value.orelse
        )
    if isinstance(value, ast.Call):
        return _type_name(value.func)
    return None


def _decorator_registrations(node: ast.ClassDef) -> dict[str, Registration]:
    registrations: dict[str, Registration] = {}
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        args = [
            arg.value
            for arg in decorator.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        ]
        if name == "guarded_by" and len(args) >= 2:
            for attr in args[1:]:
                registrations[attr] = Registration(
                    GUARDED, args[0], decorator.lineno
                )
        elif name == "unshared":
            for attr in args:
                registrations[attr] = Registration(
                    UNSHARED, None, decorator.lineno
                )
        elif name == "read_only":
            for attr in args:
                registrations[attr] = Registration(
                    READ_ONLY, None, decorator.lineno
                )
    return registrations


def _self_attr(target: ast.expr) -> str | None:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _extract_class(module: ModuleModel, node: ast.ClassDef) -> ClassModel:
    klass = ClassModel(
        name=node.name,
        module=module,
        node=node,
        bases=tuple(
            name
            for name in (_type_name(base) for base in node.bases)
            if name is not None
        ),
        registrations=_decorator_registrations(node),
    )

    def note_assignment(
        attr: str, value: ast.expr | None, annotation: ast.expr | None,
        line: int,
    ) -> None:
        comment = module.comment_for(line)
        lock_class = _LOCK_CLASS_RE.search(comment)
        registration = _registration_from_comment(comment, line)
        if registration is not None:
            klass.registrations.setdefault(attr, registration)
        if value is not None:
            lock_name = module.is_named_lock_call(value)
            if lock_name is not None:
                klass.lock_attrs[attr] = lock_name
                return
        type_name = None
        if lock_class:
            type_name = lock_class.group(1)
        if type_name is None and annotation is not None:
            type_name = _type_name(annotation)
        if type_name is None and value is not None:
            type_name = _constructed_type(value)
        if type_name is not None:
            klass.attr_types.setdefault(attr, type_name)

    # Class body: dataclass fields, class attributes, methods.
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            note_assignment(
                stmt.target.id, stmt.value, stmt.annotation, stmt.lineno
            )
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    note_assignment(
                        target.id, stmt.value, None, stmt.lineno
                    )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            klass.methods.setdefault(stmt.name, stmt)

    # __init__ (and other methods): self-attribute declarations.  Only
    # top-of-method-body statements declare types/locks; conditional
    # assignments still pick up registration comments.
    for method in klass.methods.values():
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.AnnAssign):
                attr = _self_attr(stmt.target)
                if attr is not None:
                    note_assignment(
                        attr, stmt.value, stmt.annotation, stmt.lineno
                    )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        note_assignment(
                            attr, stmt.value, None, stmt.lineno
                        )
    return klass


def _mutable_initializer(value: ast.expr | None) -> bool:
    if value is None:
        return False
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
         ast.DictComp),
    ):
        return True
    if isinstance(value, ast.Call):
        name = _type_name(value.func)
        return name in _MUTABLE_FACTORIES
    return False


def _exempt_module_name(name: str) -> bool:
    """ALL_CAPS constants and dunders skip the module-state check."""
    if name.startswith("__") and name.endswith("__"):
        return True
    stripped = name.strip("_")
    return bool(stripped) and stripped.isupper()


def _extract_module_state(module: ModuleModel) -> None:
    rebound: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Global):
            rebound.update(node.names)
    seen: set[str] = set()
    for stmt in module.tree.body:
        targets: list[ast.Name] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets = [
                t for t in stmt.targets if isinstance(t, ast.Name)
            ]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            targets = [stmt.target]
            value = stmt.value
        for target in targets:
            name = target.id
            if name in seen or _exempt_module_name(name):
                continue
            if not (_mutable_initializer(value) or name in rebound):
                continue
            seen.add(name)
            waiver = _registration_from_comment(
                module.comment_for(stmt.lineno), stmt.lineno
            )
            module.module_state.append(ModuleState(name, stmt, waiver))


def _extract_imports(module: ModuleModel) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro.locking":
                for alias in node.names:
                    if alias.name == "named_lock":
                        module.lock_ctor_names.add(
                            alias.asname or alias.name
                        )
            elif node.module == "repro":
                for alias in node.names:
                    if alias.name == "locking":
                        module.lock_module_names.add(
                            alias.asname or alias.name
                        )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.locking" and alias.asname:
                    module.lock_module_names.add(alias.asname)


def parse_module(path: pathlib.Path, text: str) -> ModuleModel:
    """Pass 1 for one file; raises ``SyntaxError`` on unparseable."""
    tree = ast.parse(text, filename=str(path))
    comments, code_lines = _collect_comments(text)
    module = ModuleModel(
        path=path,
        rel=_repro_relative(path),
        text=text,
        tree=tree,
        comments=comments,
        code_lines=code_lines,
    )
    offsets = [0]
    for line in text.split("\n")[:-1]:
        offsets.append(offsets[-1] + len(line) + 1)
    module._line_offsets = offsets
    module.serve_path = module.rel in SERVE_PATH_MODULES or any(
        SERVE_PATH_PRAGMA in comment
        for line, comment in comments.items()
        if line <= 5
    )
    _extract_imports(module)
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            module.classes[node.name] = _extract_class(module, node)
    _extract_module_state(module)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            lock_name = module.is_named_lock_call(node)
            if lock_name is not None:
                module.named_locks.add(lock_name)
    return module


@dataclass
class Project:
    """Every analyzed module plus the project-wide resolution tables."""

    modules: list[ModuleModel] = field(default_factory=list)
    classes: dict[str, ClassModel] = field(default_factory=dict)
    ambiguous: set[str] = field(default_factory=set)
    lock_names: set[str] = field(default_factory=set)
    unparsed: list[tuple[pathlib.Path, SyntaxError]] = field(
        default_factory=list
    )

    def resolve_class(self, name: str | None) -> ClassModel | None:
        if name is None or name in self.ambiguous:
            return None
        return self.classes.get(name)

    def find_method(
        self, klass: ClassModel, method: str
    ) -> tuple[ClassModel, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        """Resolve a method through the (bare-name) base-class chain."""
        queue = [klass]
        visited: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.name in visited:
                continue
            visited.add(current.name)
            node = current.methods.get(method)
            if node is not None:
                return current, node
            for base in current.bases:
                parent = self.resolve_class(base)
                if parent is not None:
                    queue.append(parent)
        return None

    def lock_attr_of(self, klass: ClassModel, attr: str) -> str | None:
        """A class's named-lock attribute, searching base classes."""
        queue = [klass]
        visited: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.name in visited:
                continue
            visited.add(current.name)
            if attr in current.lock_attrs:
                return current.lock_attrs[attr]
            for base in current.bases:
                parent = self.resolve_class(base)
                if parent is not None:
                    queue.append(parent)
        return None

    def attr_type_of(self, klass: ClassModel, attr: str) -> str | None:
        queue = [klass]
        visited: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.name in visited:
                continue
            visited.add(current.name)
            if attr in current.attr_types:
                return current.attr_types[attr]
            for base in current.bases:
                parent = self.resolve_class(base)
                if parent is not None:
                    queue.append(parent)
        return None

    def registration_of(
        self, klass: ClassModel, attr: str
    ) -> Registration | None:
        queue = [klass]
        visited: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.name in visited:
                continue
            visited.add(current.name)
            if attr in current.registrations:
                return current.registrations[attr]
            for base in current.bases:
                parent = self.resolve_class(base)
                if parent is not None:
                    queue.append(parent)
        return None


def collect_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    unique: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for candidate in files:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(candidate)
    return unique


def build_project(paths: list[pathlib.Path]) -> Project:
    """Pass 1 over every file under ``paths``."""
    project = Project()
    for path in collect_files(paths):
        if _repro_relative(path) in EXEMPT_RELATIVE:
            continue
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        try:
            module = parse_module(path, text)
        except SyntaxError as exc:
            project.unparsed.append((path, exc))
            continue
        project.modules.append(module)
        project.lock_names.update(module.named_locks)
        for name, klass in module.classes.items():
            if name in project.classes:
                project.ambiguous.add(name)
            else:
                project.classes[name] = klass
    for name in project.ambiguous:
        project.classes.pop(name, None)
    return project


# --------------------------------------------------------------------------
# method summaries (pass 2)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _Resolved:
    """What a receiver expression denotes, if anything."""

    kind: str  # "object" | "attr" | "lock"
    class_name: str = ""  # object: its class;  attr: the owner class
    attr: str = ""
    lock: str = ""
    fresh: bool = False  # constructed inside the current method


@dataclass
class WriteSite:
    """One write to ``owner.attr`` with the lexically held locks."""

    owner: str
    attr: str
    held: tuple[str, ...]
    node: ast.AST
    summary: "MethodSummary"

    @property
    def in_init(self) -> bool:
        return self.summary.name == "__init__"


@dataclass
class CallSite:
    """One resolved method call (``target_class.target_method``)."""

    target_class: str
    target_method: str
    held: tuple[str, ...]
    node: ast.AST
    same_class: bool
    summary: "MethodSummary"


@dataclass
class AcquireSite:
    """One lexical lock acquisition (``with`` or try/finally idiom)."""

    lock: str
    held_before: tuple[str, ...]
    node: ast.AST
    summary: "MethodSummary"


@dataclass
class MethodSummary:
    """Everything the checks need to know about one method body."""

    klass: ClassModel
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    writes: list[WriteSite] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    acquires: list[AcquireSite] = field(default_factory=list)

    @property
    def is_private(self) -> bool:
        return self.name.startswith("_") and not self.name.startswith("__")

    @property
    def key(self) -> tuple[str, str]:
        return (self.klass.name, self.name)


class _MethodWalker:
    """Pass 2 for one method: writes, calls, acquisitions."""

    def __init__(self, project: Project, summary: MethodSummary) -> None:
        self.project = project
        self.summary = summary
        self.module = summary.klass.module
        self.locals: dict[str, _Resolved] = {}
        for arg in self._all_args(summary.node):
            type_name = _type_name(arg.annotation)
            if type_name is not None:
                self.locals[arg.arg] = _Resolved(
                    "object", class_name=type_name
                )

    @staticmethod
    def _all_args(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[ast.arg]:
        args = node.args
        return (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )

    # ------------------------------------------------------- resolution
    def _resolve(self, expr: ast.expr) -> _Resolved | None:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return _Resolved(
                    "object", class_name=self.summary.klass.name
                )
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Call):
            lock_name = self.module.is_named_lock_call(expr)
            if lock_name is not None:
                return _Resolved("lock", lock=lock_name)
            return None
        if not isinstance(expr, ast.Attribute):
            return None
        base = self._resolve(expr.value)
        if base is None:
            return None
        if base.kind == "object":
            klass = self.project.resolve_class(base.class_name)
            if klass is None:
                return None
            lock = self.project.lock_attr_of(klass, expr.attr)
            if lock is not None:
                return _Resolved("lock", lock=lock)
            return _Resolved(
                "attr",
                class_name=klass.name,
                attr=expr.attr,
                fresh=base.fresh,
            )
        if base.kind == "attr":
            owner = self.project.resolve_class(base.class_name)
            if owner is None:
                return None
            type_name = self.project.attr_type_of(owner, base.attr)
            middle = self.project.resolve_class(type_name)
            if middle is None:
                return None
            lock = self.project.lock_attr_of(middle, expr.attr)
            if lock is not None:
                return _Resolved("lock", lock=lock)
            return _Resolved(
                "attr",
                class_name=middle.name,
                attr=expr.attr,
                fresh=base.fresh,
            )
        return None

    def _lock_name(self, expr: ast.expr) -> str | None:
        resolved = self._resolve(expr)
        if resolved is not None and resolved.kind == "lock":
            return resolved.lock
        return None

    # ------------------------------------------------------- recording
    def _record_write(
        self, resolved: _Resolved, node: ast.AST, held: tuple[str, ...]
    ) -> None:
        if resolved.fresh:
            return  # freshly constructed: not shared yet
        self.summary.writes.append(
            WriteSite(
                owner=resolved.class_name,
                attr=resolved.attr,
                held=held,
                node=node,
                summary=self.summary,
            )
        )

    def _record_acquire(
        self, lock: str, held: tuple[str, ...], node: ast.AST
    ) -> None:
        self.summary.acquires.append(
            AcquireSite(
                lock=lock, held_before=held, node=node,
                summary=self.summary,
            )
        )

    def _write_target(
        self, target: ast.expr, held: tuple[str, ...], value: ast.expr | None
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element, held, None)
            return
        if isinstance(target, ast.Starred):
            self._write_target(target.value, held, None)
            return
        if isinstance(target, ast.Name):
            self._bind_local(target.id, value)
            return
        if isinstance(target, ast.Subscript):
            resolved = self._resolve(target.value)
            if resolved is not None and resolved.kind == "attr":
                self._record_write(resolved, target, held)
            return
        if not isinstance(target, ast.Attribute):
            return
        base = self._resolve(target.value)
        if base is None:
            return
        if base.kind == "object":
            klass = self.project.resolve_class(base.class_name)
            if klass is not None and not base.fresh:
                self._record_write(
                    _Resolved(
                        "attr", class_name=klass.name, attr=target.attr
                    ),
                    target,
                    held,
                )
            return
        if base.kind == "attr":
            owner = self.project.resolve_class(base.class_name)
            type_name = (
                self.project.attr_type_of(owner, base.attr)
                if owner is not None
                else None
            )
            middle = self.project.resolve_class(type_name)
            if middle is not None:
                # x.a.b = ... with a typed: a write to the inner class.
                self._record_write(
                    _Resolved(
                        "attr",
                        class_name=middle.name,
                        attr=target.attr,
                        fresh=base.fresh,
                    ),
                    target,
                    held,
                )
            else:
                # x.a.b = ... with a untyped: mutates the object in a.
                self._record_write(base, target, held)

    def _bind_local(self, name: str, value: ast.expr | None) -> None:
        self.locals.pop(name, None)
        if value is None:
            return
        lock_name = self.module.is_named_lock_call(value)
        if lock_name is not None:
            self.locals[name] = _Resolved("lock", lock=lock_name)
            return
        if isinstance(value, ast.Call):
            type_name = _type_name(value.func)
            if self.project.resolve_class(type_name) is not None:
                assert type_name is not None
                self.locals[name] = _Resolved(
                    "object", class_name=type_name, fresh=True
                )
            return
        if isinstance(value, (ast.Name, ast.Attribute)):
            resolved = self._resolve(value)
            if resolved is not None:
                if resolved.kind == "attr":
                    # Keep the alias as the attr location so mutating
                    # calls through it attribute to the owner.
                    self.locals[name] = resolved
                else:
                    self.locals[name] = resolved

    # --------------------------------------------------------- calls
    def _scan_calls(self, node: ast.AST, held: tuple[str, ...]) -> None:
        """Record method calls / container mutations in expressions."""
        for call in self._calls_in(node):
            self._handle_call(call, held)

    def _calls_in(self, node: ast.AST) -> list[ast.Call]:
        calls: list[ast.Call] = []
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and current is not node:
                continue  # nested defs are walked separately
            if isinstance(current, ast.Call):
                calls.append(current)
            for child in ast.iter_child_nodes(current):
                stack.append(child)
        return calls

    def _handle_call(self, call: ast.Call, held: tuple[str, ...]) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "next" and call.args:
                resolved = self._resolve(call.args[0])
                if resolved is not None and resolved.kind == "attr":
                    self._record_write(resolved, call, held)
                return
            klass = self.project.resolve_class(func.id)
            if klass is not None and "__init__" in klass.methods:
                self.summary.calls.append(
                    CallSite(
                        target_class=klass.name,
                        target_method="__init__",
                        held=held,
                        node=call,
                        same_class=False,
                        summary=self.summary,
                    )
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        receiver = self._resolve(func.value)
        if receiver is None:
            return
        if receiver.kind == "lock":
            return  # acquire()/release() handled at statement level
        if receiver.kind == "object":
            klass = self.project.resolve_class(receiver.class_name)
            if klass is None:
                return
            found = self.project.find_method(klass, method)
            if found is not None:
                same = (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                )
                self.summary.calls.append(
                    CallSite(
                        target_class=found[0].name,
                        target_method=method,
                        held=held,
                        node=call,
                        same_class=same,
                        summary=self.summary,
                    )
                )
            return
        # receiver.kind == "attr": a call on an attribute's value.
        owner = self.project.resolve_class(receiver.class_name)
        type_name = (
            self.project.attr_type_of(owner, receiver.attr)
            if owner is not None
            else None
        )
        target = self.project.resolve_class(type_name)
        if target is not None:
            found = self.project.find_method(target, method)
            if found is not None:
                self.summary.calls.append(
                    CallSite(
                        target_class=found[0].name,
                        target_method=method,
                        held=held,
                        node=call,
                        same_class=False,
                        summary=self.summary,
                    )
                )
                return
        if method in MUTATING_METHODS:
            self._record_write(receiver, call, held)

    # ----------------------------------------------------- statements
    def walk(self) -> None:
        self._walk_body(list(self.summary.node.body), ())

    def _acquire_release_lock(
        self, stmt: ast.stmt, method: str
    ) -> str | None:
        if not isinstance(stmt, ast.Expr):
            return None
        call = stmt.value
        if not isinstance(call, ast.Call):
            return None
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr != method:
            return None
        return self._lock_name(func.value)

    def _walk_body(
        self, body: list[ast.stmt], held: tuple[str, ...]
    ) -> None:
        index = 0
        while index < len(body):
            stmt = body[index]
            lock = self._acquire_release_lock(stmt, "acquire")
            if lock is not None and index + 1 < len(body):
                nxt = body[index + 1]
                if isinstance(nxt, ast.Try) and any(
                    self._acquire_release_lock(final, "release") == lock
                    for final in nxt.finalbody
                ):
                    self._record_acquire(lock, held, stmt)
                    inner = held if lock in held else held + (lock,)
                    self._walk_body(nxt.body, inner)
                    for handler in nxt.handlers:
                        self._walk_body(handler.body, inner)
                    self._walk_body(nxt.orelse, inner)
                    self._walk_body(nxt.finalbody, held)
                    index += 2
                    continue
            self._walk_stmt(stmt, held)
            index += 1

    def _walk_stmt(self, stmt: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                lock = self._lock_name(item.context_expr)
                if lock is not None:
                    self._record_acquire(lock, inner, item.context_expr)
                    if lock not in inner:
                        inner = inner + (lock,)
                    if isinstance(item.optional_vars, ast.Name):
                        self.locals[item.optional_vars.id] = _Resolved(
                            "lock", lock=lock
                        )
                else:
                    self._scan_calls(item.context_expr, held)
                    if isinstance(item.optional_vars, ast.Name):
                        self.locals.pop(item.optional_vars.id, None)
            self._walk_body(list(stmt.body), inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, possibly without the locks the
            # definition site holds: analyze it with nothing held.
            self._walk_body(list(stmt.body), ())
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._write_target(target, held, stmt.value)
            self._scan_calls(stmt.value, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._write_target(stmt.target, held, None)
            self._scan_calls(stmt.value, held)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._write_target(stmt.target, held, stmt.value)
            if stmt.value is not None:
                self._scan_calls(stmt.value, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._write_target(target, held, None)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_calls(stmt.test, held)
            self._walk_body(list(stmt.body), held)
            self._walk_body(list(stmt.orelse), held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_calls(stmt.iter, held)
            if isinstance(stmt.target, ast.Name):
                self.locals.pop(stmt.target.id, None)
            self._walk_body(list(stmt.body), held)
            self._walk_body(list(stmt.orelse), held)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(list(stmt.body), held)
            for handler in stmt.handlers:
                self._walk_body(list(handler.body), held)
            self._walk_body(list(stmt.orelse), held)
            self._walk_body(list(stmt.finalbody), held)
            return
        # Leaf statements: Expr, Return, Raise, Assert, ...
        self._scan_calls(stmt, held)


def summarize_methods(project: Project) -> dict[tuple[str, str], MethodSummary]:
    """Pass 2 over every method of every class in the project."""
    summaries: dict[tuple[str, str], MethodSummary] = {}
    for module in project.modules:
        for klass in module.classes.values():
            if klass.name in project.ambiguous:
                continue
            for name, node in klass.methods.items():
                summary = MethodSummary(klass=klass, name=name, node=node)
                _MethodWalker(project, summary).walk()
                summaries[summary.key] = summary
        # Module-level functions (recovery, harnesses): walked under a
        # per-module pseudo-class so their writes through typed
        # parameters are checked like everything else.
        functions = [
            stmt
            for stmt in module.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if functions:
            pseudo = ClassModel(
                name=f"<{module.rel}>", module=module, node=module.tree
            )
            for node in functions:
                summary = MethodSummary(
                    klass=pseudo, name=node.name, node=node
                )
                _MethodWalker(project, summary).walk()
                summaries[summary.key] = summary
    return summaries


def compute_entry_held(
    summaries: dict[tuple[str, str], MethodSummary],
    lock_universe: set[str],
) -> dict[tuple[str, str], frozenset[str]]:
    """Locks guaranteed held on entry to each *private* method.

    The "lock acquired in the caller, write in the callee" rule: a
    private method's entry-held set is the intersection, over every
    same-class call site, of the locks lexically held there plus the
    caller's own entry-held set.  A public method (or a private one
    nobody calls) is assumed entered with nothing held.  Computed as a
    greatest fixpoint so helper chains (``store`` -> ``_make_room`` ->
    ``_remove``) converge.
    """
    sites: dict[tuple[str, str], list[CallSite]] = {}
    for summary in summaries.values():
        for call in summary.calls:
            if not call.same_class:
                continue
            key = (call.target_class, call.target_method)
            target = summaries.get(key)
            if target is None or not target.is_private:
                continue
            sites.setdefault(key, []).append(call)

    top = frozenset(lock_universe)
    entry: dict[tuple[str, str], frozenset[str]] = {}
    for key, summary in summaries.items():
        if summary.is_private and key in sites:
            entry[key] = top
        else:
            entry[key] = frozenset()

    changed = True
    while changed:
        changed = False
        for key, call_sites in sites.items():
            combined: frozenset[str] | None = None
            for call in call_sites:
                caller_entry = entry.get(call.summary.key, frozenset())
                held = frozenset(call.held) | caller_entry
                combined = held if combined is None else combined & held
            new_value = combined if combined is not None else frozenset()
            if new_value != entry[key]:
                entry[key] = new_value
                changed = True
    return entry
