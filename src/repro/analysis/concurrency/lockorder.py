"""The static lock-acquisition-order graph and its cycle check.

A deadlock needs two locks taken in both orders by two threads; the
static defense is a global *acquisition-order graph* over the named
lock roles: an edge ``A -> B`` means some code path can acquire ``B``
while holding ``A``.  If the graph is acyclic, a consistent global
order exists and the classic ABBA deadlock cannot happen; a cycle is
``FP404``.

Edges come from two places:

* **Lexical nesting** — a ``with`` block (or try/finally acquire)
  inside another lock's scope adds ``outer -> inner``, including locks
  guaranteed held on entry to a private helper (the same entry-held
  fixpoint the guarded-write check uses).

* **Calls** — acquiring a lock *transitively* counts: for every
  resolved call site, each lock held at the site gets an edge to every
  lock the callee can acquire anywhere downstream (a fixpoint over the
  typed call graph).  This is what makes the static graph a superset
  of anything the runtime :class:`repro.locking.LockOrderSanitizer`
  can observe — the property the integration test asserts via
  :meth:`~repro.locking.LockOrderSanitizer.assert_consistent_with`.

Same-name re-acquisition is skipped: named locks are reentrant by
role, so ``proxy.cache -> proxy.cache`` is not an edge.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

from repro.analysis.diagnostics import SourceSpan
from repro.analysis.concurrency.model import (
    MethodSummary,
    Project,
    build_project,
    compute_entry_held,
    summarize_methods,
)


@dataclass(frozen=True)
class LockEdge:
    """One ``outer -> inner`` acquisition edge with a witness site."""

    outer: str
    inner: str
    span: SourceSpan


@dataclass
class LockGraph:
    """The acquisition-order graph over named lock roles."""

    edges: dict[tuple[str, str], LockEdge] = field(default_factory=dict)
    cycles: list[list[str]] = field(default_factory=list)

    def edge_set(self) -> set[tuple[str, str]]:
        """Bare ``(outer, inner)`` pairs — what the runtime sanitizer's
        ``assert_consistent_with`` consumes."""
        return set(self.edges)

    def render(self) -> str:
        if not self.edges:
            return "lock-order graph: no edges"
        lines = ["lock-order graph:"]
        for (outer, inner), edge in sorted(self.edges.items()):
            lines.append(f"  {outer} -> {inner}    [{edge.span}]")
        for cycle in self.cycles:
            lines.append("  CYCLE: " + " -> ".join(cycle + cycle[:1]))
        return "\n".join(lines)


def _span_for(summary: MethodSummary, node: ast.AST) -> SourceSpan:
    module = summary.klass.module
    start, end, line, column, snippet = module.span_args(node)
    return SourceSpan(
        source=module.path.as_posix(),
        start=start,
        end=end,
        line=line,
        column=column,
        snippet=snippet,
    )


def transitive_acquires(
    summaries: dict[tuple[str, str], MethodSummary],
) -> dict[tuple[str, str], frozenset[str]]:
    """Every lock a method can acquire, directly or via callees."""
    acquired: dict[tuple[str, str], set[str]] = {
        key: {site.lock for site in summary.acquires}
        for key, summary in summaries.items()
    }
    changed = True
    while changed:
        changed = False
        for key, summary in summaries.items():
            current = acquired[key]
            before = len(current)
            for call in summary.calls:
                callee = acquired.get(
                    (call.target_class, call.target_method)
                )
                if callee:
                    current.update(callee)
            if len(current) != before:
                changed = True
    return {key: frozenset(locks) for key, locks in acquired.items()}


def build_graph(
    summaries: dict[tuple[str, str], MethodSummary],
    entry_held: dict[tuple[str, str], frozenset[str]],
) -> LockGraph:
    """Collect edges from every acquisition and call site."""
    graph = LockGraph()
    downstream = transitive_acquires(summaries)

    def add_edge(outer: str, inner: str, summary: MethodSummary,
                 node: ast.AST) -> None:
        if outer == inner:
            return
        key = (outer, inner)
        if key not in graph.edges:
            graph.edges[key] = LockEdge(
                outer=outer, inner=inner, span=_span_for(summary, node)
            )

    for key, summary in sorted(summaries.items()):
        base = entry_held.get(key, frozenset())
        for acquire in summary.acquires:
            for outer in sorted(base | set(acquire.held_before)):
                add_edge(outer, acquire.lock, summary, acquire.node)
        for call in summary.calls:
            callee = downstream.get(
                (call.target_class, call.target_method)
            )
            if not callee:
                continue
            for outer in sorted(base | set(call.held)):
                for inner in sorted(callee):
                    add_edge(outer, inner, summary, call.node)

    graph.cycles = _find_cycles(set(graph.edges))
    return graph


def _find_cycles(edges: set[tuple[str, str]]) -> list[list[str]]:
    """Strongly connected components with more than one lock."""
    adjacency: dict[str, list[str]] = {}
    nodes: set[str] = set()
    for outer, inner in edges:
        adjacency.setdefault(outer, []).append(inner)
        nodes.update((outer, inner))
    for neighbors in adjacency.values():
        neighbors.sort()

    # Iterative Tarjan SCC.
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(nodes):
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            neighbors = adjacency.get(node, [])
            advanced = False
            while child_index < len(neighbors):
                child = neighbors[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    cycles: list[list[str]] = []
    for component in sorted(sccs):
        cycles.append(_order_cycle(component, adjacency))
    return cycles


def _order_cycle(
    component: list[str], adjacency: dict[str, list[str]]
) -> list[str]:
    """A concrete cycle through the component, deterministically."""
    members = set(component)
    start = component[0]
    path = [start]
    seen = {start}
    node = start
    while True:
        neighbors = [
            n for n in adjacency.get(node, []) if n in members
        ]
        next_node = None
        for candidate in neighbors:
            if candidate == start and len(path) > 1:
                return path
            if candidate not in seen:
                next_node = candidate
                break
        if next_node is None:
            # Fall back: close on the first in-component neighbor.
            return path
        path.append(next_node)
        seen.add(next_node)
        node = next_node


def build_lock_graph(paths: list[pathlib.Path]) -> LockGraph:
    """The static lock-order graph for the files under ``paths``."""
    project = build_project(paths)
    summaries = summarize_methods(project)
    entry = compute_entry_held(summaries, set(project.lock_names))
    return build_graph(summaries, entry)
