"""CLI for the concurrency-safety analyzer.

Usage::

    python -m repro.analysis.concurrency [--strict] [--json] [--graph]
                                         [paths...]

``paths`` defaults to ``src/repro`` (resolved against the current
directory, falling back to the installed package's source).  Exits 1
when any error-severity diagnostic is found — or, with ``--strict``,
when any warning is found either (CI runs strict so stale
registrations cannot accumulate).  ``--graph`` prints the static
lock-acquisition-order graph after the report.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.concurrency.checker import analyze_concurrency


def _default_paths() -> list[pathlib.Path]:
    candidate = pathlib.Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    package = pathlib.Path(__file__).resolve().parents[2]
    return [package]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.concurrency",
        description="guarded-state and lock-order analysis (FP4xx)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (FP406) as fatal",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as a JSON document instead of text",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="also print the static lock-acquisition-order graph",
    )
    options = parser.parse_args(argv)
    paths = list(options.paths) or _default_paths()
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    report, graph = analyze_concurrency(paths)
    if options.json:
        document = report.to_dict()
        document["lock_order_edges"] = [
            list(edge) for edge in sorted(graph.edge_set())
        ]
        document["lock_order_cycles"] = [list(c) for c in graph.cycles]
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(report.render())
        if options.graph:
            print(graph.render())

    if report.has_errors:
        return 1
    if options.strict and report.warnings:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
