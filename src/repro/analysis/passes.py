"""The domain analysis passes.

Each pass inspects one registered artifact — a function template, a
query template, or an info file — and emits :class:`Diagnostic` objects
into a shared :class:`PassContext`.  Passes never raise on bad input:
the point of the analyzer is to report *all* problems of an artifact at
once, where the constructors in :mod:`repro.templates` fail fast on the
first.

The pipeline entry points live in :mod:`repro.analysis.analyzer`; this
module holds the individual checks and the expression-walking helpers
they share.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Iterator, Protocol

from repro.analysis.codes import severity_of
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    SourceSpan,
    span_at,
    span_of,
)
from repro.relational.expressions import (
    SCALAR_BUILTINS,
    Expression,
    FuncCall,
)
from repro.sqlparser.ast import FunctionSource, Parameter, SelectStatement
from repro.sqlparser.parser import parse_expression
from repro.templates.function_template import FunctionTemplate, Shape
from repro.templates.info_file import TemplateInfoFile
from repro.templates.query_template import QueryTemplate


class FunctionCatalog(Protocol):
    """What determinism checks need from a UDF registry."""

    def has_scalar(self, name: str) -> bool: ...

    def has_table(self, name: str) -> bool: ...

    def is_deterministic(self, name: str) -> bool: ...


@dataclass
class PassContext:
    """Shared state of one analysis run over one artifact.

    ``text``/``source`` anchor spans when the artifact has a textual
    form at hand (template XML, query SQL); passes that find nothing to
    anchor emit span-less diagnostics.
    """

    subject: str
    text: str = ""
    source: str = ""
    registry: FunctionCatalog | None = None
    report: AnalysisReport = field(default_factory=AnalysisReport)

    def emit(
        self,
        code: str,
        message: str,
        span: SourceSpan | None = None,
        hint: str = "",
        severity: Severity | None = None,
    ) -> None:
        self.report.add(
            Diagnostic(
                code=code,
                severity=severity if severity is not None else severity_of(
                    code
                ),
                message=message,
                subject=self.subject,
                span=span,
                hint=hint,
            )
        )

    def span(self, needle: str) -> SourceSpan | None:
        """Best-effort span of ``needle`` in the artifact's text."""
        if not self.text:
            return None
        return span_of(self.text, needle, self.source or self.subject)


# ------------------------------------------------------------------ walking
def iter_expression_nodes(expr: Expression) -> Iterator[Expression]:
    """Every node of an expression tree, root first."""
    yield expr
    for attr in vars(expr).values():
        if isinstance(attr, Expression):
            yield from iter_expression_nodes(attr)
        elif isinstance(attr, tuple):
            for element in attr:
                if isinstance(element, Expression):
                    yield from iter_expression_nodes(element)


def parameter_refs(expr: Expression) -> set[str]:
    """All ``$``-parameter names referenced by ``expr``."""
    return {
        node.name
        for node in iter_expression_nodes(expr)
        if isinstance(node, Parameter)
    }


def function_calls(expr: Expression) -> list[FuncCall]:
    """All scalar function calls inside ``expr``."""
    return [
        node
        for node in iter_expression_nodes(expr)
        if isinstance(node, FuncCall)
    ]


def region_expressions(template: FunctionTemplate) -> list[Expression]:
    """Every expression that shapes the template's region."""
    exprs: list[Expression] = []
    exprs.extend(template.center_exprs)
    if template.radius_expr is not None:
        exprs.append(template.radius_expr)
    exprs.extend(template.low_exprs)
    exprs.extend(template.high_exprs)
    for spec in template.halfspace_specs:
        exprs.extend(spec.normal)
        exprs.append(spec.offset)
    return exprs


def statement_expressions(statement: SelectStatement) -> list[Expression]:
    """Every expression of a statement the scalar-determinism pass scans."""
    exprs: list[Expression] = [
        item.expression for item in statement.select_items
    ]
    if isinstance(statement.source, FunctionSource):
        exprs.extend(statement.source.args)
    for join in statement.joins:
        exprs.append(join.condition)
    if statement.where is not None:
        exprs.append(statement.where)
    exprs.extend(statement.group_by)
    exprs.extend(item.expression for item in statement.order_by)
    return exprs


# ------------------------------------------- function template (semantics)
def check_region_parameter_binding(
    template: FunctionTemplate, ctx: PassContext
) -> None:
    """FP107 / FP108: region expressions vs. declared parameters."""
    declared = set(template.params)
    referenced: set[str] = set()
    for expr in region_expressions(template):
        referenced |= parameter_refs(expr)
    for name in sorted(referenced - declared):
        ctx.emit(
            "FP107",
            f"region expression references ${name}, which is not a "
            f"declared parameter of {template.name}",
            span=ctx.span(f"${name}"),
            hint=f"add {name!r} to the template's <Params>",
        )
    for name in sorted(declared - referenced):
        ctx.emit(
            "FP108",
            f"parameter {name!r} is declared but no region expression "
            "uses it; every binding of it selects the same region",
            span=ctx.span(name),
            hint="drop the parameter or use it in a region expression",
        )


def check_point_expressions(
    template: FunctionTemplate, ctx: PassContext
) -> None:
    """FP109: point expressions range over result attributes only."""
    for expr in template.point_exprs:
        for name in sorted(parameter_refs(expr)):
            ctx.emit(
                "FP109",
                f"point expression {expr.to_sql()} references ${name}; "
                "point expressions must be computable from a result "
                "tuple alone (paper property 4)",
                span=ctx.span(f"${name}"),
                hint="rewrite the point expression over result columns",
            )


def check_expression_determinism(
    template: FunctionTemplate, ctx: PassContext
) -> None:
    """FP110 / FP111: scalar calls in template expressions.

    Builtins (:data:`SCALAR_BUILTINS`) are all deterministic; a
    registered UDF is checked against its declared determinism flag;
    an unknown function is flagged as a warning — it would fail at
    evaluation time anyway, but the analyzer says so up front.
    """
    exprs = region_expressions(template) + list(template.point_exprs)
    seen: set[str] = set()
    for expr in exprs:
        for call in function_calls(expr):
            key = call.name.lower()
            if key in seen or key in SCALAR_BUILTINS:
                continue
            seen.add(key)
            registry = ctx.registry
            if registry is not None and registry.has_scalar(call.name):
                if not registry.is_deterministic(call.name):
                    ctx.emit(
                        "FP110",
                        f"template expression calls {call.name}, which is "
                        "registered as non-deterministic "
                        "(paper property 1)",
                        span=ctx.span(call.name),
                        hint="region expressions must be deterministic",
                    )
            else:
                ctx.emit(
                    "FP111",
                    f"template expression calls unknown scalar function "
                    f"{call.name}; determinism cannot be verified",
                    span=ctx.span(call.name),
                    hint="register the function or use a builtin",
                )


FUNCTION_TEMPLATE_PASSES = (
    check_region_parameter_binding,
    check_point_expressions,
    check_expression_determinism,
)


# ------------------------------------------- function template (XML layer)
_SHAPE_ELEMENTS = {
    Shape.HYPERSPHERE: ("CenterCoordinate", "Radius"),
    Shape.HYPERRECT: ("LowBound", "HighBound"),
    Shape.POLYTOPE: ("LowBound", "HighBound", "Halfspaces"),
}


def _offset_of(text: str, line: int, column: int) -> int:
    """Character offset of a 1-based (line, column) position."""
    lines = text.split("\n")
    offset = sum(len(item) + 1 for item in lines[: line - 1])
    return offset + max(0, column)


def _check_expr_container(
    root: ET.Element,
    tag: str,
    expected: int | None,
    ctx: PassContext,
    required: bool,
    parent_label: str = "",
) -> None:
    """Shared FP102 / FP105 / FP106 logic for one ``<Expr>`` container."""
    container = root.find(tag)
    label = f"{parent_label}<{tag}>" if parent_label else f"<{tag}>"
    if container is None:
        if required:
            ctx.emit(
                "FP102",
                f"missing {label} element",
                span=ctx.span(f"<{root.tag}") if ctx.text else None,
                hint=f"declare {label} with one <Expr> per dimension",
            )
        return
    exprs = container.findall("Expr")
    if expected is not None and len(exprs) != expected:
        ctx.emit(
            "FP105",
            f"{label} has {len(exprs)} <Expr> element(s), expected "
            f"{expected} (one per dimension)",
            span=ctx.span(f"<{tag}>"),
            hint="match the expression count to <NumDimensions>",
        )
    for child in exprs:
        text = (child.text or "").strip()
        if not text:
            ctx.emit(
                "FP102",
                f"empty <Expr> inside {label}",
                span=ctx.span(f"<{tag}>"),
            )
            continue
        try:
            parse_expression(text)
        except Exception as exc:
            ctx.emit(
                "FP106",
                f"cannot parse expression {text!r} in {label}: {exc}",
                span=ctx.span(text),
            )


def analyze_function_template_text(ctx: PassContext) -> None:
    """The structural pass pipeline over raw function-template XML.

    Emits FP101–FP106 structural findings with spans into the XML, and
    — when the document is structurally sound — constructs the template
    and runs the semantic passes (FP107–FP111) over it.
    """
    text = ctx.text
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        line, column = exc.position
        offset = _offset_of(text, line, column)
        ctx.emit(
            "FP101",
            f"template XML is not well-formed: {exc}",
            span=span_at(
                text, offset, offset + 1, ctx.source or ctx.subject
            ),
        )
        return
    if root.tag != "FunctionTemplate":
        ctx.emit(
            "FP102",
            f"expected root element <FunctionTemplate>, got <{root.tag}>",
            span=ctx.span(f"<{root.tag}"),
        )
        return

    def text_of(tag: str) -> str | None:
        element = root.find(tag)
        if element is None or not (element.text or "").strip():
            return None
        return (element.text or "").strip()

    name = text_of("Name")
    if name is None:
        ctx.emit("FP102", "missing or empty <Name> element")
    else:
        ctx.subject = name
    if root.find("Params") is None:
        ctx.emit(
            "FP102",
            "missing <Params> element",
            hint="declare the function's parameters, one <Param> each",
        )

    shape: Shape | None = None
    shape_text = text_of("Shape")
    if shape_text is None:
        ctx.emit("FP102", "missing or empty <Shape> element")
    else:
        try:
            shape = Shape(shape_text)
        except ValueError:
            known = ", ".join(s.value for s in Shape)
            ctx.emit(
                "FP103",
                f"unknown shape {shape_text!r}; expected one of {known}",
                span=ctx.span(shape_text),
            )

    dims: int | None = None
    dims_text = text_of("NumDimensions")
    if dims_text is None:
        ctx.emit("FP102", "missing or empty <NumDimensions> element")
    else:
        try:
            dims = int(dims_text)
        except ValueError:
            dims = None
        if dims is None or dims < 1:
            ctx.emit(
                "FP104",
                f"<NumDimensions> must be a positive integer, "
                f"got {dims_text!r}",
                span=ctx.span(dims_text),
            )
            dims = None

    _check_expr_container(root, "PointCoordinate", dims, ctx, required=True)
    if shape is not None:
        needed = _SHAPE_ELEMENTS[shape]
        if "CenterCoordinate" in needed:
            _check_expr_container(
                root, "CenterCoordinate", dims, ctx, required=True
            )
        if "Radius" in needed:
            radius_text = text_of("Radius")
            if radius_text is None:
                ctx.emit(
                    "FP102",
                    "hypersphere template is missing <Radius>",
                )
            else:
                try:
                    parse_expression(radius_text)
                except Exception as exc:
                    ctx.emit(
                        "FP106",
                        f"cannot parse radius expression "
                        f"{radius_text!r}: {exc}",
                        span=ctx.span(radius_text),
                    )
        if "LowBound" in needed:
            _check_expr_container(root, "LowBound", dims, ctx, required=True)
            _check_expr_container(root, "HighBound", dims, ctx, required=True)
        if "Halfspaces" in needed:
            faces = root.find("Halfspaces")
            if faces is None or not faces.findall("Halfspace"):
                ctx.emit(
                    "FP102",
                    "polytope template needs <Halfspaces> with at least "
                    "one <Halfspace>",
                )
            else:
                for face in faces.findall("Halfspace"):
                    _check_expr_container(
                        face, "Normal", dims, ctx,
                        required=True, parent_label="<Halfspace>",
                    )
                    offset_el = face.find("Offset")
                    if offset_el is None or not (
                        (offset_el.text or "").strip()
                    ):
                        ctx.emit(
                            "FP102", "<Halfspace> is missing <Offset>",
                        )

    if ctx.report.has_errors:
        return
    try:
        template = FunctionTemplate.from_xml(text)
    except Exception as exc:  # a structural case the checks above missed
        ctx.emit("FP102", f"template cannot be constructed: {exc}")
        return
    for semantic_pass in FUNCTION_TEMPLATE_PASSES:
        semantic_pass(template, ctx)


# --------------------------------------------------------- query templates
def _select_list_span(ctx: PassContext) -> SourceSpan | None:
    """The span of the select list in the template's SQL text."""
    if not ctx.text:
        return None
    lowered = ctx.text.lower()
    start = lowered.find("select")
    stop = lowered.find(" from ")
    if start < 0 or stop < 0 or stop <= start:
        return None
    return span_at(
        ctx.text, start, stop, ctx.source or ctx.subject
    )


def check_from_clause(template: QueryTemplate, ctx: PassContext) -> bool:
    """FP202 / FP203 / FP204: the spatial-region-selection property.

    Returns False when the FROM clause is not even a function call, in
    which case the downstream passes have nothing to inspect.
    """
    source = template.statement.source
    if not isinstance(source, FunctionSource):
        ctx.emit(
            "FP202",
            "FROM must call a table-valued function "
            "(spatial region selection semantics, paper property 2)",
            span=ctx.span(source.to_sql()),
            hint="the FROM clause must be fTemplate($params...)",
        )
        return False
    declared = template.function_template
    if source.name.lower() != declared.name.lower():
        ctx.emit(
            "FP203",
            f"FROM calls {source.name!r} but the function template is "
            f"for {declared.name!r}",
            span=ctx.span(source.name),
        )
    if len(source.args) != len(declared.params):
        ctx.emit(
            "FP204",
            f"{source.name} takes {len(declared.params)} arguments, "
            f"the template passes {len(source.args)}",
            span=ctx.span(source.name),
        )
    return True


def check_joins(template: QueryTemplate, ctx: PassContext) -> None:
    """FP205: semantics-preserving joins (paper property 3)."""
    for join in template.statement.joins:
        if not QueryTemplate._is_semantics_preserving_join(join.condition):
            ctx.emit(
                "FP205",
                f"join ON {join.condition.to_sql()} is not a plain "
                "equi-join (semantics-preserving join, paper property 3)",
                span=ctx.span("JOIN"),
                hint="joins may only filter or expand tuples via "
                "column = column",
            )


def check_select_list(template: QueryTemplate, ctx: PassContext) -> None:
    """FP206 / FP207: result attribute availability (paper property 4)."""
    statement = template.statement
    if statement.star:
        return
    available = {
        item.output_name().lower() for item in statement.select_items
    }
    for item in statement.select_items:
        name = item.output_name().lower()
        if "." in name:
            available.add(name.split(".")[-1])
    needed = {
        name.split(".")[-1]
        for name in template.function_template.point_attribute_names()
    }
    missing = sorted(needed - available)
    if missing:
        ctx.emit(
            "FP206",
            f"point attribute(s) {', '.join(missing)} not in the select "
            "list (result attribute availability, paper property 4)",
            span=_select_list_span(ctx),
            hint="select every column the point expressions read, so "
            "cached tuples can be re-evaluated spatially",
        )
    if template.key_column.lower() not in available:
        ctx.emit(
            "FP207",
            f"key column {template.key_column!r} not in the select list",
            span=_select_list_span(ctx),
            hint="the key column deduplicates merged results",
        )


def check_top(template: QueryTemplate, ctx: PassContext) -> None:
    """FP208: TOP-N templates produce truncated region answers."""
    if template.statement.top is not None:
        ctx.emit(
            "FP208",
            f"TOP {template.statement.top} truncates region answers; "
            "cached results serve exact-match reuse only",
            span=ctx.span("TOP"),
        )


def check_against_registry(
    template: QueryTemplate, ctx: PassContext
) -> None:
    """FP209 / FP210 / FP211: determinism (paper property 1).

    Needs a function registry; without one the pass is skipped (the
    proxy re-checks determinism per query anyway and tunnels when in
    doubt).  Partial registries — e.g. the HTTP proxy's remote-origin
    stub, which only answers ``is_deterministic`` — get only the checks
    they can answer.
    """
    registry = ctx.registry
    if registry is None:
        return
    has_table = getattr(registry, "has_table", None)
    has_scalar = getattr(registry, "has_scalar", None)
    source = template.statement.source
    if isinstance(source, FunctionSource) and callable(has_table):
        if not has_table(source.name):
            ctx.emit(
                "FP209",
                f"function {source.name!r} is not registered at the "
                "origin",
                span=ctx.span(source.name),
            )
        elif not registry.is_deterministic(source.name):
            ctx.emit(
                "FP210",
                f"function {source.name!r} is non-deterministic and "
                "cannot be actively cached (paper property 1)",
                span=ctx.span(source.name),
            )
    if not callable(has_scalar):
        return
    seen: set[str] = set()
    for expr in statement_expressions(template.statement):
        for call in function_calls(expr):
            key = call.name.lower()
            if key in seen or key in SCALAR_BUILTINS:
                continue
            seen.add(key)
            if has_scalar(call.name):
                if not registry.is_deterministic(call.name):
                    ctx.emit(
                        "FP211",
                        f"scalar function {call.name} in the query "
                        "template is non-deterministic "
                        "(paper property 1)",
                        span=ctx.span(call.name),
                    )
            else:
                ctx.emit(
                    "FP111",
                    f"query template calls unknown scalar function "
                    f"{call.name}; determinism cannot be verified",
                    span=ctx.span(call.name),
                )


def analyze_query_template_passes(
    template: QueryTemplate, ctx: PassContext
) -> None:
    """The full query-template pipeline (FP202–FP211)."""
    if not check_from_clause(template, ctx):
        return
    check_joins(template, ctx)
    check_select_list(template, ctx)
    check_top(template, ctx)
    check_against_registry(template, ctx)


# -------------------------------------------------------------- info files
def check_info_file(
    info: TemplateInfoFile,
    template: QueryTemplate | None,
    ctx: PassContext,
) -> None:
    """FP212 / FP213 / FP214: form-to-template binding consistency."""
    if template is None:
        ctx.emit(
            "FP212",
            f"info file {info.form_name!r} references unknown query "
            f"template {info.template_id!r}",
        )
        return
    declared = set(template.parameter_names)
    bound = set(info.field_map.values()) | set(info.defaults)
    for name in sorted(declared - bound):
        ctx.emit(
            "FP213",
            f"template parameter {name!r} has no form field and no "
            "default; every form submission would fail to bind",
            hint=f"map a form field to {name!r} or add a <Default>",
        )
    for name in sorted(set(info.field_map.values()) - declared):
        ctx.emit(
            "FP214",
            f"form field maps to {name!r}, which the query template "
            "does not declare",
            hint="stale field mapping? the value is silently ignored",
        )
