"""Custom AST lint rules enforcing repository invariants (FP3xx).

Invariants the generic tools cannot express:

* **FP301 — simulated time only.**  Experiment results must be
  reproducible, so nothing outside ``network/clock.py`` (the simulated
  clock) and ``obs/`` (real-wall-clock observability, explicitly about
  real time) may read the wall clock.  Code that legitimately needs a
  stopwatch imports :mod:`repro.obs.wallclock`.
* **FP302 — no float equality outside ``geometry/``.**  Region
  coordinates carry floating-point error; ``geometry/`` owns the
  epsilon discipline (``EPSILON``-tolerant comparisons) and everything
  else must go through it.  Comparing against a float literal with
  ``==``/``!=`` elsewhere is almost always a tolerance bug.
* **FP303 — typed error hierarchies.**  Inside ``templates/``,
  ``sqlparser/``, and ``relational/`` every raised exception must come
  from an ``errors`` module (the package's own or a lower layer's), so
  callers can catch one root type per layer.  ``NotImplementedError``
  (abstract methods) and ``AssertionError`` (unreachable guards) are
  idiomatic and allowed.
* **FP305 — seeded randomness only.**  Determinism (paper property 1
  and the fault subsystem's replay contract) dies the moment anything
  draws from Python's process-global random state: ``random.Random()``
  with no seed, module-level ``random.random()``-style calls, and bare
  ``from random import random`` calls are all forbidden outside test
  code.  Every legitimate use constructs ``random.Random(seed)`` with
  an explicit seed.
* **FP307 — atomic artifact writes.**  A plain ``open(path, "w")``
  (or ``Path.write_text`` / ``write_bytes``) leaves a truncated file
  behind if the process dies mid-write — exactly the torn state the
  persistence layer exists to survive.  Outside ``persistence/``
  (which owns the temp+rename discipline) every whole-file write must
  go through :func:`repro.persistence.atomic.atomic_write_text` /
  ``atomic_write_bytes``.  Append ("a") and update ("r+") modes are
  allowed: appends are the journal's own idiom and updates are
  in-place patches, not whole-file replacements.
* **FP308 — benchmarks report through BenchReporter.**  A bare
  ``print`` in a ``bench_*.py`` file is a result that escapes the
  unified bench schema: it reaches a terminal but never the
  ``*.bench.json`` documents the regression gate compares.  Benchmark
  modules must emit numbers via
  :class:`repro.perf.reporter.BenchReporter` (whose ``finish`` prints
  the one sanctioned summary table) and prose via ``record_result``.
* **FP309 — every lock has a name.**  The concurrency analyzer
  (:mod:`repro.analysis.concurrency`) reasons about locks by *role
  name* (``"proxy.cache"``, ``"persistence.journal"``, ...); a raw
  ``threading.Lock()`` / ``threading.RLock()`` is anonymous, so the
  guarded-write check cannot tie it to any ``guarded-by`` annotation
  and the lock-order graph cannot see it at all.  Outside
  ``repro/locking.py`` (which owns the one sanctioned constructor)
  every lock must be built with
  :func:`repro.locking.named_lock`.
* **FP310 — serve-path queues are bounded.**  The admission layer's
  whole premise is that backlog is a policy decision, not an accident
  of memory: a ``collections.deque`` without ``maxlen`` or a
  ``queue.Queue`` without ``maxsize`` in a serve-path module (the
  :data:`~repro.analysis.concurrency.SERVE_PATH_MODULES` set the
  concurrency analyzer pins) grows without bound under exactly the
  overload the proxy is supposed to shed.  ``queue.SimpleQueue``
  cannot be bounded at all and is always flagged there.
* **FP311 — flight-recorder events use pinned EV codes.**  The event
  timeline (:mod:`repro.obs.events`) is keyed by the stable
  ``EVENT_CODES`` registry, exactly like the FP diagnostic codes: a
  string-literal code outside the registry passed to ``emit`` /
  ``telemetry_event`` would raise at runtime on a real recorder — or
  worse, silently vanish into the null recorder on a disabled run.
  Codes must be the ``EV_*`` constants (or registry lookups such as
  ``BREAKER_EVENT_CODES[...]``).
* **FP312 — shard internals stay behind the router.**  The cluster
  package (:mod:`repro.cluster`) owns shard placement: the hash ring,
  the failover chain, and the warm-handoff codec are implementation
  details of the tier, and any module that imports
  ``repro.cluster.<submodule>`` directly is one refactor away from
  calling a shard that the ring no longer owns.  Outside
  ``repro/cluster/`` (and tests) only the package surface
  ``repro.cluster`` may be imported — shard-to-shard traffic must go
  through the :class:`~repro.cluster.router.ShardRouter`.
* **FP306 — spans are context managers.**  Calling
  ``Span.__enter__`` / ``Span.__exit__`` by hand breaks the tracer's
  open-span stack on any exception path (the span never pops, and
  every later span nests under a corpse).  ``with tracer.span(...)``
  is the only sanctioned form; the rule flags *any* manual
  ``.__enter__()`` / ``.__exit__()`` attribute call outside ``obs/``
  (where :class:`~repro.obs.instrument.QueryObservation` legitimately
  delegates its own context-manager protocol to its root span) and
  test code.

``run_lint`` walks Python files, applies every rule, and returns an
:class:`AnalysisReport`; ``tools/lint.py`` is the CI driver.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Callable, Iterator, Sequence

from repro.analysis.codes import severity_of
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    SourceSpan,
)

#: Wall-clock reading callables of the ``time`` module.
WALL_CLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Wall-clock reading methods of ``datetime.datetime`` / ``datetime.date``.
WALL_CLOCK_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Exceptions any package may raise regardless of hierarchy.
ALLOWED_BUILTIN_RAISES = frozenset(
    {"NotImplementedError", "AssertionError", "SystemExit"}
)

#: Packages whose raises must come from an errors module.
ERROR_HIERARCHY_PACKAGES = frozenset(
    {"templates", "sqlparser", "relational"}
)


def _repro_parts(path: pathlib.PurePath) -> tuple[str, ...]:
    """Path segments below the ``repro`` package, or () outside it."""
    parts = path.as_posix().split("/")
    if "repro" in parts:
        return tuple(parts[parts.index("repro") + 1:])
    return ()


def _node_span(
    node: ast.AST, text: str, source: str
) -> SourceSpan:
    """A span for an AST node, from its line/column position."""
    lines = text.split("\n")
    lineno = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    start = sum(len(line) + 1 for line in lines[: lineno - 1]) + col
    end_lineno = getattr(node, "end_lineno", lineno) or lineno
    end_col = getattr(node, "end_col_offset", col) or col
    end = sum(len(line) + 1 for line in lines[: end_lineno - 1]) + end_col
    snippet = text[start:end]
    if len(snippet) > 80:
        snippet = snippet[:77] + "..."
    return SourceSpan(
        source=source,
        start=start,
        end=max(start, end),
        line=lineno,
        column=col + 1,
        snippet=snippet,
    )


class ModuleUnderLint:
    """One parsed Python file plus the import aliases the rules need."""

    def __init__(self, path: pathlib.Path, text: str) -> None:
        self.path = path
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.repro_parts = _repro_parts(path)
        # module alias -> real module name ("import time as t")
        self.module_aliases: dict[str, str] = {}
        # bare name -> (module, original name) ("from time import time")
        self.imported_names: dict[str, tuple[str, str]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    self.imported_names[alias.asname or alias.name] = (
                        module,
                        alias.name,
                    )

    def diagnostic(
        self, code: str, message: str, node: ast.AST, hint: str = ""
    ) -> Diagnostic:
        source = self.path.as_posix()
        return Diagnostic(
            code=code,
            severity=severity_of(code),
            message=message,
            subject=source,
            span=_node_span(node, self.text, source),
            hint=hint,
        )


LintRule = Callable[[ModuleUnderLint], Iterator[Diagnostic]]


# ------------------------------------------------------------------- FP301
def _is_wall_clock_call(module: ModuleUnderLint, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        imported = module.imported_names.get(func.id)
        if imported is not None:
            origin_module, origin_name = imported
            if origin_module == "time" and (
                origin_name in WALL_CLOCK_TIME_FUNCS
            ):
                return True
            if origin_module == "datetime" and origin_name in (
                "datetime", "date"
            ):
                return False  # the class itself, not a clock read
        return False
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            real_module = module.module_aliases.get(value.id)
            if real_module == "time" and func.attr in WALL_CLOCK_TIME_FUNCS:
                return True
            # "from datetime import datetime; datetime.now()"
            imported = module.imported_names.get(value.id)
            if (
                imported is not None
                and imported[0] == "datetime"
                and func.attr in WALL_CLOCK_DATETIME_FUNCS
            ):
                return True
        # "import datetime; datetime.datetime.now()"
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and module.module_aliases.get(value.value.id) == "datetime"
            and func.attr in WALL_CLOCK_DATETIME_FUNCS
        ):
            return True
    return False


def wall_clock_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP301: wall-clock reads outside network/clock.py and obs/."""
    parts = module.repro_parts
    if parts and (parts[0] == "obs" or parts == ("network", "clock.py")):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and _is_wall_clock_call(module, node):
            yield module.diagnostic(
                "FP301",
                "wall-clock call; experiment code must use the simulated "
                "clock (repro.network.clock) or repro.obs.wallclock",
                node,
                hint="import Stopwatch from repro.obs.wallclock for "
                "real-time measurement",
            )


# ------------------------------------------------------------------- FP302
def _float_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.operand, ast.Constant
    ):
        return isinstance(node.operand.value, float)
    return False


def float_equality_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP302: ``==``/``!=`` against float literals outside geometry/."""
    parts = module.repro_parts
    if parts and parts[0] == "geometry":
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _float_operand(left) or _float_operand(right):
                yield module.diagnostic(
                    "FP302",
                    "float equality comparison; coordinates need the "
                    "EPSILON tolerance that repro.geometry owns",
                    node,
                    hint="compare via repro.geometry (regions/relations) "
                    "or an explicit tolerance",
                )


# ------------------------------------------------------------------- FP303
def _allowed_exception_names(module: ModuleUnderLint) -> set[str]:
    allowed = set(ALLOWED_BUILTIN_RAISES)
    for name, (origin_module, _) in module.imported_names.items():
        if origin_module == "errors" or origin_module.endswith(".errors"):
            allowed.add(name)
    # Classes defined in this module deriving (transitively) from an
    # allowed name are allowed too; declaration order covers chains.
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            base_names = {
                base.id
                for base in node.bases
                if isinstance(base, ast.Name)
            }
            if base_names & allowed:
                allowed.add(node.name)
    return allowed


def _is_errors_module(module: ModuleUnderLint) -> bool:
    return module.path.name == "errors.py"


def error_hierarchy_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP303: raises in templates/, sqlparser/, relational/."""
    parts = module.repro_parts
    if (
        len(parts) < 2
        or parts[0] not in ERROR_HIERARCHY_PACKAGES
        or _is_errors_module(module)
    ):
        return
    allowed = _allowed_exception_names(module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            name = exc.id
            # Lower-case names are re-raised variables; the original
            # raise site is where the hierarchy is enforced.
            if not name[:1].isupper() or name in allowed:
                continue
            yield module.diagnostic(
                "FP303",
                f"raises {name}, which does not come from an errors "
                f"module; {parts[0]}/ callers catch the layer's error "
                "root",
                node,
                hint=f"raise a repro.{parts[0]}.errors exception (or a "
                "lower layer's errors-module exception)",
            )
        elif isinstance(exc, ast.Attribute):
            value = exc.value
            from_errors = isinstance(value, ast.Name) and (
                module.module_aliases.get(value.id, "").endswith("errors")
                or value.id == "errors"
            )
            if not from_errors:
                yield module.diagnostic(
                    "FP303",
                    f"raises {ast.unparse(exc)}, which does not come "
                    "from an errors module",
                    node,
                )


# ------------------------------------------------------------------- FP305
def _seeded_constructor(call: ast.Call) -> bool:
    """``Random(seed)`` is fine; ``Random()`` shares no seed to replay."""
    return bool(call.args or call.keywords)


def unseeded_random_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP305: unseeded / module-level randomness outside tests."""
    if any(part in ("tests", "conftest.py") for part in module.path.parts):
        return
    hint = (
        "construct random.Random(seed) with an explicit seed and pass "
        "the instance around"
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            imported = module.imported_names.get(func.id)
            if imported is None or imported[0] != "random":
                continue
            origin_name = imported[1]
            if origin_name in ("Random", "SystemRandom"):
                if not _seeded_constructor(node):
                    yield module.diagnostic(
                        "FP305",
                        f"{origin_name}() without a seed; replays would "
                        "diverge run to run",
                        node,
                        hint=hint,
                    )
            else:
                yield module.diagnostic(
                    "FP305",
                    f"call to random.{origin_name} draws from the "
                    "process-global random state",
                    node,
                    hint=hint,
                )
        elif isinstance(func, ast.Attribute):
            value = func.value
            if not (
                isinstance(value, ast.Name)
                and module.module_aliases.get(value.id) == "random"
            ):
                continue
            if func.attr in ("Random", "SystemRandom"):
                if not _seeded_constructor(node):
                    yield module.diagnostic(
                        "FP305",
                        f"random.{func.attr}() without a seed; replays "
                        "would diverge run to run",
                        node,
                        hint=hint,
                    )
            else:
                yield module.diagnostic(
                    "FP305",
                    f"call to random.{func.attr} draws from the "
                    "process-global random state",
                    node,
                    hint=hint,
                )


# ------------------------------------------------------------------- FP306
def manual_context_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP306: manual ``__enter__``/``__exit__`` calls outside obs/."""
    if any(part in ("tests", "conftest.py") for part in module.path.parts):
        return
    parts = module.repro_parts
    if parts and parts[0] == "obs":
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "__enter__",
            "__exit__",
        ):
            yield module.diagnostic(
                "FP306",
                f"manual {func.attr}() call; spans (and context "
                "managers generally) must be entered with `with` so "
                "exception paths unwind the tracer's span stack",
                node,
                hint="rewrite as `with tracer.span(...) as span:` (or "
                "contextlib.ExitStack for dynamic lifetimes)",
            )


# ------------------------------------------------------------------- FP307
def _open_write_mode(call: ast.Call) -> str | None:
    """The mode string of an ``open()`` call when it truncates."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None  # default "r"
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return None  # dynamic mode: out of scope
    # "w"/"x" truncate or create whole files; "a" and "r+" do not.
    if mode.value.startswith(("w", "x")):
        return mode.value
    return None


def non_atomic_write_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP307: whole-file writes outside persistence/ must be atomic."""
    if any(part in ("tests", "conftest.py") for part in module.path.parts):
        return
    parts = module.repro_parts
    if parts and parts[0] == "persistence":
        return
    hint = (
        "use repro.persistence.atomic.atomic_write_text / "
        "atomic_write_bytes (temp file + os.replace)"
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_write_mode(node)
            if mode is not None:
                yield module.diagnostic(
                    "FP307",
                    f'open(..., "{mode}") truncates in place; a crash '
                    "mid-write leaves a torn file",
                    node,
                    hint=hint,
                )
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            yield module.diagnostic(
                "FP307",
                f"{func.attr}() replaces the file non-atomically; a "
                "crash mid-write leaves a torn file",
                node,
                hint=hint,
            )


# ------------------------------------------------------------------- FP308
def bench_print_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP308: ``print`` calls in benchmark modules."""
    if not module.path.name.startswith("bench_"):
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield module.diagnostic(
                "FP308",
                "print() in a benchmark; results that bypass "
                "BenchReporter never reach the *.bench.json documents "
                "the regression gate compares",
                node,
                hint="record numbers with bench_report(...).metric(...) "
                "and tables with record_result(...)",
            )


# ------------------------------------------------------------------- FP309
#: Lock-ish constructors of the ``threading`` module the rule covers.
THREADING_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)


def raw_lock_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP309: raw threading lock constructions outside repro/locking.py."""
    if any(part in ("tests", "conftest.py") for part in module.path.parts):
        return
    if module.repro_parts == ("locking.py",):
        return
    hint = (
        "construct locks via repro.locking.named_lock(\"<role>\") so the "
        "concurrency analyzer can name them"
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            imported = module.imported_names.get(func.id)
            if (
                imported is not None
                and imported[0] == "threading"
                and imported[1] in THREADING_LOCK_FACTORIES
            ):
                yield module.diagnostic(
                    "FP309",
                    f"threading.{imported[1]}() constructs an anonymous "
                    "lock the concurrency analyzer cannot name",
                    node,
                    hint=hint,
                )
        elif isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Name)
                and module.module_aliases.get(value.id) == "threading"
                and func.attr in THREADING_LOCK_FACTORIES
            ):
                yield module.diagnostic(
                    "FP309",
                    f"threading.{func.attr}() constructs an anonymous "
                    "lock the concurrency analyzer cannot name",
                    node,
                    hint=hint,
                )


# ------------------------------------------------------------------- FP310
#: ``queue`` module constructors that accept (and default to an
#: unbounded) ``maxsize``.
BOUNDABLE_QUEUE_FACTORIES = frozenset(
    {"Queue", "LifoQueue", "PriorityQueue"}
)


def _is_unbounded_maxsize(call: ast.Call) -> bool:
    """True when a queue constructor's maxsize is absent, 0, or < 0."""
    size: ast.expr | None = None
    if call.args:
        size = call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "maxsize":
            size = keyword.value
    if size is None:
        return True
    if isinstance(size, ast.Constant) and isinstance(size.value, int):
        return size.value <= 0
    if (
        isinstance(size, ast.UnaryOp)
        and isinstance(size.op, ast.USub)
        and isinstance(size.operand, ast.Constant)
    ):
        return True  # negative literal: unbounded by Queue's contract
    return False  # dynamic bound: trust the caller


def _deque_has_maxlen(call: ast.Call) -> bool:
    if len(call.args) >= 2:
        return True  # deque(iterable, maxlen)
    return any(keyword.arg == "maxlen" for keyword in call.keywords)


def _queue_factory_name(
    module: ModuleUnderLint, call: ast.Call
) -> str | None:
    """The ``queue``-module class a call constructs, if any."""
    func = call.func
    if isinstance(func, ast.Name):
        imported = module.imported_names.get(func.id)
        if imported is not None and imported[0] == "queue":
            return imported[1]
    elif isinstance(func, ast.Attribute):
        value = func.value
        if (
            isinstance(value, ast.Name)
            and module.module_aliases.get(value.id) == "queue"
        ):
            return func.attr
    return None


def _is_deque_call(module: ModuleUnderLint, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        imported = module.imported_names.get(func.id)
        return (
            imported is not None
            and imported[0] == "collections"
            and imported[1] == "deque"
        )
    if isinstance(func, ast.Attribute):
        value = func.value
        return (
            isinstance(value, ast.Name)
            and module.module_aliases.get(value.id) == "collections"
            and func.attr == "deque"
        )
    return False


def unbounded_queue_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP310: unbounded deques/queues in serve-path modules."""
    # Imported lazily: repro.analysis.concurrency imports nothing from
    # this module, but keeping the lint rules importable on their own
    # is worth the local import.
    from repro.analysis.concurrency import (
        SERVE_PATH_MODULES,
        SERVE_PATH_PRAGMA,
    )

    if any(part in ("tests", "conftest.py") for part in module.path.parts):
        return
    rel = "/".join(module.repro_parts)
    if rel not in SERVE_PATH_MODULES and (
        SERVE_PATH_PRAGMA not in module.text
    ):
        return
    hint = (
        "bound the container (deque(maxlen=...), Queue(maxsize=...)) "
        "and shed the excess through repro.admission"
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if _is_deque_call(module, node) and not _deque_has_maxlen(node):
            yield module.diagnostic(
                "FP310",
                "deque() without maxlen on the serve path grows without "
                "bound under overload",
                node,
                hint=hint,
            )
            continue
        factory = _queue_factory_name(module, node)
        if factory in BOUNDABLE_QUEUE_FACTORIES and _is_unbounded_maxsize(
            node
        ):
            yield module.diagnostic(
                "FP310",
                f"queue.{factory} without a positive maxsize on the "
                "serve path grows without bound under overload",
                node,
                hint=hint,
            )
        elif factory == "SimpleQueue":
            yield module.diagnostic(
                "FP310",
                "queue.SimpleQueue cannot be bounded; the serve path "
                "needs a depth limit",
                node,
                hint=hint,
            )


# ------------------------------------------------------------------- FP311
#: Receiver names that mark a bare ``.emit`` as the flight recorder's
#: (the diagnostics layer has its own ``.emit(code, message, node)``).
EVENT_RECORDER_RECEIVERS = frozenset({"events", "recorder", "flight"})


def _is_event_emission(func: ast.Attribute, call: ast.Call) -> bool:
    """Whether a method call puts an event on the telemetry timeline.

    ``telemetry_event`` is unambiguous.  ``emit`` is shared with the
    diagnostics layer, so it only counts when the call carries the
    recorder's signature (an ``at_ms`` keyword) or the receiver is an
    events/recorder attribute (``self.events.emit``, ``recorder.emit``).
    """
    if func.attr == "telemetry_event":
        return True
    if func.attr != "emit":
        return False
    if any(keyword.arg == "at_ms" for keyword in call.keywords):
        return True
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id in EVENT_RECORDER_RECEIVERS
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in EVENT_RECORDER_RECEIVERS
    return False


def event_code_rule(module: ModuleUnderLint) -> Iterator[Diagnostic]:
    """FP311: flight-recorder emissions must use pinned EV codes.

    Flags flight-recorder ``emit`` / ``telemetry_event`` calls whose
    code argument is a string literal absent from
    :data:`repro.obs.events.EVENT_CODES`.  Codes that arrive as names
    (the ``EV_*`` constants) or subscripts
    (``BREAKER_EVENT_CODES[...]``) resolve at runtime against the same
    registry, so only literals are judged here; the recorder itself
    still rejects unknown codes loudly at runtime.
    """
    # Lazy for the same reason as FP310: keep the lint rules
    # importable without dragging in the subsystem they police.
    from repro.obs.events import EVENT_CODES

    if any(part in ("tests", "conftest.py") for part in module.path.parts):
        return
    if module.repro_parts == ("obs", "events.py"):
        return  # the registry module itself (docs, validation message)
    hint = (
        "use a pinned EV constant from repro.obs.events "
        f"(registry: {', '.join(sorted(EVENT_CODES))})"
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if not _is_event_emission(func, node):
            continue
        code: ast.expr | None = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "code":
                code = keyword.value
        if (
            isinstance(code, ast.Constant)
            and isinstance(code.value, str)
            and code.value not in EVENT_CODES
        ):
            yield module.diagnostic(
                "FP311",
                f"event code {code.value!r} is not in the pinned "
                "EVENT_CODES registry; ad-hoc codes never reach "
                "dashboards or tests keyed on the timeline",
                node,
                hint=hint,
            )


# ------------------------------------------------------------------- FP312
def shard_internal_import_rule(
    module: ModuleUnderLint,
) -> Iterator[Diagnostic]:
    """FP312: ``repro.cluster.<submodule>`` imports outside the cluster.

    The cluster package's submodules (ring placement, failover, the
    handoff codec) are shard internals; everything else talks to the
    tier through the ``repro.cluster`` package surface so no module
    outside it can address a shard the ring no longer owns.
    """
    if any(part in ("tests", "conftest.py") for part in module.path.parts):
        return
    parts = module.repro_parts
    if parts and parts[0] == "cluster":
        return
    hint = (
        "import from the repro.cluster package surface; shard-to-shard "
        "traffic goes through the ShardRouter"
    )
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module or "").startswith(
                "repro.cluster."
            ):
                yield module.diagnostic(
                    "FP312",
                    f"direct import of shard internals ({node.module}); "
                    "only repro.cluster itself is a public surface "
                    "outside the cluster package",
                    node,
                    hint=hint,
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.cluster."):
                    yield module.diagnostic(
                        "FP312",
                        f"direct import of shard internals "
                        f"({alias.name}); only repro.cluster itself is "
                        "a public surface outside the cluster package",
                        node,
                        hint=hint,
                    )


ALL_RULES: tuple[LintRule, ...] = (
    wall_clock_rule,
    float_equality_rule,
    error_hierarchy_rule,
    unseeded_random_rule,
    manual_context_rule,
    non_atomic_write_rule,
    bench_print_rule,
    raw_lock_rule,
    unbounded_queue_rule,
    event_code_rule,
    shard_internal_import_rule,
)


# ------------------------------------------------------------------ driver
def _syntax_error_span(
    path: pathlib.Path, text: str, exc: SyntaxError
) -> SourceSpan:
    """A line:col span for an unparseable file, from the SyntaxError.

    ``SyntaxError.offset`` is already 1-based (like the column our
    spans carry), so the diagnostic renders in the same
    ``path:line:col`` style as every AST-anchored finding.
    """
    lines = text.split("\n")
    lineno = max(1, exc.lineno or 1)
    column = max(1, exc.offset or 1)
    start = sum(len(line) + 1 for line in lines[: lineno - 1]) + column - 1
    start = min(start, len(text))
    snippet = lines[lineno - 1] if lineno - 1 < len(lines) else ""
    if len(snippet) > 80:
        snippet = snippet[:77] + "..."
    return SourceSpan(
        source=path.as_posix(),
        start=start,
        end=min(len(text), start + max(1, len(snippet))),
        line=lineno,
        column=column,
        snippet=snippet,
    )


def lint_file(
    path: pathlib.Path, rules: Sequence[LintRule] = ALL_RULES
) -> AnalysisReport:
    """Run every rule over one Python file."""
    report = AnalysisReport()
    text = path.read_text(encoding="utf-8")
    try:
        module = ModuleUnderLint(path, text)
    except SyntaxError as exc:
        report.add(
            Diagnostic(
                code="FP304",
                severity=severity_of("FP304"),
                message=f"cannot parse {path}: {exc.msg}",
                subject=path.as_posix(),
                span=_syntax_error_span(path, text, exc),
            )
        )
        return report
    for rule in rules:
        for diagnostic in rule(module):
            report.add(diagnostic)
    return report


def run_lint(
    paths: Sequence[str | pathlib.Path],
    rules: Sequence[LintRule] = ALL_RULES,
) -> AnalysisReport:
    """Lint files and directories (recursing into ``*.py``)."""
    report = AnalysisReport()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                report.extend(lint_file(child, rules))
        else:
            report.extend(lint_file(path, rules))
    return report
