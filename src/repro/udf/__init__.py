"""User-defined function framework.

The paper targets web sites whose SQL heavily embeds *user-defined
functions*: scalar functions (one value per call) and table-valued
functions (a set of tuples per call).  This package provides the
registry the origin server's executor resolves calls against, plus the
SkyServer function library the experiments use.

Determinism matters (paper Section 3.1, property 1): only deterministic
functions are candidates for active caching.  Every registration carries
an explicit ``deterministic`` flag that the proxy checks before caching.
"""

from repro.udf.registry import (
    FunctionRegistry,
    ScalarFunction,
    TableFunction,
    UdfError,
)
from repro.udf.skyserver import register_skyserver_functions

__all__ = [
    "FunctionRegistry",
    "ScalarFunction",
    "TableFunction",
    "UdfError",
    "register_skyserver_functions",
]
