"""Registry of scalar and table-valued user-defined functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.relational.schema import Schema


class UdfError(Exception):
    """Unknown functions, arity mismatches, or registration conflicts."""


@dataclass(frozen=True)
class ScalarFunction:
    """A scalar UDF: ``impl(args) -> value``.

    ``impl`` must not consult external state unless ``deterministic`` is
    False; the registry cannot verify this, so the flag is a declared
    contract (exactly as in a real DBMS's CREATE FUNCTION options).
    """

    name: str
    params: tuple[str, ...]
    impl: Callable[..., Any]
    deterministic: bool = True
    description: str = ""


@dataclass(frozen=True)
class TableFunction:
    """A table-valued UDF: ``impl(catalog, args) -> list of row tuples``.

    The implementation receives the catalog because TVFs like
    ``fGetNearbyObjEq`` select from base tables.  ``schema`` declares the
    shape of the returned tuples; the executor wraps them in a
    :class:`~repro.relational.result.ResultTable`.
    """

    name: str
    params: tuple[str, ...]
    schema: Schema
    impl: Callable[..., list[tuple[Any, ...]]]
    deterministic: bool = True
    description: str = ""


class FunctionRegistry:
    """Case-insensitive name resolution for UDFs.

    A single namespace covers both kinds (as in SQL Server, the paper's
    host DBMS): registering a table function named like an existing
    scalar function is a conflict.
    """

    def __init__(self) -> None:
        self._scalars: dict[str, ScalarFunction] = {}
        self._tables: dict[str, TableFunction] = {}

    # --------------------------------------------------------- register
    def register_scalar(self, function: ScalarFunction) -> None:
        self._check_free(function.name)
        self._scalars[function.name.lower()] = function

    def register_table(self, function: TableFunction) -> None:
        self._check_free(function.name)
        self._tables[function.name.lower()] = function

    def _check_free(self, name: str) -> None:
        key = name.lower()
        if key in self._scalars or key in self._tables:
            raise UdfError(f"function {name!r} is already registered")

    # ---------------------------------------------------------- resolve
    def has_scalar(self, name: str) -> bool:
        return name.lower() in self._scalars

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def scalar(self, name: str) -> ScalarFunction:
        try:
            return self._scalars[name.lower()]
        except KeyError:
            raise UdfError(f"unknown scalar function {name!r}") from None

    def table(self, name: str) -> TableFunction:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UdfError(f"unknown table function {name!r}") from None

    def is_deterministic(self, name: str) -> bool:
        key = name.lower()
        if key in self._scalars:
            return self._scalars[key].deterministic
        if key in self._tables:
            return self._tables[key].deterministic
        raise UdfError(f"unknown function {name!r}")

    # ------------------------------------------------------------- call
    def call_scalar(self, name: str, args: Sequence[Any]) -> Any:
        function = self.scalar(name)
        if len(args) != len(function.params):
            raise UdfError(
                f"{function.name} expects {len(function.params)} arguments, "
                f"got {len(args)}"
            )
        return function.impl(*args)

    def call_table(
        self, name: str, catalog, args: Sequence[Any]
    ) -> list[tuple[Any, ...]]:
        function = self.table(name)
        if len(args) != len(function.params):
            raise UdfError(
                f"{function.name} expects {len(function.params)} arguments, "
                f"got {len(args)}"
            )
        return function.impl(catalog, list(args))
