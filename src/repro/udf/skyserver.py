"""The SkyServer function library.

Reimplementations of the SDSS SkyServer functions the paper names
(Section 1 and Section 2): the table-valued spatial search functions
``fGetNearbyObjEq``, ``fGetObjFromRect``, and ``fGetNearbyObjXYZ``, and
the scalar helpers ``fPhotoFlags``, ``fPhotoType``, and
``fDistanceArcMinEq``.

All spatial functions run against a PhotoPrimary table through a
:class:`~repro.skydata.index.SkyGridIndex` (our stand-in for the
SkyServer's HTM index) and are registered as deterministic.  A
deliberately *non-deterministic* specimen, ``fRandomSample``, is also
provided so tests and examples can exercise the proxy's refusal to
cache non-deterministic functions (paper Section 3.1, property 1).
"""

from __future__ import annotations

import math
import random
from typing import Any

from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.skydata.generator import PHOTO_FLAGS, TYPE_GALAXY, TYPE_STAR
from repro.skydata.index import SkyGridIndex
from repro.skydata.sphere import angular_distance_arcmin
from repro.udf.registry import (
    FunctionRegistry,
    ScalarFunction,
    TableFunction,
    UdfError,
)

# Result schema of the radial search functions.  The coordinate columns
# (cx, cy, cz) satisfy the paper's "result attribute availability"
# property: the proxy needs each tuple's point in region space.
NEARBY_OBJ_SCHEMA = Schema.of(
    ("objID", ColumnType.INT),
    ("ra", ColumnType.FLOAT),
    ("dec", ColumnType.FLOAT),
    ("cx", ColumnType.FLOAT),
    ("cy", ColumnType.FLOAT),
    ("cz", ColumnType.FLOAT),
    ("type", ColumnType.INT),
    ("distance", ColumnType.FLOAT),
)

RECT_OBJ_SCHEMA = Schema.of(
    ("objID", ColumnType.INT),
    ("ra", ColumnType.FLOAT),
    ("dec", ColumnType.FLOAT),
    ("cx", ColumnType.FLOAT),
    ("cy", ColumnType.FLOAT),
    ("cz", ColumnType.FLOAT),
    ("type", ColumnType.INT),
)

PHOTO_TYPES = {"GALAXY": TYPE_GALAXY, "STAR": TYPE_STAR}


def _photo_flags(name: Any) -> int:
    try:
        return PHOTO_FLAGS[str(name).upper()]
    except KeyError:
        raise UdfError(f"unknown photo flag {name!r}") from None


def _photo_type(name: Any) -> int:
    try:
        return PHOTO_TYPES[str(name).upper()]
    except KeyError:
        raise UdfError(f"unknown photo type {name!r}") from None


def register_skyserver_functions(
    registry: FunctionRegistry,
    photo_primary: Table,
    index: SkyGridIndex | None = None,
) -> SkyGridIndex:
    """Register the SkyServer library bound to a PhotoPrimary table.

    Returns the spatial index (built here unless supplied) so the origin
    server can report its size in diagnostics.
    """
    index = index or SkyGridIndex(photo_primary)
    schema = photo_primary.schema
    positions = {
        name: schema.position(name)
        for name in ("objID", "ra", "dec", "cx", "cy", "cz", "type")
    }

    def nearby_rows(
        ra: float, dec: float, radius_arcmin: float
    ) -> list[tuple[Any, ...]]:
        if radius_arcmin < 0:
            raise UdfError(f"negative search radius: {radius_arcmin}")
        rows = []
        for row_index in index.candidates_in_circle(ra, dec, radius_arcmin):
            row = photo_primary.rows[row_index]
            distance = angular_distance_arcmin(
                ra, dec, row[positions["ra"]], row[positions["dec"]]
            )
            if distance <= radius_arcmin:
                rows.append(
                    (
                        row[positions["objID"]],
                        row[positions["ra"]],
                        row[positions["dec"]],
                        row[positions["cx"]],
                        row[positions["cy"]],
                        row[positions["cz"]],
                        row[positions["type"]],
                        distance,
                    )
                )
        rows.sort(key=lambda r: r[-1])  # nearest first, as the real one does
        return rows

    def f_get_nearby_obj_eq(catalog, args) -> list[tuple[Any, ...]]:
        ra, dec, radius_arcmin = (float(a) for a in args)
        return nearby_rows(ra, dec, radius_arcmin)

    def f_get_nearby_obj_xyz(catalog, args) -> list[tuple[Any, ...]]:
        nx, ny, nz, radius_arcmin = (float(a) for a in args)
        norm = math.sqrt(nx * nx + ny * ny + nz * nz)
        if norm == 0:
            raise UdfError("fGetNearbyObjXYZ: zero direction vector")
        dec = math.degrees(math.asin(nz / norm))
        ra = math.degrees(math.atan2(ny / norm, nx / norm)) % 360.0
        return nearby_rows(ra, dec, radius_arcmin)

    def f_get_obj_from_rect(catalog, args) -> list[tuple[Any, ...]]:
        ra_min, ra_max, dec_min, dec_max = (float(a) for a in args)
        if ra_min > ra_max or dec_min > dec_max:
            raise UdfError("fGetObjFromRect: empty rectangle")
        rows = []
        for row_index in index.candidates_in_rect(
            ra_min, ra_max, dec_min, dec_max
        ):
            row = photo_primary.rows[row_index]
            ra = row[positions["ra"]]
            dec = row[positions["dec"]]
            if ra_min <= ra <= ra_max and dec_min <= dec <= dec_max:
                rows.append(
                    (
                        row[positions["objID"]],
                        ra,
                        dec,
                        row[positions["cx"]],
                        row[positions["cy"]],
                        row[positions["cz"]],
                        row[positions["type"]],
                    )
                )
        rows.sort(key=lambda r: r[0])  # deterministic order by objID
        return rows

    registry.register_table(
        TableFunction(
            name="fGetNearbyObjEq",
            params=("ra", "dec", "radius"),
            schema=NEARBY_OBJ_SCHEMA,
            impl=f_get_nearby_obj_eq,
            deterministic=True,
            description="Objects within radius arcmin of (ra, dec).",
        )
    )
    registry.register_table(
        TableFunction(
            name="fGetNearbyObjXYZ",
            params=("nx", "ny", "nz", "radius"),
            schema=NEARBY_OBJ_SCHEMA,
            impl=f_get_nearby_obj_xyz,
            deterministic=True,
            description="Objects within radius arcmin of a unit vector.",
        )
    )
    registry.register_table(
        TableFunction(
            name="fGetObjFromRect",
            params=("ra_min", "ra_max", "dec_min", "dec_max"),
            schema=RECT_OBJ_SCHEMA,
            impl=f_get_obj_from_rect,
            deterministic=True,
            description="Objects inside an (ra, dec) rectangle.",
        )
    )
    registry.register_scalar(
        ScalarFunction(
            name="fPhotoFlags",
            params=("name",),
            impl=_photo_flags,
            deterministic=True,
            description="Bit value of a named photo flag.",
        )
    )
    registry.register_scalar(
        ScalarFunction(
            name="fPhotoType",
            params=("name",),
            impl=_photo_type,
            deterministic=True,
            description="Type code of a named photometric class.",
        )
    )
    registry.register_scalar(
        ScalarFunction(
            name="fDistanceArcMinEq",
            params=("ra1", "dec1", "ra2", "dec2"),
            impl=angular_distance_arcmin,
            deterministic=True,
            description="Great-circle distance between two points, arcmin.",
        )
    )

    # Deliberately non-deterministic *across calls* (the proxy must
    # refuse to cache it), but seeded so whole-experiment replays stay
    # reproducible (FP305).
    sample_rng = random.Random(0xF5A)

    def f_random_sample(catalog, args) -> list[tuple[Any, ...]]:
        count = int(args[0])
        rows = []
        n = len(photo_primary)
        for _ in range(max(count, 0)):
            row = photo_primary.rows[sample_rng.randrange(n)]
            rows.append(
                (
                    row[positions["objID"]],
                    row[positions["ra"]],
                    row[positions["dec"]],
                    row[positions["cx"]],
                    row[positions["cy"]],
                    row[positions["cz"]],
                    row[positions["type"]],
                )
            )
        return rows

    registry.register_table(
        TableFunction(
            name="fRandomSample",
            params=("count",),
            schema=RECT_OBJ_SCHEMA,
            impl=f_random_sample,
            deterministic=False,
            description="A random object sample (non-deterministic; "
            "exists to exercise the proxy's determinism check).",
        )
    )
    return index


__all__ = [
    "NEARBY_OBJ_SCHEMA",
    "PHOTO_TYPES",
    "RECT_OBJ_SCHEMA",
    "register_skyserver_functions",
]
