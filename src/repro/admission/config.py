"""Admission-control configuration: queue, quotas, shed policy."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

#: Queue disciplines: who is dispatched first when a slot frees.
DISCIPLINE_FIFO = "fifo"
DISCIPLINE_LIFO = "lifo"
DISCIPLINES = (DISCIPLINE_FIFO, DISCIPLINE_LIFO)

#: What happens to new arrivals once the accept queue is full.
SHED_REJECT_NEW = "reject-new"
SHED_SHED_CHEAPEST = "shed-cheapest"
SHED_DEGRADE_TO_TUNNEL = "degrade-to-tunnel"
SHED_POLICIES = (
    SHED_REJECT_NEW,
    SHED_SHED_CHEAPEST,
    SHED_DEGRADE_TO_TUNNEL,
)

#: Stable shed reasons (the ``failure_reason`` on rejected records and
#: the ``reason`` label on the shed metric).
REASON_QUEUE_FULL = "queue-full"
REASON_QUOTA = "quota"
REASON_ADMISSION_OPEN = "admission-open"
REASON_DEADLINE = "deadline"


@dataclass(frozen=True)
class TenantQuota:
    """A per-tenant token bucket: sustained rate plus burst headroom."""

    rate_per_s: float = 10.0
    burst: float = 20.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(
                f"quota rate must be positive: {self.rate_per_s}"
            )
        if self.burst < 1:
            raise ValueError(f"quota burst must be >= 1: {self.burst}")


@dataclass(frozen=True)
class AdmissionConfig:
    """Everything the admission controller needs.

    * ``max_inflight`` — serve slots; queries beyond it wait in the
      accept queue (event-driven mode) or count as backlog
      (direct-threaded mode);
    * ``max_queue_depth`` — the accept-queue bound; arrivals beyond it
      hit the shed policy;
    * ``discipline`` — dispatch order for queued work;
    * ``queue_deadline_ms`` — queued work older than this at dispatch
      time is dropped with a ``queued-timeout`` outcome;
    * ``shed_policy`` — what a full queue does to a new arrival;
    * ``degrade_watermark`` — fraction of the queue bound beyond which
      ``degrade-to-tunnel`` admits queries in tunnel mode (no cache
      work) instead of full semantic serving;
    * ``quotas`` — per-tenant token buckets; tenants without an entry
      are unmetered;
    * ``overload_threshold`` / ``overload_cooldown_ms`` — the overload
      circuit breaker: this many consecutive queue-full sheds open it,
      after which new arrivals fast-fail (``admission-open``) for the
      cooldown before a half-open probe re-tests capacity.
    """

    max_inflight: int = 8
    max_queue_depth: int = 64
    discipline: str = DISCIPLINE_FIFO
    queue_deadline_ms: float = 15_000.0
    shed_policy: str = SHED_REJECT_NEW
    degrade_watermark: float = 0.75
    quotas: Mapping[str, TenantQuota] = field(default_factory=dict)
    overload_threshold: int = 64
    overload_cooldown_ms: float = 2_000.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1: {self.max_inflight}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1: {self.max_queue_depth}"
            )
        if self.discipline not in DISCIPLINES:
            raise ValueError(
                f"unknown queue discipline {self.discipline!r}; "
                f"expected one of {DISCIPLINES}"
            )
        if self.queue_deadline_ms <= 0:
            raise ValueError(
                "queue deadline must be positive: "
                f"{self.queue_deadline_ms}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"expected one of {SHED_POLICIES}"
            )
        if not 0.0 <= self.degrade_watermark <= 1.0:
            raise ValueError(
                "degrade watermark must be in [0, 1]: "
                f"{self.degrade_watermark}"
            )
        if self.overload_threshold < 1:
            raise ValueError(
                "overload threshold must be >= 1: "
                f"{self.overload_threshold}"
            )
        if self.overload_cooldown_ms <= 0:
            raise ValueError(
                "overload cooldown must be positive: "
                f"{self.overload_cooldown_ms}"
            )

    @property
    def capacity(self) -> int:
        """Slots plus queue: the most work the proxy ever holds."""
        return self.max_inflight + self.max_queue_depth

    @property
    def watermark_depth(self) -> int:
        """Queue depth at which ``degrade-to-tunnel`` kicks in."""
        return int(self.degrade_watermark * self.max_queue_depth)


def retry_after_seconds(config: AdmissionConfig) -> int:
    """The ``Retry-After`` value for a turned-away query, in seconds.

    Derived from the overload breaker's cooldown — the soonest the
    proxy could plausibly take new work after fast-failing — rounded
    up to the whole seconds HTTP requires, never below one.
    """
    return max(1, math.ceil(config.overload_cooldown_ms / 1000.0))
