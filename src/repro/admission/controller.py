"""The runtime admission gate: queue, quotas, shed, backpressure.

One :class:`AdmissionController` sits in front of
:class:`~repro.core.proxy.FunctionProxy.serve`.  It is used two ways:

* **direct-threaded** — concurrent ``serve()`` callers pass through
  :meth:`AdmissionController.try_admit` /
  :meth:`AdmissionController.release`: a bounded-capacity gate (slots
  plus backlog) with per-tenant token buckets and the overload
  breaker;
* **event-driven** — the :mod:`repro.sched` frontend parks arrivals in
  the bounded accept queue (:meth:`AdmissionController.enqueue`) and
  dispatches them as slots free (:meth:`AdmissionController.dequeue`),
  applying the configured discipline and dropping queued work whose
  deadline passed (``queued-timeout``).

Backpressure: every queue-full shed records a failure on an internal
:class:`~repro.faults.resilience.CircuitBreaker`; sustained overflow
opens it and new arrivals fast-fail (``admission-open``) for the
cooldown, after which a half-open probe re-tests capacity.  The
breaker runs on its own event-time :class:`SimulatedClock`, advanced
to each caller-passed ``now_ms``, so cooldowns follow the load
timeline rather than the work clock.

All mutable state is guarded by the ``proxy.admission`` named lock;
observer callbacks fire after the lock is released.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Protocol

from repro.admission.config import (
    DISCIPLINE_FIFO,
    REASON_ADMISSION_OPEN,
    REASON_QUEUE_FULL,
    REASON_QUOTA,
    SHED_DEGRADE_TO_TUNNEL,
    SHED_SHED_CHEAPEST,
    AdmissionConfig,
    TenantQuota,
)
from repro.faults.resilience import BreakerState, CircuitBreaker
from repro.locking import guarded_by, named_lock
from repro.network.clock import SimulatedClock
from repro.obs.events import BREAKER_EVENT_CODES, SHED_POLICY_EVENT_CODES


class AdmissionListener(Protocol):
    """Metrics hooks the controller drives (outside its lock)."""

    def admission_queue_depth(self, depth: int) -> None: ...

    def admission_inflight(self, count: int) -> None: ...

    def admission_shed(self, reason: str) -> None: ...

    def admission_quota_denied(self, tenant: str) -> None: ...

    def admission_quota_tokens(self, tenant: str, tokens: float) -> None: ...

    def admission_queue_wait(self, sim_ms: float) -> None: ...

    def admission_overload_transition(self, state: BreakerState) -> None: ...

    def telemetry_event(
        self,
        code: str,
        at_ms: float,
        trace_id: str | None = None,
        query_index: int | None = None,
        **payload: Any,
    ) -> None: ...


@dataclass(frozen=True)
class AdmissionVerdict:
    """The controller's decision for one arrival."""

    admitted: bool
    reason: str = ""  # one of the REASON_* constants when not admitted
    degrade: bool = False  # admitted, but in tunnel mode (overload)


@dataclass(frozen=True)
class QueuedRequest:
    """One arrival parked in the accept queue."""

    seq: int
    tenant: str
    item: Any
    cost_hint: float
    enqueued_at_ms: float
    degrade: bool = False


@guarded_by("proxy.admission", "_tokens", "_stamp_ms")
class TokenBucket:
    """A token bucket on explicit event time (caller passes now)."""

    def __init__(self, quota: TenantQuota) -> None:
        self._lock = named_lock("proxy.admission")
        self.quota = quota
        self._tokens = float(quota.burst)
        self._stamp_ms = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    def try_take(self, now_ms: float) -> bool:
        """Refill for the elapsed event time, then take one token."""
        with self._lock:
            elapsed = max(0.0, now_ms - self._stamp_ms)
            self._stamp_ms = max(self._stamp_ms, now_ms)
            self._tokens = min(
                float(self.quota.burst),
                self._tokens + elapsed * self.quota.rate_per_s / 1_000.0,
            )
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


@guarded_by(
    "proxy.admission",
    "_queue",
    "_inflight",
    "_seq",
    "_overload",
    "_obs",
    "_allow_degrade",
    "submitted",
    "admitted",
    "shed",
    "timeouts",
    "_shed_by_reason",
    "_quota_denials",
)
class AdmissionController:
    """The admission gate in front of the proxy's serve path."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self._lock = named_lock("proxy.admission")
        self._queue: deque[QueuedRequest] = deque(
            maxlen=self.config.max_queue_depth
        )
        self._buckets = {
            tenant: TokenBucket(quota)
            for tenant, quota in self.config.quotas.items()
        }
        self._inflight = 0
        self._seq = 0
        #: Event time for the overload breaker: an internal clock
        #: fast-forwarded to each caller-passed ``now_ms``, so breaker
        #: cooldowns run on the load timeline.
        self._breaker_clock = SimulatedClock()
        self._overload: CircuitBreaker = CircuitBreaker(
            self._breaker_clock,
            failure_threshold=self.config.overload_threshold,
            cooldown_ms=self.config.overload_cooldown_ms,
        )
        self._obs: AdmissionListener | None = None
        self._allow_degrade = True
        self.submitted = 0
        self.admitted = 0
        self.shed = 0
        self.timeouts = 0
        self._shed_by_reason: dict[str, int] = {}
        self._quota_denials: dict[str, int] = {}

    # ---------------------------------------------------------- binding
    def bind(
        self,
        instrumentation: AdmissionListener | None = None,
        allow_degrade: bool = True,
    ) -> None:
        """Attach the proxy's instrumentation and degradation policy.

        Rebuilds the overload breaker so its state transitions reach
        the metrics gauge; called once by the proxy's constructor.
        """
        callback = (
            self._overload_transition_hook(instrumentation)
            if instrumentation is not None
            else None
        )
        with self._lock:
            self._obs = instrumentation
            self._allow_degrade = bool(allow_degrade)
            self._overload = CircuitBreaker(
                self._breaker_clock,
                failure_threshold=self.config.overload_threshold,
                cooldown_ms=self.config.overload_cooldown_ms,
                on_state_change=callback,
            )
        if instrumentation is not None:
            instrumentation.admission_overload_transition(
                BreakerState.CLOSED
            )

    def _overload_transition_hook(
        self, instrumentation: AdmissionListener
    ) -> Any:
        """The overload breaker's state-change callback.

        Each transition updates the overload gauge, lands on the
        flight recorder as an EV01-03 breaker event (payload
        ``breaker="admission-overload"``), and — on open/close — marks
        the shed policy activating/deactivating (EV04/EV05).  The
        breaker may invoke this while the ``proxy.admission`` lock is
        held; ``proxy.telemetry`` is a pure sink, so the nesting is
        safe.
        """

        def on_transition(state: BreakerState) -> None:
            instrumentation.admission_overload_transition(state)
            now_ms = self._breaker_clock.now_ms
            instrumentation.telemetry_event(
                BREAKER_EVENT_CODES[state.value],
                at_ms=now_ms,
                breaker="admission-overload",
            )
            shed_code = SHED_POLICY_EVENT_CODES.get(state.value)
            if shed_code is not None:
                instrumentation.telemetry_event(shed_code, at_ms=now_ms)

        return on_transition

    # ------------------------------------------------------- direct gate
    def try_admit(self, tenant: str, now_ms: float) -> AdmissionVerdict:
        """Admission for a direct (threaded) ``serve()`` call.

        Capacity is slots plus backlog: callers beyond ``max_inflight``
        count as queued backlog even though their threads run
        immediately (the simulated clock carries the waiting).  Order
        of checks: quota (per-tenant, independent of load), then the
        overload breaker, then capacity — so a breaker probe always
        resolves against a real capacity test.
        """
        shed_reason = ""
        degrade = False
        with self._lock:
            self.submitted += 1
            self._advance_event_time(now_ms)
            if not self._take_token(tenant, now_ms):
                shed_reason = REASON_QUOTA
            elif not self._overload.allow():
                shed_reason = REASON_ADMISSION_OPEN
            elif self._inflight >= self.config.capacity:
                shed_reason = REASON_QUEUE_FULL
                self._overload.record_failure()
            else:
                backlog = self._inflight - self.config.max_inflight
                degrade = (
                    self.config.shed_policy == SHED_DEGRADE_TO_TUNNEL
                    and self._allow_degrade
                    and backlog >= self.config.watermark_depth
                )
                self._inflight += 1
                self.admitted += 1
                self._overload.record_success()
            if shed_reason:
                self._count_shed(shed_reason, tenant)
        self._notify_shed(shed_reason, tenant)
        self._notify_depth()
        self._notify_quota(tenant)
        return AdmissionVerdict(
            admitted=not shed_reason, reason=shed_reason, degrade=degrade
        )

    def release(self) -> None:
        """An admitted query finished (however it ended)."""
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
        self._notify_depth()

    # ------------------------------------------------------ queued gate
    def enqueue(
        self,
        item: Any,
        tenant: str,
        now_ms: float,
        cost_hint: float = 1.0,
    ) -> tuple[AdmissionVerdict, QueuedRequest | None]:
        """Park one arrival in the accept queue.

        Returns ``(verdict, evicted)``; ``evicted`` is the queued
        request the ``shed-cheapest`` policy displaced to make room
        (the caller owes it a shed record).
        """
        shed_reason = ""
        degrade = False
        evicted: QueuedRequest | None = None
        with self._lock:
            self.submitted += 1
            self._advance_event_time(now_ms)
            if not self._take_token(tenant, now_ms):
                shed_reason = REASON_QUOTA
            elif not self._overload.allow():
                shed_reason = REASON_ADMISSION_OPEN
            elif len(self._queue) < self.config.max_queue_depth:
                degrade = (
                    self.config.shed_policy == SHED_DEGRADE_TO_TUNNEL
                    and self._allow_degrade
                    and len(self._queue) >= self.config.watermark_depth
                )
                self._park(item, tenant, cost_hint, now_ms, degrade)
                self._overload.record_success()
            else:
                # Queue full: the shed policy decides who pays.
                self._overload.record_failure()
                if self.config.shed_policy == SHED_SHED_CHEAPEST:
                    evicted = self._evict_cheapest(cost_hint)
                if evicted is not None:
                    self._park(item, tenant, cost_hint, now_ms, False)
                    self._count_shed(REASON_QUEUE_FULL, evicted.tenant)
                else:
                    shed_reason = REASON_QUEUE_FULL
            if shed_reason:
                self._count_shed(shed_reason, tenant)
        self._notify_shed(
            shed_reason or (REASON_QUEUE_FULL if evicted else ""),
            tenant,
        )
        self._notify_depth()
        self._notify_quota(tenant)
        return (
            AdmissionVerdict(
                admitted=not shed_reason,
                reason=shed_reason,
                degrade=degrade,
            ),
            evicted,
        )

    def dequeue(
        self, now_ms: float
    ) -> tuple[QueuedRequest | None, float, list[QueuedRequest]]:
        """Dispatch the next queued request, if a slot is free.

        Returns ``(request, waited_ms, expired)``: ``request`` is None
        when no slot is free or the queue is empty; ``expired`` lists
        queued requests dropped at dispatch time because they waited
        past the deadline (the caller owes each a ``queued-timeout``
        record).
        """
        expired: list[QueuedRequest] = []
        got: QueuedRequest | None = None
        with self._lock:
            self._advance_event_time(now_ms)
            if self._inflight < self.config.max_inflight:
                fifo = self.config.discipline == DISCIPLINE_FIFO
                while self._queue:
                    if fifo:
                        head = self._queue.popleft()
                    else:
                        head = self._queue.pop()
                    waited = now_ms - head.enqueued_at_ms
                    if waited > self.config.queue_deadline_ms:
                        expired.append(head)
                        self.timeouts += 1
                        continue
                    got = head
                    self._inflight += 1
                    self.admitted += 1
                    break
        waited_ms = 0.0 if got is None else now_ms - got.enqueued_at_ms
        obs = self._obs
        if obs is not None and got is not None:
            obs.admission_queue_wait(waited_ms)
        self._notify_depth()
        return got, waited_ms, expired

    # --------------------------------------------------------- lock-held
    def _advance_event_time(self, now_ms: float) -> None:
        """Fast-forward the overload breaker's clock to ``now_ms``."""
        delta = now_ms - self._breaker_clock.now_ms
        if delta > 0:
            self._breaker_clock.advance(delta)

    def _take_token(self, tenant: str, now_ms: float) -> bool:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return True  # unmetered tenant
        taken = bucket.try_take(now_ms)
        if not taken:
            self._quota_denials[tenant] = (
                self._quota_denials.get(tenant, 0) + 1
            )
        return taken

    def _park(
        self,
        item: Any,
        tenant: str,
        cost_hint: float,
        now_ms: float,
        degrade: bool,
    ) -> None:
        self._seq += 1
        self._queue.append(
            QueuedRequest(
                seq=self._seq,
                tenant=tenant,
                item=item,
                cost_hint=cost_hint,
                enqueued_at_ms=now_ms,
                degrade=degrade,
            )
        )

    def _evict_cheapest(
        self, incoming_cost: float
    ) -> QueuedRequest | None:
        """The queued request ``shed-cheapest`` displaces, or None when
        the incoming request is itself the cheapest work to lose."""
        cheapest = min(
            self._queue, key=lambda request: (request.cost_hint, request.seq)
        )
        if incoming_cost <= cheapest.cost_hint:
            return None
        self._queue.remove(cheapest)
        return cheapest

    def _count_shed(self, reason: str, tenant: str) -> None:
        self.shed += 1
        self._shed_by_reason[reason] = (
            self._shed_by_reason.get(reason, 0) + 1
        )

    # -------------------------------------------------------- observers
    def _notify_shed(self, reason: str, tenant: str) -> None:
        obs = self._obs
        if obs is None or not reason:
            return
        obs.admission_shed(reason)
        if reason == REASON_QUOTA:
            obs.admission_quota_denied(tenant)

    def _notify_depth(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.admission_queue_depth(len(self._queue))
            obs.admission_inflight(self._inflight)

    def _notify_quota(self, tenant: str) -> None:
        obs = self._obs
        bucket = self._buckets.get(tenant)
        if obs is not None and bucket is not None:
            obs.admission_quota_tokens(tenant, bucket.tokens)

    # ------------------------------------------------------- monitoring
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def overload_state(self) -> BreakerState:
        return self._overload.state

    def shed_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._shed_by_reason)

    def quota_denials(self) -> dict[str, int]:
        with self._lock:
            return dict(self._quota_denials)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able status view (the ``GET /admission`` payload)."""
        with self._lock:
            return {
                "config": {
                    "max_inflight": self.config.max_inflight,
                    "max_queue_depth": self.config.max_queue_depth,
                    "discipline": self.config.discipline,
                    "queue_deadline_ms": self.config.queue_deadline_ms,
                    "shed_policy": self.config.shed_policy,
                    "degrade_watermark": self.config.degrade_watermark,
                    "tenants": sorted(self._buckets),
                },
                "queue_depth": len(self._queue),
                "inflight": self._inflight,
                "submitted": self.submitted,
                "admitted": self.admitted,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "shed_by_reason": dict(self._shed_by_reason),
                "quota_denials": dict(self._quota_denials),
                "quota_tokens": {
                    tenant: bucket.tokens
                    for tenant, bucket in sorted(self._buckets.items())
                },
                "overload_state": self._overload.state.value,
                "overload_opens": self._overload.opens,
            }
