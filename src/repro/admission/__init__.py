"""Admission control for the proxy under concurrent load.

The paper's proxy serves one query at a time; under the ROADMAP's
heavy-traffic north star the serve path must instead decide, per
arriving query, whether to run it now, queue it, degrade it, or turn
it away — and do so without ever breaking ``serve()``'s never-raises
contract.  This package owns that decision:

* :class:`~repro.admission.config.AdmissionConfig` — the knobs: queue
  bound and discipline (FIFO/LIFO + deadline drop), inflight slots,
  per-tenant token-bucket quotas, and the shed policy (``reject-new``,
  ``shed-cheapest``, ``degrade-to-tunnel``);
* :class:`~repro.admission.controller.AdmissionController` — the
  runtime gate: a bounded accept queue, token buckets, and an overload
  :class:`~repro.faults.resilience.CircuitBreaker` fed by queue-full
  sheds so sustained overflow fast-fails new arrivals for a cooldown.

Turned-away queries surface as structured ``shed`` /
``queued-timeout`` outcomes (HTTP 429/503) with full query records and
decision traces — but no cache, origin, or journal activity.
"""

from repro.admission.config import (
    DISCIPLINE_FIFO,
    DISCIPLINE_LIFO,
    DISCIPLINES,
    REASON_ADMISSION_OPEN,
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    REASON_QUOTA,
    SHED_DEGRADE_TO_TUNNEL,
    SHED_POLICIES,
    SHED_REJECT_NEW,
    SHED_SHED_CHEAPEST,
    AdmissionConfig,
    TenantQuota,
    retry_after_seconds,
)
from repro.admission.controller import (
    AdmissionController,
    AdmissionVerdict,
    QueuedRequest,
    TokenBucket,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionVerdict",
    "DISCIPLINES",
    "DISCIPLINE_FIFO",
    "DISCIPLINE_LIFO",
    "QueuedRequest",
    "REASON_ADMISSION_OPEN",
    "REASON_DEADLINE",
    "REASON_QUEUE_FULL",
    "REASON_QUOTA",
    "SHED_DEGRADE_TO_TUNNEL",
    "SHED_POLICIES",
    "SHED_REJECT_NEW",
    "SHED_SHED_CHEAPEST",
    "TenantQuota",
    "TokenBucket",
    "retry_after_seconds",
]
