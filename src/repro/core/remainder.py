"""Remainder query construction.

When a new query overlaps the cache, the proxy can answer the cached
portion locally and ask the origin only for the rest (Dar et al.'s
semantic caching, adopted in Section 3.2).  The remainder query is the
original bound query with one extra ``AND NOT <region predicate>``
conjunct per excluded cached region, rendered in statement scope so the
origin's free-SQL facility can execute it unchanged.

The excluded-region predicates are generated from the function
template's spatial semantics:

* hypersphere — ``(x1-c1)^2 + ... + (xn-cn)^2 <= r^2`` over the point
  expressions;
* hyperrect — a conjunction of ``BETWEEN`` terms;
* polytope — a conjunction of halfspace inequalities.

Exactness note: the remainder region (a base region minus a union of
holes) is represented *predicatively*, not as a new primitive shape —
sphere-minus-sphere has no closed shape in our region algebra, and the
paper's own implementation likewise ships NOT-predicates to the
SkyServer's free SQL page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.rewrite import to_statement_scope
from repro.obs.decisions import region_summary
from repro.geometry.regions import (
    ConvexPolytope,
    DifferenceRegion,
    HyperRect,
    HyperSphere,
    Region,
)
from repro.relational.expressions import (
    And,
    Between,
    BinaryOp,
    BinaryOperator,
    Expression,
    Literal,
    Not,
    conjoin,
)
from repro.sqlparser.ast import SelectStatement
from repro.templates.errors import TemplateError
from repro.templates.function_template import FunctionTemplate
from repro.templates.manager import BoundQuery


def region_predicate(
    ftemplate: FunctionTemplate, region: Region
) -> Expression:
    """A result-scope predicate equivalent to region membership.

    The free variables are the function template's point expressions
    (result attributes such as ``cx, cy, cz``).
    """
    points = ftemplate.point_exprs
    if isinstance(region, HyperSphere):
        terms = []
        for expr, center in zip(points, region.center):
            diff = BinaryOp(BinaryOperator.SUB, expr, Literal(center))
            terms.append(BinaryOp(BinaryOperator.MUL, diff, diff))
        total = terms[0]
        for term in terms[1:]:
            total = BinaryOp(BinaryOperator.ADD, total, term)
        return BinaryOp(
            BinaryOperator.LE, total, Literal(region.radius**2)
        )
    if isinstance(region, HyperRect):
        return And(
            tuple(
                Between(expr, Literal(lo), Literal(hi))
                for expr, lo, hi in zip(points, region.lows, region.highs)
            )
        )
    if isinstance(region, ConvexPolytope):
        conjuncts = []
        for half in region.halfspaces:
            total = None
            for coefficient, expr in zip(half.normal, points):
                term = BinaryOp(
                    BinaryOperator.MUL, Literal(coefficient), expr
                )
                total = (
                    term
                    if total is None
                    else BinaryOp(BinaryOperator.ADD, total, term)
                )
            conjuncts.append(
                BinaryOp(BinaryOperator.LE, total, Literal(half.offset))
            )
        return And(tuple(conjuncts))
    raise TemplateError(
        f"no SQL rendering for region type {type(region).__name__}"
    )


@dataclass(frozen=True)
class RemainderQuery:
    """A rewritten statement plus the difference region it selects."""

    statement: SelectStatement
    region: DifferenceRegion
    n_holes: int

    @property
    def sql(self) -> str:
        return self.statement.to_sql()

    def geometry(self) -> dict[str, Any]:
        """The difference region as JSON-able bounds (explain layer)."""
        return {
            "base": region_summary(self.region.base),
            "holes": [region_summary(hole) for hole in self.region.holes],
            "n_holes": self.n_holes,
        }


def build_remainder(
    bound: BoundQuery, holes: Sequence[Region]
) -> RemainderQuery:
    """The new query minus the cached regions in ``holes``.

    The returned statement keeps the original select list, join, other
    predicates, ORDER BY and TOP, and conjoins ``NOT <hole>`` for each
    excluded region (rendered in statement scope).

    TOP-N interaction: a remainder query keeps the original TOP bound —
    the remainder needs at most that many tuples — and the proxy's
    final merge re-applies ORDER BY / TOP over cache + remainder.
    """
    if not holes:
        raise TemplateError("a remainder query needs at least one hole")
    template = bound.template
    ftemplate = template.function_template
    statement = bound.statement
    exclusions = [
        Not(
            to_statement_scope(
                template, region_predicate(ftemplate, hole)
            )
        )
        for hole in holes
    ]
    where = conjoin([statement.where, *exclusions])
    rewritten = SelectStatement(
        select_items=statement.select_items,
        source=statement.source,
        joins=statement.joins,
        where=where,
        order_by=statement.order_by,
        top=statement.top,
        star=statement.star,
    )
    region = DifferenceRegion(bound.region, tuple(holes))
    return RemainderQuery(rewritten, region, len(holes))


def build_box_remainders(
    bound: BoundQuery, holes: Sequence[Region]
) -> list[SelectStatement]:
    """The remainder as several simple box queries (rect templates only).

    Instead of one query with NOT-predicates, the uncovered part of a
    *rectangular* query is decomposed into disjoint boxes
    (:func:`repro.geometry.decompose.decompose_difference`) and one
    plain region-membership query is built per box.  Some origins
    prefer several index-friendly range queries over one NOT-laden
    rewrite; the proxy's default path remains NOT-predicates, exactly
    like the paper's use of the SkyServer free-SQL page.

    Results of the returned statements may share boundary tuples (the
    boxes are closed); callers merge with key deduplication as usual.
    Raises :class:`TemplateError` when the query or any hole is not a
    hyperrectangle.
    """
    if not isinstance(bound.region, HyperRect):
        raise TemplateError(
            "box remainders need a hyperrectangular query region"
        )
    rect_holes = []
    for hole in holes:
        if not isinstance(hole, HyperRect):
            raise TemplateError(
                "box remainders need hyperrectangular cached regions"
            )
        rect_holes.append(hole)
    from repro.geometry.decompose import decompose_difference

    template = bound.template
    ftemplate = template.function_template
    statement = bound.statement
    pieces = decompose_difference(bound.region, rect_holes)
    remainders = []
    for piece in pieces:
        membership = to_statement_scope(
            template, region_predicate(ftemplate, piece)
        )
        remainders.append(
            SelectStatement(
                select_items=statement.select_items,
                source=statement.source,
                joins=statement.joins,
                where=conjoin([statement.where, membership]),
                order_by=statement.order_by,
                top=statement.top,
                star=statement.star,
            )
        )
    return remainders
