"""The caching schemes compared in the paper's evaluation.

Five configurations (Sections 3.2 and 4.2):

* ``NO_CACHE`` — a tunneling proxy ("NC"): every query forwarded.
* ``PASSIVE`` — exact-match caching only ("PC").
* ``FULL_SEMANTIC`` — the "First" active scheme: exact match, query
  containment, region containment, and general cache-intersecting
  queries via probe + remainder queries (Dar et al.).
* ``REGION_CONTAINMENT`` — the "Second" scheme: like full semantic
  caching but the only overlap handled is region containment (the new
  query's region contains cached regions); other overlaps are
  forwarded whole.
* ``CONTAINMENT_ONLY`` — the "Third" scheme: exact match and query
  containment only; every overlap is forwarded whole.  The paper's
  conclusion recommends this one as "efficient and practical".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True)
class SchemePolicy:
    """What a caching scheme is allowed to do."""

    caches: bool
    handles_containment: bool
    handles_region_containment: bool
    handles_overlap: bool

    def __post_init__(self) -> None:
        if self.handles_overlap and not self.handles_region_containment:
            raise ValueError(
                "overlap handling subsumes region containment; a scheme "
                "cannot handle general overlap without it"
            )
        if self.handles_containment and not self.caches:
            raise ValueError("an active scheme must cache")

    def describe(self) -> dict[str, bool]:
        """The capability flags, for the explain layer's decision
        traces: which cache cases this scheme was *allowed* to try."""
        return {
            "caches": self.caches,
            "handles_containment": self.handles_containment,
            "handles_region_containment": self.handles_region_containment,
            "handles_overlap": self.handles_overlap,
        }


class CachingScheme(enum.Enum):
    """The five proxy configurations of the evaluation."""

    NO_CACHE = "nc"
    PASSIVE = "pc"
    FULL_SEMANTIC = "ac-full"
    REGION_CONTAINMENT = "ac-region"
    CONTAINMENT_ONLY = "ac-containment"

    @property
    def policy(self) -> SchemePolicy:
        return _POLICIES[self]

    @property
    def is_active(self) -> bool:
        return self.policy.handles_containment


_POLICIES = {
    CachingScheme.NO_CACHE: SchemePolicy(
        caches=False,
        handles_containment=False,
        handles_region_containment=False,
        handles_overlap=False,
    ),
    CachingScheme.PASSIVE: SchemePolicy(
        caches=True,
        handles_containment=False,
        handles_region_containment=False,
        handles_overlap=False,
    ),
    CachingScheme.FULL_SEMANTIC: SchemePolicy(
        caches=True,
        handles_containment=True,
        handles_region_containment=True,
        handles_overlap=True,
    ),
    CachingScheme.REGION_CONTAINMENT: SchemePolicy(
        caches=True,
        handles_containment=True,
        handles_region_containment=True,
        handles_overlap=False,
    ),
    CachingScheme.CONTAINMENT_ONLY: SchemePolicy(
        caches=True,
        handles_containment=True,
        handles_region_containment=False,
        handles_overlap=False,
    ),
}
