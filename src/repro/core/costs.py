"""The proxy's processing cost model.

The proxy servlet's own work — request parsing, cache-description
checking, reading cached result files, local evaluation, merging, and
description maintenance — is charged to the simulated clock through
this model.  Magnitudes follow the paper's measurements: description
checking "always under 100 milliseconds", local evaluation much cheaper
than a WAN round trip but not free (the cached results are XML files
that must be read and filtered), and R-tree maintenance "more costly
than that of an array".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProxyCostModel:
    """Simulated per-operation costs of the proxy servlet."""

    parse_ms: float = 2.0
    # Cache description checking.
    check_per_array_entry_ms: float = 0.02
    check_per_rtree_node_ms: float = 0.05
    check_per_candidate_ms: float = 0.3  # exact region relation per survivor
    # Reading a cached result file and evaluating tuples against a region.
    read_per_tuple_ms: float = 0.12
    eval_per_tuple_ms: float = 0.08
    merge_per_tuple_ms: float = 0.05
    # Cache maintenance.
    store_per_kb_ms: float = 0.05
    array_update_ms: float = 0.05
    rtree_update_per_node_ms: float = 0.25
    evict_per_entry_ms: float = 0.2

    def __post_init__(self) -> None:
        for name, value in vars(self).items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative")

    def store_ms(self, n_bytes: int) -> float:
        return self.store_per_kb_ms * (n_bytes / 1024.0)
