"""Per-query records and trace-level statistics.

The paper's two metrics (Section 4.1):

* **response time** — measured at the browser emulator;
* **cache efficiency** — "the percentage of the result tuples that are
  served from the proxy cache to the total number of result tuples of
  the query", averaged arithmetically over the trace.  The paper notes
  this reveals utilization better than a hit ratio; both are reported.

Each record also keeps the proxy servlet's per-step timing breakdown
("the proxy servlet records timing information in each step of query
processing for the purpose of a detailed analysis") plus the *real*
wall-clock time of the cache-description check, which backs the paper's
"always under 100 milliseconds" claim.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field
from typing import Iterable

from repro.locking import guarded_by, named_lock, unshared


class QueryStatus(enum.Enum):
    """How the proxy disposed of a query."""

    NO_CACHE = "no-cache"  # tunneled (NC scheme)
    EXACT = "exact"  # case (a): served from an exact match
    CONTAINED = "contained"  # case (b): evaluated locally from a superset
    REGION_CONTAINMENT = "region-containment"  # case (c) special case
    OVERLAP = "overlap"  # case (c): probe + remainder
    DISJOINT = "disjoint"  # case (d): forwarded and cached
    FORWARDED = "forwarded"  # miss under a scheme that skipped the case
    FAILED = "failed"  # origin needed but unreachable / query error
    REJECTED = "rejected"  # never dispatched: admission control turned it away


#: Statuses answered entirely from the cache.
FULL_CACHE_ANSWERS = (QueryStatus.EXACT, QueryStatus.CONTAINED)


class QueryOutcome(enum.Enum):
    """Whether and how well a query was answered.

    Orthogonal to :class:`QueryStatus` (which cache case ran): the
    outcome says what the *client* got back once the origin's health
    is taken into account.
    """

    SERVED = "served"  # a full, fresh answer
    DEGRADED = "degraded"  # full answer from cache while the origin is down
    PARTIAL = "partial"  # cached portion only; the remainder was skipped
    FAILED = "failed"  # no answer: structured failure, not an exception
    SHED = "shed"  # turned away at admission (queue full / quota / overload)
    QUEUED_TIMEOUT = "queued-timeout"  # waited past its deadline, never ran


#: Outcomes that returned result tuples to the client.
ANSWERED_OUTCOMES = (
    QueryOutcome.SERVED, QueryOutcome.DEGRADED, QueryOutcome.PARTIAL,
)


# A record is only ever written by the one thread serving its query
# (the router's slow-window penalty included); aggregate readers wait
# for the run to finish, hence unshared rather than a lock.
@unshared("response_ms", "steps_ms")
@dataclass
class QueryRecord:
    """Everything measured about one query."""

    index: int
    template_id: str
    status: QueryStatus
    response_ms: float
    tuples_total: int
    tuples_from_cache: int
    result_bytes: int
    origin_bytes: int  # bytes shipped from the origin for this query
    contacted_origin: bool
    steps_ms: dict[str, float] = field(default_factory=dict)
    check_wall_ms: float = 0.0
    cache_bytes_after: int = 0
    cache_entries_after: int = 0
    outcome: QueryOutcome = QueryOutcome.SERVED
    retries: int = 0
    failure_reason: str = ""

    @property
    def answered(self) -> bool:
        """Whether the client received result tuples at all."""
        return self.outcome in ANSWERED_OUTCOMES

    def to_dict(self, include_wall: bool = True) -> dict:
        """A JSON-able view of the record.

        ``include_wall=False`` drops the real-wall-clock field, leaving
        only simulated quantities — the canonical form the determinism
        tests compare byte-for-byte across runs.
        """
        data = {
            "index": self.index,
            "template_id": self.template_id,
            "status": self.status.value,
            "outcome": self.outcome.value,
            "retries": self.retries,
            "failure_reason": self.failure_reason,
            "response_ms": self.response_ms,
            "tuples_total": self.tuples_total,
            "tuples_from_cache": self.tuples_from_cache,
            "result_bytes": self.result_bytes,
            "origin_bytes": self.origin_bytes,
            "contacted_origin": self.contacted_origin,
            "steps_ms": dict(self.steps_ms),
            "cache_bytes_after": self.cache_bytes_after,
            "cache_entries_after": self.cache_entries_after,
        }
        if include_wall:
            data["check_wall_ms"] = self.check_wall_ms
        return data

    @property
    def cache_efficiency(self) -> float:
        """Fraction of this query's result tuples served from cache.

        An empty result counts as fully served when the cache alone
        answered it and as unserved when the origin had to be asked —
        the boundary case the paper's definition leaves open.
        """
        if self.tuples_total == 0:
            return 0.0 if self.contacted_origin else 1.0
        return self.tuples_from_cache / self.tuples_total


@guarded_by("proxy.stats", "records")
class TraceStats:
    """Aggregates over a sequence of query records.

    ``add`` is the only mutator and takes the ``proxy.stats`` lock;
    the aggregate properties read the list without it (appends are
    atomic under the GIL, and the aggregates are monitoring output,
    not control flow).
    """

    def __init__(self, records: Iterable[QueryRecord] | None = None) -> None:
        self._lock = named_lock("proxy.stats")
        self.records: list[QueryRecord] = list(records or [])

    def add(self, record: QueryRecord) -> None:
        with self._lock:
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # --------------------------------------------------------- headline
    @property
    def average_response_ms(self) -> float:
        if not self.records:
            return 0.0
        return statistics.fmean(r.response_ms for r in self.records)

    @property
    def average_cache_efficiency(self) -> float:
        if not self.records:
            return 0.0
        return statistics.fmean(r.cache_efficiency for r in self.records)

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries answered without contacting the origin."""
        if not self.records:
            return 0.0
        hits = sum(1 for r in self.records if not r.contacted_origin)
        return hits / len(self.records)

    @property
    def answered_fraction(self) -> float:
        """Fraction of queries that returned tuples (served, degraded,
        or partial) — the availability headline under origin faults."""
        if not self.records:
            return 0.0
        answered = sum(1 for r in self.records if r.answered)
        return answered / len(self.records)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    def outcome_fractions(self) -> dict[QueryOutcome, float]:
        counts: dict[QueryOutcome, int] = {}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        total = len(self.records) or 1
        return {outcome: count / total for outcome, count in counts.items()}

    def outcome_counts(self) -> dict[QueryOutcome, int]:
        counts: dict[QueryOutcome, int] = {}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    def status_fractions(self) -> dict[QueryStatus, float]:
        counts: dict[QueryStatus, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        total = len(self.records) or 1
        return {status: count / total for status, count in counts.items()}

    def response_percentile(self, fraction: float) -> float:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"percentile fraction out of range: {fraction}")
        if not self.records:
            return 0.0
        ordered = sorted(r.response_ms for r in self.records)
        position = min(
            len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
        )
        return ordered[position]

    # ------------------------------------------------------- breakdowns
    def average_step_ms(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for record in self.records:
            for step, value in record.steps_ms.items():
                totals[step] = totals.get(step, 0.0) + value
        count = len(self.records) or 1
        return {step: value / count for step, value in totals.items()}

    def max_check_wall_ms(self) -> float:
        if not self.records:
            return 0.0
        return max(r.check_wall_ms for r in self.records)

    def check_wall_percentile(self, fraction: float) -> float:
        """Percentile of the *real* description-check wall clock,
        over the queries that actually ran a check."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"percentile fraction out of range: {fraction}")
        checked = sorted(
            r.check_wall_ms for r in self.records if "check" in r.steps_ms
        )
        if not checked:
            return 0.0
        position = min(
            len(checked) - 1, max(0, round(fraction * (len(checked) - 1)))
        )
        return checked[position]

    def check_wall_summary(self) -> dict[str, float]:
        """p50/p95/max of the description-check wall clock — the
        figures backing the paper's "always under 100 ms" claim."""
        return {
            "p50": self.check_wall_percentile(0.50),
            "p95": self.check_wall_percentile(0.95),
            "max": self.max_check_wall_ms(),
        }

    def first(self, n: int) -> "TraceStats":
        """Stats over the first ``n`` queries (Figure 5 uses the first
        10,000 of the trace)."""
        return TraceStats(self.records[:n])
