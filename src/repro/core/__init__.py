"""The function proxy: the paper's primary contribution.

Components mirror the architecture of the paper's Figure 4:

* :class:`~repro.core.proxy.FunctionProxy` — the servlet: request
  parsing, query processing, response assembly;
* :class:`~repro.templates.manager.TemplateManager` — registered
  function templates, query templates, and info files;
* :class:`~repro.core.cache.CacheManager` — cached query results plus
  the *cache description* (an array or an R-tree over cached regions);
* :mod:`repro.core.schemes` — the caching schemes compared in the
  evaluation: no cache, passive cache, and the three active schemes
  (full semantic caching; containment + region containment; pure
  containment);
* :mod:`repro.core.evaluation` / :mod:`repro.core.remainder` — local
  evaluation of subsumed queries over cached results, and remainder
  query construction for cache-intersecting queries.
"""

from repro.core.cache import CacheEntry, CacheManager
from repro.core.costs import ProxyCostModel
from repro.core.description import (
    ArrayDescription,
    CacheDescription,
    RTreeDescription,
)
from repro.core.proxy import FunctionProxy, ProxyResponse
from repro.core.rtree import RTree
from repro.core.schemes import CachingScheme, SchemePolicy
from repro.core.stats import QueryRecord, TraceStats
from repro.core.store import FileResultStore, MemoryResultStore

__all__ = [
    "ArrayDescription",
    "CacheDescription",
    "CacheEntry",
    "CacheManager",
    "CachingScheme",
    "FileResultStore",
    "FunctionProxy",
    "MemoryResultStore",
    "ProxyCostModel",
    "ProxyResponse",
    "QueryRecord",
    "RTree",
    "RTreeDescription",
    "SchemePolicy",
    "TraceStats",
]
