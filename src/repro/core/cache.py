"""The proxy's cache manager.

Stores whole query results keyed by the query that produced them,
enforces a byte budget with LRU replacement, and keeps the *cache
description* — the per-template metadata (regions and signatures) the
query processor probes — synchronized with the stored results.

Design notes
------------
* The unit of caching is one query's full result (as in the paper,
  which stores one XML result file per cached query).
* An entry whose producing query carried TOP-N and hit the limit is
  marked ``truncated``: its result is a prefix of the true region
  result, so it can serve *exact matches only*, never containment.
* LRU is an assumption — the paper does not name its replacement
  policy; DESIGN.md records the choice, and the policy is pluggable
  (:mod:`repro.core.replacement`) so the replacement ablation can
  compare alternatives.
* **Locking**: every mutation happens under the ``proxy.cache`` named
  lock (reentrant), taken by the public mutators (``store`` /
  ``clear`` / ``remove`` / ``touch``); the private helpers are only
  ever called from inside those scopes, which the concurrency analyzer
  verifies (see DESIGN.md, FP4xx).  The cache *description* is owned
  by this manager and mutated only under the same lock — that
  ownership convention is why ``core/description.py`` itself carries
  no registrations.  Multi-step lookups also take the lock:
  ``exact_match`` reads ``_by_key`` and ``_entries`` in one critical
  section (a lock-free reader could see the gap a concurrent eviction
  opens between the two dicts), and ``exact_match_pinned`` fetches the
  stored result in the same section so the entry cannot be evicted
  out from under the read.  ``entries()`` snapshots under the lock so
  callers can iterate while another thread stores.  Single-dict reads
  (``__len__``, ``entry``) stay lock-free — CPython dict gets are
  atomic.  Candidates handed out by the description *can* lose a race
  with eviction after the probe returns; readers of their results must
  tolerate :class:`~repro.core.store.ResultStoreError` (the proxy's
  serve path falls back to forwarding).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.costs import ProxyCostModel
from repro.core.description import CacheDescription
from repro.core.store import MemoryResultStore
from repro.geometry.regions import Region
from repro.locking import guarded_by, named_lock, unshared
from repro.obs.decisions import EvictionRecord
from repro.relational.result import ResultTable
from repro.templates.manager import BoundQuery


class CacheError(Exception):
    """Cache misuse (unknown entries, double insertion)."""


@guarded_by("proxy.cache", "last_used", "access_count")
@dataclass(eq=False)
class CacheEntry:
    """One cached query result's metadata.

    Identity (not value) equality: two entries are the same only if they
    are the same object; ``entry_id`` is the stable handle.  The result
    tuples themselves live in the cache manager's *result store* (the
    paper keeps them as XML files on disk); ``result`` fetches them,
    while ``row_count`` and ``byte_size`` are metadata kept here so the
    proxy can rank candidates without touching storage.
    """

    entry_id: int
    template_id: str
    cache_key: tuple
    region: Region
    signature: str
    truncated: bool
    byte_size: int
    row_count: int
    store: "object"
    last_used: int = 0
    access_count: int = 0

    @property
    def result(self) -> ResultTable:
        """The stored result (a storage read for file-backed stores)."""
        return self.store.get(self.entry_id)

    def __repr__(self) -> str:
        return (
            f"<CacheEntry {self.entry_id} {self.template_id} "
            f"{self.row_count} rows>"
        )


@unshared(
    "stored_bytes", "evicted_entries", "description_work", "evictions"
)
@dataclass
class MaintenanceReport:
    """What a cache mutation cost, for the simulated clock.

    ``evictions`` additionally names each victim with the replacement
    policy's rationale, feeding the explain layer's decision traces;
    ``evicted_entries`` stays the count the cost model charges on.
    """

    stored_bytes: int = 0
    evicted_entries: int = 0
    description_work: float = 0.0  # model-specific units (entries/nodes)
    evictions: list[EvictionRecord] = field(default_factory=list)

    def charge_ms(self, costs: ProxyCostModel) -> float:
        return (
            costs.store_ms(self.stored_bytes)
            + costs.evict_per_entry_ms * self.evicted_entries
            + self.description_work
        )


@guarded_by(
    "proxy.cache",
    "description",
    "_entries",
    "_by_key",
    "_ids",
    "_tick",
    "current_bytes",
    "insertions",
    "evictions",
)
class CacheManager:
    """Byte-budgeted LRU store of query results with a description."""

    def __init__(
        self,
        description: CacheDescription,
        max_bytes: int | None = None,
        costs: ProxyCostModel | None = None,
        result_store=None,
        policy=None,
        observer=None,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise CacheError(f"negative cache budget: {max_bytes}")
        # Imported here: replacement builds on CacheEntry from this module.
        from repro.core.replacement import LruPolicy

        self.description = description
        self.max_bytes = max_bytes
        self.costs = costs or ProxyCostModel()
        self.result_store = result_store or MemoryResultStore()
        self.policy = policy or LruPolicy()
        #: Optional observability hook with a ``cache_event(kind,
        #: n_bytes, current_bytes, entries)`` method (see
        #: :class:`repro.obs.instrument.ProxyInstrumentation`).
        self.observer = observer
        #: Optional durability hook with ``admitted(entry)``,
        #: ``removed(entry, reason)`` and ``cleared(removed)`` methods
        #: (see :class:`repro.persistence.persister.CachePersister`).
        #: Reasons are ``evict`` (budget pressure), ``consolidate``
        #: (region containment) and ``replace`` (identical query
        #: re-admitted); a full flush is one ``cleared`` record, not a
        #: stream of per-entry removals.
        self.mutation_log = None  # lock-class: CachePersister
        self._lock = named_lock("proxy.cache")
        self._entries: dict[int, CacheEntry] = {}
        self._by_key: dict[tuple, int] = {}
        self._ids = itertools.count(1)
        self._tick = itertools.count(1)
        self.current_bytes = 0
        self.insertions = 0
        self.evictions = 0

    # ------------------------------------------------------------ lookup
    def __len__(self) -> int:
        return len(self._entries)

    def exact_match(self, bound: BoundQuery) -> CacheEntry | None:
        """The entry produced by an identical query, if cached."""
        with self._lock:
            entry_id = self._by_key.get(bound.cache_key())
            if entry_id is None:
                return None
            return self._entries[entry_id]

    def exact_match_pinned(
        self, bound: BoundQuery
    ) -> tuple[CacheEntry, ResultTable] | None:
        """Exact match with its stored result read in the same critical
        section.

        The serve path uses this instead of ``exact_match`` +
        ``entry.result``: between those two steps a concurrent
        ``store`` could evict the entry and drop its stored result,
        turning the read into a ``ResultStoreError``.  Pinning the
        result under ``proxy.cache`` closes that window (eviction
        itself runs under the same lock)."""
        with self._lock:
            entry_id = self._by_key.get(bound.cache_key())
            if entry_id is None:
                return None
            entry = self._entries[entry_id]
            return entry, entry.result

    def entries(self) -> Iterable[CacheEntry]:
        with self._lock:  # snapshot: callers iterate without the lock
            return list(self._entries.values())

    def entry(self, entry_id: int) -> CacheEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise CacheError(f"unknown cache entry {entry_id}") from None

    def touch(self, entry: CacheEntry) -> None:
        """Record a use, for the replacement policy.

        A no-op for entries no longer cached: a candidate handed out
        by the description can lose the race with a concurrent
        eviction, and the policy must not resurrect bookkeeping for a
        dead entry."""
        with self._lock:
            if entry.entry_id not in self._entries:
                return
            entry.last_used = next(self._tick)
            entry.access_count += 1
            self.policy.on_access(entry)

    # ------------------------------------------------------------- store
    def store(
        self,
        bound: BoundQuery,
        result: ResultTable,
        signature: str,
        truncated: bool,
    ) -> tuple[CacheEntry | None, MaintenanceReport]:
        """Cache a query result, evicting LRU entries to fit.

        Returns ``(entry, report)``; ``entry`` is None when the result
        alone exceeds the whole budget (then nothing is cached — the
        paper's cache stores whole files or nothing).
        """
        report = MaintenanceReport()
        with self._lock:
            key = bound.cache_key()
            existing = self._by_key.get(key)
            if existing is not None:
                # Identical query raced in (e.g. after an eviction);
                # replace.
                old = self._entries[existing]
                report.description_work += self._remove(old)
                self._log_removed(old, "replace")
            size = result.byte_size()
            if self.max_bytes is not None and size > self.max_bytes:
                return None, report
            report.description_work += self._make_room(size, report)
            entry = CacheEntry(
                entry_id=next(self._ids),
                template_id=bound.template_id,
                cache_key=key,
                region=bound.region,
                signature=signature,
                truncated=truncated,
                byte_size=size,
                row_count=len(result),
                store=self.result_store,
                last_used=next(self._tick),
            )
            self.result_store.put(entry.entry_id, result)
            self._entries[entry.entry_id] = entry
            self._by_key[key] = entry.entry_id
            self.policy.on_insert(entry)
            self.current_bytes += size
            self.insertions += 1
            report.stored_bytes = size
            report.description_work += self.description.add(entry)
            self._notify("insert", size)
            if self.mutation_log is not None:
                self.mutation_log.admitted(entry)
            return entry, report

    def clear(self) -> int:
        """Drop every entry (origin data-version change); returns the
        number of entries removed."""
        with self._lock:
            removed = 0
            for entry in list(self._entries.values()):
                self._remove(entry)
                removed += 1
            if removed:
                self._notify("clear", 0)
                if self.mutation_log is not None:
                    self.mutation_log.cleared(removed)
            return removed

    def remove(self, entry: CacheEntry) -> MaintenanceReport:
        """Remove a specific entry (region-containment consolidation).

        Idempotent: consolidation may target an entry that a concurrent
        eviction (making room for the merged result) already removed.
        """
        report = MaintenanceReport()
        with self._lock:
            if entry.entry_id in self._entries:
                report.description_work += self._remove(entry)
                self._notify("remove", entry.byte_size)
                self._log_removed(entry, "consolidate")
            return report

    # ----------------------------------------------------------- private
    def _make_room(self, incoming: int, report: MaintenanceReport) -> float:
        if self.max_bytes is None:
            return 0.0
        work = 0.0
        while self.current_bytes + incoming > self.max_bytes and self._entries:
            victim = self.policy.victim(self._entries.values())
            # Rationale before removal: policies may consult bookkeeping
            # that on_evict tears down.
            report.evictions.append(
                EvictionRecord(
                    entry_id=victim.entry_id,
                    policy=self.policy.name,
                    rationale=self.policy.rationale(victim),
                    byte_size=victim.byte_size,
                )
            )
            work += self._remove(victim)
            report.evicted_entries += 1
            self.evictions += 1
            self._notify("evict", victim.byte_size)
            self._log_removed(victim, "evict")
        return work

    def _log_removed(self, entry: CacheEntry, reason: str) -> None:
        if self.mutation_log is not None:
            self.mutation_log.removed(entry, reason)

    def _notify(self, kind: str, n_bytes: int) -> None:
        if self.observer is not None:
            self.observer.cache_event(
                kind, n_bytes, self.current_bytes, len(self._entries)
            )

    def _remove(self, entry: CacheEntry) -> float:
        # Key index first: a reader that found the key must still find
        # the entry (the inverse order would open a KeyError window for
        # any future lock-free lookup).
        self._by_key.pop(entry.cache_key, None)
        del self._entries[entry.entry_id]
        self.current_bytes -= entry.byte_size
        self.result_store.remove(entry.entry_id)
        self.policy.on_evict(entry)
        return self.description.remove(entry)
