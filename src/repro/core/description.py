"""Cache descriptions: the metadata structure probed per query.

The *cache description* (paper Figure 4) records, for every cached
result, the region its query selected.  Answering a new query starts by
probing the description for cached regions that could relate to the new
region.  The paper compares two implementations:

* **array** (``ACNR``) — a flat list, linearly scanned;
* **R-tree** (``ACR``) — bounding boxes indexed in an R-tree.

Both return *candidates*; the query processor then runs the exact
region-relation check on each.  Each returns the amount of simulated
work its probe or update performed (already converted to milliseconds
via the supplied cost model), so the two implementations are charged
differently exactly as the paper's measurements show: the R-tree visits
fewer entries per probe but pays more per maintenance operation.

Entries of different *templates* live in disjoint sub-descriptions:
regions from different templates inhabit different coordinate spaces
(a 3-d chord sphere vs a 2-d sky rectangle) and are never compared.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.core.costs import ProxyCostModel
from repro.core.rtree import RTree
from repro.geometry.regions import Region

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.cache import CacheEntry


class CacheDescription(Protocol):
    """Probe-and-maintain interface shared by array and R-tree."""

    #: Short implementation tag ("array", "rtree"); the profiler names
    #: its probe stage ``probe.<kind>`` after it.
    kind: str

    def add(self, entry: "CacheEntry") -> float:
        """Index an entry; returns simulated maintenance milliseconds."""

    def remove(self, entry: "CacheEntry") -> float:
        """Unindex an entry; returns simulated maintenance milliseconds."""

    def candidates(
        self, template_id: str, region: Region
    ) -> tuple[list["CacheEntry"], float]:
        """Entries of ``template_id`` possibly related to ``region``.

        Returns ``(candidates, probe_ms)``.  May overapproximate (the
        caller runs exact relation checks) but must never miss an entry
        whose region intersects ``region``.
        """


class ArrayDescription:
    """Flat per-template entry lists, scanned linearly (ACNR)."""

    kind = "array"

    def __init__(self, costs: ProxyCostModel | None = None) -> None:
        self.costs = costs or ProxyCostModel()
        self._by_template: dict[str, dict[int, "CacheEntry"]] = {}

    def add(self, entry: "CacheEntry") -> float:
        bucket = self._by_template.setdefault(entry.template_id, {})
        bucket[entry.entry_id] = entry
        return self.costs.array_update_ms

    def remove(self, entry: "CacheEntry") -> float:
        bucket = self._by_template.get(entry.template_id, {})
        bucket.pop(entry.entry_id, None)
        return self.costs.array_update_ms

    def candidates(
        self, template_id: str, region: Region
    ) -> tuple[list["CacheEntry"], float]:
        bucket = self._by_template.get(template_id, {})
        entries = list(bucket.values())
        # Linear scan: every entry of the template is touched; the cheap
        # bounding-box rejection below mirrors the real implementation's
        # per-entry comparison before the exact check.
        probe_ms = self.costs.check_per_array_entry_ms * len(entries)
        box = region.bounding_box()
        survivors = [
            entry
            for entry in entries
            if entry.region.bounding_box().intersect(box) is not None
        ]
        return survivors, probe_ms


class RTreeDescription:
    """Per-template R-trees over region bounding boxes (ACR)."""

    kind = "rtree"

    def __init__(
        self, costs: ProxyCostModel | None = None, max_entries: int = 8
    ) -> None:
        self.costs = costs or ProxyCostModel()
        self.max_entries = max_entries
        self._trees: dict[str, RTree] = {}
        self._entries: dict[str, dict[int, "CacheEntry"]] = {}

    def _tree_for(self, entry: "CacheEntry") -> RTree:
        tree = self._trees.get(entry.template_id)
        if tree is None:
            tree = RTree(entry.region.dims, max_entries=self.max_entries)
            self._trees[entry.template_id] = tree
        return tree

    def add(self, entry: "CacheEntry") -> float:
        tree = self._tree_for(entry)
        tree.insert(entry.entry_id, entry.region.bounding_box())
        self._entries.setdefault(entry.template_id, {})[
            entry.entry_id
        ] = entry
        return self.costs.rtree_update_per_node_ms * max(
            tree.nodes_visited, 1
        )

    def remove(self, entry: "CacheEntry") -> float:
        tree = self._trees.get(entry.template_id)
        if tree is None or entry.entry_id not in tree:
            return 0.0
        tree.delete(entry.entry_id)
        self._entries.get(entry.template_id, {}).pop(entry.entry_id, None)
        return self.costs.rtree_update_per_node_ms * max(
            tree.nodes_visited, 1
        )

    def candidates(
        self, template_id: str, region: Region
    ) -> tuple[list["CacheEntry"], float]:
        tree = self._trees.get(template_id)
        if tree is None:
            return [], 0.0
        ids = tree.search(region.bounding_box())
        probe_ms = self.costs.check_per_rtree_node_ms * tree.nodes_visited
        bucket = self._entries.get(template_id, {})
        return [bucket[entry_id] for entry_id in ids], probe_ms
