"""Result stores: where cached query results live.

The paper's proxy keeps each cached query's result as an XML file on
disk ("Query Result Files" in Figure 4) and re-reads the file whenever
the cache answers a query.  Two stores implement that contract:

* :class:`MemoryResultStore` — results held in memory; the default,
  and what the simulated ``read_per_tuple_ms`` charge models.
* :class:`FileResultStore` — results serialized to one XML file per
  entry under a directory, parsed back on every access; byte-for-byte
  the paper's storage scheme.  Slower in real time, identical in
  behaviour — the equivalence tests run against both.

Stores hold results by cache-entry id; the cache manager owns the
lifecycle (put on store, remove on eviction).
"""

from __future__ import annotations

from pathlib import Path

from repro.persistence.atomic import atomic_write_text
from repro.relational.result import ResultTable


class ResultStoreError(Exception):
    """Missing entries or unusable storage directories."""


class MemoryResultStore:
    """In-memory result storage."""

    def __init__(self) -> None:
        self._results: dict[int, ResultTable] = {}

    def put(self, entry_id: int, result: ResultTable) -> None:
        self._results[entry_id] = result

    def get(self, entry_id: int) -> ResultTable:
        try:
            return self._results[entry_id]
        except KeyError:
            raise ResultStoreError(
                f"no stored result for entry {entry_id}"
            ) from None

    def remove(self, entry_id: int) -> None:
        self._results.pop(entry_id, None)


class FileResultStore:
    """One XML result file per cache entry, re-parsed on access."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ResultStoreError(
                f"cannot create result directory {self.directory}: {exc}"
            ) from None

    def _path(self, entry_id: int) -> Path:
        return self.directory / f"entry-{entry_id}.xml"

    def put(self, entry_id: int, result: ResultTable) -> None:
        # Atomic so a crash mid-write never leaves a half-parsed result
        # file behind for warm-restart recovery to trip over.
        atomic_write_text(self._path(entry_id), result.to_xml())

    def get(self, entry_id: int) -> ResultTable:
        path = self._path(entry_id)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise ResultStoreError(
                f"no stored result file for entry {entry_id}"
            ) from None
        return ResultTable.from_xml(text)

    def remove(self, entry_id: int) -> None:
        self._path(entry_id).unlink(missing_ok=True)
