"""Local evaluation of queries over cached results.

The paper (Section 3.2): "the proxy evaluates the new query by
selecting the cached result tuples that represent points falling into
the multi-dimensional region of the new query.  In essence, the
evaluation of a subsumed query becomes that of a spatial region
selection query over cached results."

The evaluator also implements the *probe query* of the overlap case —
extracting, from a set of overlapping cache entries, the tuples that
fall into the new query's region — and the final ORDER BY / TOP-N the
query template may carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.cache import CacheEntry
from repro.core.rewrite import to_result_scope
from repro.geometry.regions import Region
from repro.relational.result import ResultTable
from repro.templates.manager import BoundQuery


@dataclass(frozen=True)
class EvaluationOutcome:
    """A locally produced result plus the work it took.

    ``tuples_read`` counts every cached tuple touched;
    ``tuples_evaluated`` counts only those needing the per-tuple region
    membership test — an entry whose whole region lies inside the new
    query's region is copied without testing (its tuples are inside by
    construction), which makes the region-containment probe cheaper
    than a general overlap probe.
    """

    result: ResultTable
    tuples_read: int
    tuples_evaluated: int


class LocalEvaluator:
    """Region-selection evaluation over cached result tables."""

    def select_in_region(
        self, bound: BoundQuery, entries: Iterable[CacheEntry]
    ) -> EvaluationOutcome:
        """Tuples of ``entries`` that fall inside the new query's region.

        Deduplicates on the template's key column (overlapping cached
        regions can share tuples).  Does *not* apply ORDER BY / TOP —
        callers finish with :meth:`finalize` once all sources (cache
        and, for overlap, the origin's remainder) are merged.
        """
        template = bound.template
        ftemplate = template.function_template
        region = bound.region
        key_column = template.key_column

        entries = list(entries)
        tuples_read = 0
        tuples_evaluated = 0
        collected: ResultTable | None = None
        for entry in entries:
            tuples_read += len(entry.result)
            if region.contains_region(entry.region):
                kept = entry.result  # fully subsumed: no per-tuple test
            else:
                tuples_evaluated += len(entry.result)
                kept = self._filter_by_region(entry.result, ftemplate, region)
            if collected is None:
                collected = kept
            else:
                collected = collected.merge_dedup(kept, key_column)
        if collected is None:
            raise ValueError("select_in_region needs at least one entry")
        return EvaluationOutcome(collected, tuples_read, tuples_evaluated)

    @staticmethod
    def _filter_by_region(
        result: ResultTable, ftemplate, region: Region
    ) -> ResultTable:
        names = [name.lower() for name in result.column_names]
        kept_rows = []
        for row in result.rows:
            env = dict(zip(names, row))
            if region.contains_point(ftemplate.point_of(env)):
                kept_rows.append(row)
        return ResultTable(result.schema, kept_rows)

    def finalize(self, bound: BoundQuery, result: ResultTable) -> ResultTable:
        """Apply the query's ORDER BY and TOP-N in result scope."""
        statement = bound.statement
        if statement.order_by:
            names = [name.lower() for name in result.column_names]
            rows = list(result.rows)
            for item in reversed(statement.order_by):
                expr = to_result_scope(bound.template, item.expression)
                rows.sort(
                    key=lambda row: self._sort_key(
                        expr, dict(zip(names, row))
                    ),
                    reverse=item.descending,
                )
            result = ResultTable(result.schema, rows)
        if statement.top is not None:
            result = result.top_n(statement.top)
        return result

    @staticmethod
    def _sort_key(expr, env):
        value = expr.evaluate(env)
        return (value is None, value)
