"""An R-tree over bounding boxes (Guttman, 1984).

The proxy's *cache description* can be indexed by an R-tree ("ACR" in
the paper's Figure 5) instead of a flat array ("ACNR").  The paper finds
the R-tree does not help — the description is small enough that linear
scan wins once maintenance cost is counted — and this implementation
exists to reproduce exactly that comparison, so it reports the node
visits and restructure operations the cost model charges for.

Standard Guttman R-tree: quadratic split, least-enlargement subtree
choice, condense-on-delete with reinsertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.geometry.regions import HyperRect


class RTreeError(Exception):
    """Structural misuse: duplicate ids, unknown deletions, bad arity."""


@dataclass
class _Node:
    leaf: bool
    entries: list["_Entry"] = field(default_factory=list)
    parent: "_Node | None" = None

    def mbr(self) -> HyperRect:
        box = self.entries[0].box
        for entry in self.entries[1:]:
            box = box.union_box(entry.box)
        return box


@dataclass
class _Entry:
    box: HyperRect
    child: "_Node | None" = None  # internal entries
    key: Any = None  # leaf entries


def _area(box: HyperRect) -> float:
    area = 1.0
    for length in box.side_lengths():
        area *= max(length, 0.0)
    return area


def _enlargement(box: HyperRect, extra: HyperRect) -> float:
    return _area(box.union_box(extra)) - _area(box)


class RTree:
    """R-tree mapping opaque keys to bounding boxes.

    ``max_entries``/``min_entries`` follow Guttman's M and m.  The tree
    tracks ``nodes_visited`` (reset per operation) so the proxy cost
    model can charge search and maintenance work, and
    ``maintenance_ops`` cumulative splits/condenses for diagnostics.
    """

    def __init__(self, dims: int, max_entries: int = 8) -> None:
        if dims < 1:
            raise RTreeError(f"dims must be positive: {dims}")
        if max_entries < 4:
            raise RTreeError("max_entries must be at least 4")
        self.dims = dims
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2 - 1)
        self._root = _Node(leaf=True)
        self._boxes: dict[Any, HyperRect] = {}
        self.nodes_visited = 0
        self.maintenance_ops = 0

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, key: Any) -> bool:
        return key in self._boxes

    # ------------------------------------------------------------ search
    def search(self, box: HyperRect) -> list[Any]:
        """Keys of all entries whose box intersects ``box``.

        Sets ``nodes_visited`` to the number of tree nodes touched, the
        quantity the proxy cost model charges for an indexed check.
        """
        self._check_dims(box)
        self.nodes_visited = 0
        found: list[Any] = []
        self._search(self._root, box, found)
        return found

    def _search(self, node: _Node, box: HyperRect, found: list[Any]) -> None:
        self.nodes_visited += 1
        for entry in node.entries:
            if entry.box.intersect(box) is None:
                continue
            if node.leaf:
                found.append(entry.key)
            else:
                self._search(entry.child, box, found)

    def all_keys(self) -> Iterator[Any]:
        return iter(self._boxes)

    # ------------------------------------------------------------ insert
    def insert(self, key: Any, box: HyperRect) -> None:
        self._check_dims(box)
        if key in self._boxes:
            raise RTreeError(f"duplicate key {key!r}")
        self._boxes[key] = box
        self.nodes_visited = 0
        self._insert_entry(_Entry(box=box, key=key), into_leaf=True)

    def _insert_entry(self, entry: _Entry, into_leaf: bool) -> None:
        node = self._choose_node(entry.box, into_leaf)
        node.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = node
        if len(node.entries) > self.max_entries:
            self._split(node)

    def _choose_node(self, box: HyperRect, into_leaf: bool) -> _Node:
        node = self._root
        while not node.leaf:
            self.nodes_visited += 1
            if not into_leaf:
                # Subtree insertion (re-insert after condense) targets the
                # level above the subtree's height; for simplicity we only
                # re-insert leaf entries, so this branch never triggers.
                raise RTreeError("internal re-insertion is not supported")
            best = min(
                node.entries,
                key=lambda e: (_enlargement(e.box, box), _area(e.box)),
            )
            best.box = best.box.union_box(box)
            node = best.child
        self.nodes_visited += 1
        return node

    # ------------------------------------------------------------- split
    def _split(self, node: _Node) -> None:
        self.maintenance_ops += 1
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [seed_a]
        group_b = [seed_b]
        box_a = seed_a.box
        box_b = seed_b.box
        remaining = [e for e in entries if e is not seed_a and e is not seed_b]
        while remaining:
            # Guttman's "pick next": the entry with the greatest
            # preference for one group.
            need_a = self.min_entries - len(group_a)
            need_b = self.min_entries - len(group_b)
            if need_a >= len(remaining):
                group_a.extend(remaining)
                for entry in remaining:
                    box_a = box_a.union_box(entry.box)
                remaining = []
                break
            if need_b >= len(remaining):
                group_b.extend(remaining)
                for entry in remaining:
                    box_b = box_b.union_box(entry.box)
                remaining = []
                break
            best = max(
                remaining,
                key=lambda e: abs(
                    _enlargement(box_a, e.box) - _enlargement(box_b, e.box)
                ),
            )
            remaining.remove(best)
            if _enlargement(box_a, best.box) <= _enlargement(box_b, best.box):
                group_a.append(best)
                box_a = box_a.union_box(best.box)
            else:
                group_b.append(best)
                box_b = box_b.union_box(best.box)

        node.entries = group_a
        sibling = _Node(leaf=node.leaf, entries=group_b, parent=node.parent)
        for entry in group_b:
            if entry.child is not None:
                entry.child.parent = sibling

        if node.parent is None:
            new_root = _Node(leaf=False)
            for child in (node, sibling):
                child.parent = new_root
                new_root.entries.append(
                    _Entry(box=child.mbr(), child=child)
                )
            self._root = new_root
            return
        parent = node.parent
        self._refresh_parent_box(node)
        parent.entries.append(_Entry(box=sibling.mbr(), child=sibling))
        if len(parent.entries) > self.max_entries:
            self._split(parent)

    def _pick_seeds(self, entries: list[_Entry]) -> tuple[_Entry, _Entry]:
        worst_pair = (entries[0], entries[1])
        worst_waste = float("-inf")
        for i, a in enumerate(entries):
            for b in entries[i + 1:]:
                waste = (
                    _area(a.box.union_box(b.box)) - _area(a.box) - _area(b.box)
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (a, b)
        return worst_pair

    # ------------------------------------------------------------ delete
    def delete(self, key: Any) -> None:
        box = self._boxes.pop(key, None)
        if box is None:
            raise RTreeError(f"unknown key {key!r}")
        self.nodes_visited = 0
        leaf = self._find_leaf(self._root, key, box)
        if leaf is None:
            raise RTreeError(f"key {key!r} missing from tree structure")
        leaf.entries = [e for e in leaf.entries if e.key != key]
        self._condense(leaf)
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child
            self._root.parent = None

    def _find_leaf(self, node: _Node, key: Any, box: HyperRect) -> _Node | None:
        self.nodes_visited += 1
        if node.leaf:
            if any(entry.key == key for entry in node.entries):
                return node
            return None
        for entry in node.entries:
            if entry.box.intersect(box) is not None:
                found = self._find_leaf(entry.child, key, box)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: list[_Entry] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                self.maintenance_ops += 1
                parent.entries = [
                    e for e in parent.entries if e.child is not node
                ]
                if node.leaf:
                    orphans.extend(node.entries)
                else:
                    orphans.extend(self._collect_leaf_entries(node))
            else:
                self._refresh_parent_box(node)
            node = parent
        if self._root.leaf and not self._root.entries and orphans:
            # The whole tree condensed away; rebuild from orphans.
            self._root = _Node(leaf=True)
        for entry in orphans:
            self._insert_entry(entry, into_leaf=True)

    def _collect_leaf_entries(self, node: _Node) -> list[_Entry]:
        if node.leaf:
            return list(node.entries)
        collected: list[_Entry] = []
        for entry in node.entries:
            collected.extend(self._collect_leaf_entries(entry.child))
        return collected

    def _refresh_parent_box(self, node: _Node) -> None:
        parent = node.parent
        if parent is None:
            return
        for entry in parent.entries:
            if entry.child is node and node.entries:
                entry.box = node.mbr()

    # ------------------------------------------------------------- misc
    def _check_dims(self, box: HyperRect) -> None:
        if box.dims != self.dims:
            raise RTreeError(
                f"{box.dims}-d box in a {self.dims}-d tree"
            )

    def check_invariants(self) -> None:
        """Validate structure; used by property tests."""
        keys = set()
        self._check_node(self._root, keys, is_root=True)
        if keys != set(self._boxes):
            raise RTreeError("tree keys disagree with the key map")

    def _check_node(self, node: _Node, keys: set, is_root: bool) -> None:
        if not is_root and not (
            self.min_entries <= len(node.entries) <= self.max_entries
        ):
            raise RTreeError(
                f"node has {len(node.entries)} entries, expected "
                f"[{self.min_entries}, {self.max_entries}]"
            )
        if len(node.entries) > self.max_entries:
            raise RTreeError("node overflow")
        for entry in node.entries:
            if node.leaf:
                if entry.key in keys:
                    raise RTreeError(f"duplicate key {entry.key!r} in tree")
                keys.add(entry.key)
            else:
                child = entry.child
                if child.parent is not node:
                    raise RTreeError("broken parent pointer")
                child_mbr = child.mbr()
                for lo, hi, clo, chi in zip(
                    entry.box.lows,
                    entry.box.highs,
                    child_mbr.lows,
                    child_mbr.highs,
                ):
                    if clo < lo - 1e-9 or chi > hi + 1e-9:
                        raise RTreeError("entry box does not cover child")
                self._check_node(child, keys, is_root=False)
