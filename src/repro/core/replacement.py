"""Cache replacement policies.

The paper never names its replacement policy; DESIGN.md records LRU as
this reproduction's default assumption.  To let that assumption be
*tested* rather than trusted, replacement is pluggable, and the
replacement ablation bench replays the trace under each policy:

* :class:`LruPolicy` — evict the least recently used entry (default);
* :class:`FifoPolicy` — evict the oldest entry;
* :class:`LfuPolicy` — evict the least frequently used entry
  (ties broken by recency);
* :class:`LargestFirstPolicy` — evict the biggest entry (classic web
  caching heuristic: many small objects beat one large one);
* :class:`GreedyDualSizePolicy` — Cao & Irani's GreedyDual-Size with
  uniform miss cost: each entry carries a credit ``L + 1/size``; the
  minimum-credit entry is evicted and its credit becomes the new
  inflation level ``L``.

A policy observes insertions, accesses, and evictions, and chooses a
victim among live entries; the cache manager owns everything else.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.cache import CacheEntry


class ReplacementPolicy:
    """Base policy: observation hooks plus victim selection."""

    name = "abstract"

    def on_insert(self, entry: CacheEntry) -> None:
        """A new entry was cached."""

    def on_access(self, entry: CacheEntry) -> None:
        """An entry served (part of) a query."""

    def on_evict(self, entry: CacheEntry) -> None:
        """An entry left the cache (eviction or consolidation)."""

    def victim(self, entries: Iterable[CacheEntry]) -> CacheEntry:
        raise NotImplementedError

    def rationale(self, entry: CacheEntry) -> str:
        """Why ``entry`` was chosen as the victim (explain layer).

        Called on the entry :meth:`victim` returned, *before* it is
        removed, so policies may consult their bookkeeping.
        """
        return f"selected by {self.name}"


class LruPolicy(ReplacementPolicy):
    """Least recently used (the library default)."""

    name = "lru"

    def victim(self, entries: Iterable[CacheEntry]) -> CacheEntry:
        return min(entries, key=lambda e: e.last_used)

    def rationale(self, entry: CacheEntry) -> str:
        return f"least recently used (last_used tick {entry.last_used})"


class FifoPolicy(ReplacementPolicy):
    """Oldest entry first; entry ids are allocation-ordered."""

    name = "fifo"

    def victim(self, entries: Iterable[CacheEntry]) -> CacheEntry:
        return min(entries, key=lambda e: e.entry_id)

    def rationale(self, entry: CacheEntry) -> str:
        return f"oldest entry (entry_id {entry.entry_id})"


class LfuPolicy(ReplacementPolicy):
    """Least frequently used, recency as the tiebreak."""

    name = "lfu"

    def victim(self, entries: Iterable[CacheEntry]) -> CacheEntry:
        return min(entries, key=lambda e: (e.access_count, e.last_used))

    def rationale(self, entry: CacheEntry) -> str:
        return (
            f"least frequently used ({entry.access_count} accesses, "
            f"last_used tick {entry.last_used})"
        )


class LargestFirstPolicy(ReplacementPolicy):
    """Evict the largest entry; recency breaks ties."""

    name = "largest-first"

    def victim(self, entries: Iterable[CacheEntry]) -> CacheEntry:
        return min(entries, key=lambda e: (-e.byte_size, e.last_used))

    def rationale(self, entry: CacheEntry) -> str:
        return f"largest entry ({entry.byte_size} bytes)"


class GreedyDualSizePolicy(ReplacementPolicy):
    """GreedyDual-Size with uniform miss cost (GDS(1)).

    Credit on insert/access: ``L + 1 / size_kb``; the evicted entry's
    credit becomes the new inflation level, aging everything else
    implicitly.  Favors small entries and recently useful ones without
    timestamps.
    """

    name = "gds"

    def __init__(self) -> None:
        self._inflation = 0.0
        self._credit: dict[int, float] = {}

    def _charge(self, entry: CacheEntry) -> None:
        size_kb = max(entry.byte_size / 1024.0, 1e-6)
        self._credit[entry.entry_id] = self._inflation + 1.0 / size_kb

    def on_insert(self, entry: CacheEntry) -> None:
        self._charge(entry)

    def on_access(self, entry: CacheEntry) -> None:
        self._charge(entry)

    def on_evict(self, entry: CacheEntry) -> None:
        self._credit.pop(entry.entry_id, None)

    def victim(self, entries: Iterable[CacheEntry]) -> CacheEntry:
        chosen = min(
            entries,
            key=lambda e: self._credit.get(e.entry_id, self._inflation),
        )
        self._inflation = self._credit.get(
            chosen.entry_id, self._inflation
        )
        return chosen

    def rationale(self, entry: CacheEntry) -> str:
        credit = self._credit.get(entry.entry_id, self._inflation)
        return (
            f"minimum credit ({credit:.6f} at "
            f"inflation {self._inflation:.6f})"
        )


ALL_POLICIES = (
    LruPolicy,
    FifoPolicy,
    LfuPolicy,
    LargestFirstPolicy,
    GreedyDualSizePolicy,
)
