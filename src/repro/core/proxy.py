"""The function proxy servlet.

Implements the query-processing logic of Section 3.2.  Given a new
query, the proxy classifies it against the cache into one of the four
statuses and acts accordingly:

(a) **exact match** — read the cached result and return it;
(b) **contained** — evaluate the new query locally over the subsuming
    entry's result; do not cache (the result is already covered);
(c) **overlap** — serve the cached portion via a probe over the
    overlapping entries, send a *remainder query* to the origin, merge,
    return, and cache the merged full-region result.  In the special
    case of *region containment* (the new region contains cached
    regions) the subsumed entries are removed after their results are
    merged into the new entry — consolidation that "reduces the number
    of cached queries and improves cache utilization";
(d) **disjoint** — forward the query, cache the result, return it.

Which of (b)/(c) the proxy attempts is the caching scheme's policy
(:mod:`repro.core.schemes`); unhandled cases degrade to (d)'s
forwarding, minus the redundant caching of a result that a cached
superset already covers.

Soundness guards beyond the paper's text:

* only entries with the *same residual-predicate signature* participate
  in containment/overlap reasoning (two queries whose non-spatial
  predicates differ are spatially incomparable);
* entries whose producing query was TOP-N truncated serve exact matches
  only;
* queries on templates whose embedded function is non-deterministic are
  tunneled, never cached (paper property 1);
* queries on templates the static analyzer admitted *degraded* (the
  template manager's permissive mode) are likewise tunneled, never
  cached — a property violation means cached answers could be wrong.

Observability: every query runs under a
:class:`~repro.obs.instrument.QueryObservation` — the one mechanism
that accumulates the simulated per-step charges (feeding
:class:`~repro.core.stats.QueryRecord` and ``TraceStats``), mirrors
each step as a nested span when tracing is enabled, and updates the
proxy's metric families ("the proxy servlet records timing information
in each step of query processing").  The default instrumentation uses
a :class:`~repro.obs.spans.NullTracer`, so the hot path pays only the
step-charge dict updates.

Resilience: the proxy never talks to the origin directly — every hop
goes through an :class:`~repro.faults.resilience.OriginGateway`
(retry with capped deterministic backoff, circuit breaker over the
simulated clock).  When the origin stays unreachable, the degradation
policy decides per cache case: exact/contained answers are served
from cache marked ``degraded``, overlap queries fall back to the
cached portion only (``partial``), and queries the cache cannot help
with produce a structured ``failed`` outcome instead of an exception.
A :class:`~repro.faults.plan.FaultPlan` can be installed (also at
runtime, via ``POST /faults``) to put the origin and the WAN link
through scheduled outages, slowdowns, and transient failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Mapping

from repro.admission.controller import AdmissionController
from repro.core.cache import CacheEntry, CacheManager, MaintenanceReport
from repro.core.costs import ProxyCostModel
from repro.core.description import ArrayDescription, CacheDescription
from repro.core.evaluation import LocalEvaluator
from repro.core.remainder import build_remainder
from repro.core.schemes import CachingScheme
from repro.core.stats import (
    QueryOutcome,
    QueryRecord,
    QueryStatus,
    TraceStats,
)
from repro.core.store import ResultStoreError
from repro.faults.errors import OriginQueryError, OriginUnavailable
from repro.faults.injection import FaultyOrigin, FaultyTopology
from repro.faults.plan import FaultPlan
from repro.faults.resilience import (
    BREAKER_STATE_VALUES,
    BreakerState,
    CircuitBreaker,
    OriginGateway,
    ResilienceConfig,
)
from repro.geometry.relations import RegionRelation, relate
from repro.locking import guarded_by, named_lock
from repro.network.clock import SimulatedClock
from repro.network.link import Topology
from repro.obs.decisions import region_summary
from repro.obs.events import (
    BREAKER_EVENT_CODES,
    EV_DATA_VERSION_FLUSH,
    EV_EVICTION_STORM,
    EV_RECOVERY_COMPLETED,
    EVICTION_STORM_THRESHOLD,
)
from repro.obs.instrument import ProxyInstrumentation, QueryObservation
from repro.persistence.persister import CachePersister
from repro.persistence.recovery import RecoveryReport, recover_cache
from repro.relational.result import ResultTable
from repro.relational.schema import Schema
from repro.server.origin import OriginServer
from repro.templates.manager import BoundQuery, TemplateManager


@dataclass(frozen=True)
class ProxyResponse:
    """What the proxy hands back to the browser (emulator)."""

    result: ResultTable
    record: QueryRecord

    @property
    def proxy_ms(self) -> float:
        return self.record.response_ms


@guarded_by(
    "proxy.state",
    "origin",
    "topology",
    "fault_plan",
    "_query_index",
    "_seen_data_version",
    "invalidations",
)
class FunctionProxy:
    """A template-based caching proxy for function-embedded queries.

    ``serve`` runs as a sequence of explicitly named, reentrant stages
    — ``_begin_query`` (admission), ``_stage_parse_bind``,
    ``_stage_cache_probe``, ``_stage_local_eval``, ``_origin_fetch``,
    ``_stage_merge``, ``_stage_admit``, ``_respond`` — each owning its
    step charge, so concurrent serves interleave at stage boundaries.
    The proxy's own mutable state (the query counter, the data-version
    fence, and the fault-injection wrappers around origin/topology) is
    guarded by the outermost ``proxy.state`` named lock; everything
    else a stage touches synchronizes in the component that owns it
    (cache, templates, decision log, persister).
    """

    def __init__(
        self,
        origin: OriginServer,
        templates: TemplateManager,
        scheme: CachingScheme = CachingScheme.FULL_SEMANTIC,
        description: CacheDescription | None = None,
        cache_bytes: int | None = None,
        costs: ProxyCostModel | None = None,
        topology: Topology | None = None,
        max_holes: int = 16,
        result_store=None,
        replacement_policy=None,
        instrumentation: ProxyInstrumentation | None = None,
        resilience: ResilienceConfig | None = None,
        fault_plan: FaultPlan | None = None,
        clock: SimulatedClock | None = None,
        persistence: CachePersister | None = None,
        recover: bool = True,
        admission: AdmissionController | None = None,
    ) -> None:
        if max_holes < 1:
            raise ValueError("max_holes must be at least 1")
        self._lock = named_lock("proxy.state")
        self.origin = origin
        self.templates = templates
        self.scheme = scheme
        self.costs = costs or ProxyCostModel()
        self.obs = instrumentation or ProxyInstrumentation()
        # Origins that speak HTTP propagate the proxy's trace context
        # (the W3C traceparent header) on every fetch they make for us.
        binder = getattr(origin, "bind_tracer", None)
        if callable(binder):
            binder(self.obs.tracer)
        # Diagnostics from templates registered before this proxy existed,
        # then a live feed for everything registered after.
        for diagnostic in templates.analysis_diagnostics():
            self.obs.record_diagnostic(diagnostic)
        templates.add_analysis_observer(self.obs.record_diagnostic)
        self.topology = (topology or Topology()).instrumented(self.obs)
        self.cache = CacheManager(
            description or ArrayDescription(self.costs),
            max_bytes=cache_bytes,
            costs=self.costs,
            result_store=result_store,
            policy=replacement_policy,
            observer=self.obs,
        )
        self.evaluator = LocalEvaluator()
        self.max_holes = max_holes
        self.stats = TraceStats()
        self._query_index = 0
        self._seen_data_version = getattr(origin, "data_version", None)
        self.invalidations = 0
        # ---------------------------------------------------- resilience
        self.clock = clock or SimulatedClock()
        #: The time axis telemetry carries (flight-recorder events,
        #: time-series samples, health verdicts).  Defaults to the
        #: proxy's own work clock; an event-driven frontend rebinds it
        #: to the event loop at construction, so one run's telemetry
        #: lives on one monotone axis — the load timeline — instead of
        #: mixing the work clock into it.
        self.telemetry_clock = self.clock
        self.resilience = resilience or ResilienceConfig()
        self.breaker = CircuitBreaker(
            self.clock,
            failure_threshold=self.resilience.breaker_failure_threshold,
            cooldown_ms=self.resilience.breaker_cooldown_ms,
            on_state_change=self._on_breaker_transition,
        )
        self.obs.breaker_transition(BREAKER_STATE_VALUES[self.breaker.state])
        self.gateway = OriginGateway(
            retry=self.resilience.retry,
            breaker=self.breaker,
            rng=Random(self.resilience.jitter_seed),
            # Failed fast attempts cost one empty round trip, charged
            # through the topology so transfer metrics stay honest.
            failure_rtt_ms=lambda: self.topology.origin_round_trip_ms(0),
            listener=self.obs,
        )
        # ----------------------------------------------------- admission
        #: Optional admission gate: when set, ``serve`` consults it
        #: before starting any query work and turned-away queries get
        #: structured ``shed`` records instead of service.
        self.admission = admission
        if admission is not None:
            admission.bind(
                self.obs,
                allow_degrade=self.resilience.degradation.tunnel_on_overload,
            )
            self.obs.set_admission_queue_limit(
                admission.config.max_queue_depth
            )
        self._base_origin = origin
        self._base_topology = self.topology
        self.fault_plan: FaultPlan | None = None
        if fault_plan is not None:
            self.install_fault_plan(fault_plan)
        # --------------------------------------------------- persistence
        #: Crash-consistent durability sidecar; when set, every cache
        #: mutation is journaled and a warm restart replays it back.
        self.persistence = persistence
        #: The report of the warm-restart replay run at construction, or
        #: None (no persister, or ``recover=False`` for a cold start).
        self.recovery_report: RecoveryReport | None = None
        if persistence is not None:
            persistence.bind(
                self.cache,
                self.clock,
                # Read through self.origin each call, so journaled
                # versions track scheduled bumps even behind a fault
                # wrapper installed later.
                version_of=lambda: getattr(
                    self.origin, "data_version", None
                ),
                obs=self.obs,
            )
            self.cache.mutation_log = persistence
            if recover:
                self.recovery_report = recover_cache(
                    persistence, self.cache, self.templates, obs=self.obs
                )
                report = self.recovery_report
                self.obs.telemetry_event(
                    EV_RECOVERY_COMPLETED,
                    at_ms=self.telemetry_clock.now_ms,
                    restored=report.entries_restored,
                    stale=report.entries_stale,
                    replayed=report.records_replayed,
                    clean=report.clean,
                )

    @property
    def metrics(self):
        """The proxy's metrics registry (``GET /metrics`` source)."""
        return self.obs.registry

    @property
    def tracer(self):
        """The proxy's span tracer (``GET /trace/recent`` source)."""
        return self.obs.tracer

    @property
    def profiler(self):
        """The proxy's hot-path profiler (``GET /profile`` source)."""
        return self.obs.profiler

    @property
    def timeseries(self):
        """The proxy's time-series recorder (``GET /timeseries``)."""
        return self.obs.timeseries

    @property
    def events(self):
        """The proxy's flight recorder (``GET /events`` source)."""
        return self.obs.events

    @property
    def health(self):
        """The proxy's health monitor (``GET /health`` source)."""
        return self.obs.health

    def _on_breaker_transition(self, state: BreakerState) -> None:
        """Origin-breaker callback: gauge update plus an EV01-03 event.

        The breaker fires this after releasing its lock, and only on
        actual state changes, so every call is one timeline-worthy
        transition.
        """
        self.obs.breaker_transition(BREAKER_STATE_VALUES[state])
        self.obs.telemetry_event(
            BREAKER_EVENT_CODES[state.value],
            at_ms=self.telemetry_clock.now_ms,
            breaker="origin",
        )

    # --------------------------------------------------- fault injection
    def install_fault_plan(self, plan: FaultPlan | None) -> None:
        """Wrap the origin and the WAN hop in a seeded fault schedule.

        ``None`` restores the pristine origin and topology.  Installing
        a plan does not reset the breaker or the trace statistics — a
        plan loaded mid-trace simply starts misbehaving from the
        current simulated time on.
        """
        with self._lock:
            if plan is None:
                self.origin = self._base_origin
                self.topology = self._base_topology
                self.fault_plan = None
                return
            session = plan.session()
            self.origin = FaultyOrigin(
                self._base_origin, session, self.clock
            )
            self.topology = FaultyTopology(
                self._base_topology, session, self.clock
            )
            self.fault_plan = plan

    # ------------------------------------------------------------ public
    def serve_form(
        self,
        form_name: str,
        form_values: Mapping[str, str],
        tenant: str = "default",
    ) -> ProxyResponse:
        """Serve a raw HTML form request (the HTTP listener's path)."""
        with self.tracer.span("bind", form=form_name):
            bound = self.templates.bind_form(form_name, form_values)
        return self.serve(bound, tenant=tenant)

    def serve(self, bound: BoundQuery, tenant: str = "default") -> ProxyResponse:
        """Serve one bound query; appends a record to ``stats``.

        Never raises for load or origin trouble: when an admission
        controller is installed and turns the query away, the caller
        gets a structured ``shed`` record (no cache, origin, or
        journal work); origin failures likewise become structured
        ``failed`` (or degraded) outcomes on the returned record.
        """
        if self.admission is None:
            return self.serve_admitted(bound)
        verdict = self.admission.try_admit(tenant, self.clock.now_ms)
        if not verdict.admitted:
            return self.reject(bound, verdict.reason, QueryOutcome.SHED)
        try:
            return self.serve_admitted(bound, degrade=verdict.degrade)
        finally:
            self.admission.release()

    def serve_admitted(
        self,
        bound: BoundQuery,
        queue_wait_ms: float = 0.0,
        degrade: bool = False,
    ) -> ProxyResponse:
        """Serve one query that already passed admission.

        ``queue_wait_ms`` is the simulated time the query spent in the
        accept queue (charged to the ``admit.queue`` step so response
        times include the wait); ``degrade`` forces tunnel mode — the
        overload path that skips all cache work.
        """
        index, data_version = self._begin_query()
        policy = self.scheme.policy
        with self.obs.observe_query(
            index, bound.template_id, clock=self.clock
        ) as observation:
            observation.data_version = data_version
            decision = self.obs.decisions.begin(
                index,
                bound.template_id,
                query_region=region_summary(bound.region),
                scheme=self.scheme.value,
                policy=policy.describe(),
            )
            observation.decision = decision
            if queue_wait_ms > 0:
                observation.charge("admit.queue", queue_wait_ms)
            try:
                if degrade:
                    decision.note(
                        "admission overload: degraded to tunnel "
                        "(no cache work)"
                    )
                    observation.charge("parse", self.costs.parse_ms)
                    response = self._tunnel(bound, observation)
                elif self._stage_parse_bind(bound, observation, policy):
                    response = self._tunnel(bound, observation)
                else:
                    try:
                        response = self._stage_cache_probe(
                            bound, observation, policy
                        )
                    except ResultStoreError as exc:
                        # A cache-hit path lost its entry mid-serve (a
                        # concurrent store evicted a candidate between
                        # the description probe and the result read).
                        # The query is still answerable — treat it as
                        # a miss and forward.
                        if observation.decision is not None:
                            observation.decision.note(
                                "cache entry evicted mid-serve "
                                f"({exc}); forwarded instead"
                            )
                        response = self._forward_and_cache(
                            bound, observation, QueryStatus.FORWARDED
                        )
            except (OriginUnavailable, OriginQueryError) as exc:
                response = self._respond_failure(bound, observation, exc)
        self.stats.add(response.record)
        return response

    def reject(
        self,
        bound: BoundQuery,
        reason: str,
        outcome: QueryOutcome,
        queue_wait_ms: float = 0.0,
    ) -> ProxyResponse:
        """Turn one query away with a structured record.

        The admission paths (``shed`` at arrival, ``queued-timeout``
        at dispatch) end here: the query gets an index, an observation,
        and a decision trace like any served query — but no cache,
        origin, or journal work happens, and the data-version fence is
        deliberately not consulted (a rejected query must not trigger
        a cache flush).
        """
        index = self._next_index()
        with self.obs.observe_query(
            index, bound.template_id, clock=self.clock
        ) as observation:
            decision = self.obs.decisions.begin(
                index,
                bound.template_id,
                query_region=region_summary(bound.region),
                scheme=self.scheme.value,
                policy=self.scheme.policy.describe(),
            )
            observation.decision = decision
            if queue_wait_ms > 0:
                observation.charge("admit.queue", queue_wait_ms)
            with observation.stage("admit.shed"):
                decision.note(f"admission turned the query away: {reason}")
            response = self._respond(
                bound,
                ResultTable(Schema.of(), []),
                QueryStatus.REJECTED,
                observation,
                tuples_from_cache=0,
                contacted_origin=False,
                outcome=outcome,
                failure_reason=reason,
            )
        self.stats.add(response.record)
        return response

    # ------------------------------------------------------------ stages
    def _next_index(self) -> int:
        """A fresh query index for a query that will not be served.

        Unlike ``_begin_query`` this does *not* run the data-version
        fence: shed queries must leave the cache (and thus the journal)
        untouched.
        """
        with self._lock:
            self._query_index += 1
            return self._query_index

    def _begin_query(self) -> tuple[int, object]:
        """Stage 0 (admission): assign the query's index and fence the
        data version.

        Runs under the ``proxy.state`` lock so concurrent serves get
        distinct indices and never race the version-change cache
        flush.  Returns ``(index, data_version)`` — the version the
        query is admitted under travels on the observation so
        ``_stage_admit`` can refuse to cache a result fetched before a
        concurrent flush (see the fence re-check there).
        """
        with self._lock:
            self._query_index += 1
            flushed = self._check_data_version()
            index, version = self._query_index, self._seen_data_version
        if flushed is not None:
            self.obs.telemetry_event(
                EV_DATA_VERSION_FLUSH,
                at_ms=self.telemetry_clock.now_ms,
                query_index=index,
                entries_flushed=flushed,
            )
        return index, version

    def _stage_parse_bind(self, bound, observation, policy) -> bool:
        """Stage 1 (parse/bind): charge parsing, classify tunneling.

        Returns True when the query must be tunneled — the scheme
        never caches, the embedded function is not deterministic, or
        the template was admitted degraded by the analyzer — noting
        each reason on the decision trace.
        """
        decision = observation.decision
        observation.charge("parse", self.costs.parse_ms)
        deterministic = self._is_deterministic(bound)
        degraded = self.templates.is_degraded(bound.template_id)
        if policy.caches and deterministic and not degraded:
            return False
        if decision is not None:
            if not policy.caches:
                decision.note("tunneled: scheme never caches")
            if not deterministic:
                decision.note(
                    "tunneled: embedded function is not "
                    "deterministic"
                )
            if degraded:
                decision.note(
                    "tunneled: template admitted degraded by "
                    "the analyzer"
                )
        return True

    def _stage_cache_probe(self, bound, observation, policy) -> ProxyResponse:
        """Stage 2 (cache probe): dispatch on the cache relation."""
        exact = self.cache.exact_match_pinned(bound)
        if exact is not None:
            entry, result = exact
            return self._serve_exact(bound, entry, result, observation)
        if not policy.handles_containment:
            return self._forward_and_cache(
                bound, observation, QueryStatus.FORWARDED
            )
        return self._serve_active(bound, observation, policy)

    def _serve_active(self, bound, observation, policy) -> ProxyResponse:
        candidates, relations = self._check_description(bound, observation)

        contained_in = [
            entry
            for entry, relation in zip(candidates, relations)
            if relation
            in (RegionRelation.CONTAINED, RegionRelation.EQUAL)
        ]
        if contained_in:
            return self._serve_contained(bound, contained_in, observation)

        subsumed = [
            entry
            for entry, relation in zip(candidates, relations)
            if relation is RegionRelation.CONTAINS
        ]
        overlapping = [
            entry
            for entry, relation in zip(candidates, relations)
            if relation is RegionRelation.OVERLAP
        ]

        if (subsumed or overlapping) and self._attempt_overlap(
            bound, subsumed, overlapping
        ):
            return self._serve_overlap(
                bound, subsumed, overlapping, observation
            )
        if policy.handles_region_containment and subsumed:
            return self._serve_overlap(bound, subsumed, [], observation)
        status = (
            QueryStatus.DISJOINT
            if not (subsumed or overlapping)
            else QueryStatus.FORWARDED
        )
        return self._forward_and_cache(bound, observation, status)

    def _attempt_overlap(self, bound, subsumed, overlapping) -> bool:
        """Whether to handle this cache-intersecting query via probe +
        remainder.  The base proxy follows the scheme's static policy;
        :class:`repro.extensions.adaptive.AdaptiveProxy` overrides this
        with a learned estimate of whether remainders pay off."""
        return self.scheme.policy.handles_overlap

    def _stage_local_eval(self, bound, entries, observation):
        """Stage 3 (local evaluation): run the query over cached rows.

        Evaluates under a ``local_eval`` phase — charging the
        per-tuple evaluation cost there and the per-tuple read cost to
        the ``read`` step — and returns the evaluator's outcome.  The
        contained and overlap cases share this accounting exactly.
        """
        with observation.phase(
            "local_eval", entries=len(entries)
        ) as local_eval:
            outcome = self.evaluator.select_in_region(bound, entries)
            local_eval.charge(
                self.costs.eval_per_tuple_ms * outcome.tuples_evaluated
            )
            local_eval.count("tuples_evaluated", outcome.tuples_evaluated)
            local_eval.count("tuples_read", outcome.tuples_read)
        observation.charge(
            "read", self.costs.read_per_tuple_ms * outcome.tuples_read
        )
        return outcome

    def _stage_merge(self, bound, probe_result, origin_result, observation):
        """Stage 5 (merge): combine cached probe and origin remainder."""
        with observation.phase("merge") as merge:
            merged = probe_result.merge_dedup(
                origin_result, bound.key_column
            )
            merge.charge(self.costs.merge_per_tuple_ms * len(merged))
            merge.count("tuples", len(merged))
        return merged

    def _stage_admit(
        self, bound, result, origin_result, observation, consolidate=None
    ):
        """Stage 6 (admit): store the result, run cache maintenance.

        ``consolidate`` names the subsumed entries to fold into the
        new entry (the overlap path's region-containment maintenance);
        ``None`` is the plain forward-and-cache admission.  Returns
        ``(entry, report)`` — ``entry`` is None when nothing fit, or
        when the admission was fenced off (below).
        """
        with observation.phase("maintenance") as admit:
            truncated = self._is_truncated(bound, origin_result)
            # Re-check the data-version fence at admission, atomically
            # with the flush: _begin_query fences only the *start* of
            # the query, so a result fetched before a concurrent
            # version bump could otherwise be re-admitted into the
            # freshly flushed cache and serve stale EXACT hits
            # forever.  proxy.state -> proxy.cache is the established
            # acquisition order (_check_data_version flushes the cache
            # under the same nesting).
            with self._lock:
                admissible = (
                    observation.data_version == self._seen_data_version
                )
                if admissible:
                    entry, report = self.cache.store(
                        bound, result, self._signature(bound), truncated
                    )
                else:
                    entry, report = None, MaintenanceReport()
            if not admissible and observation.decision is not None:
                observation.decision.note(
                    "admission fenced: origin data version changed "
                    "while the query was in flight"
                )
            maintenance = report.charge_ms(self.costs)
            if consolidate is not None and entry is not None:
                for victim in consolidate:
                    maintenance += self.cache.remove(victim).charge_ms(
                        self.costs
                    )
            admit.charge(maintenance)
            if consolidate is not None:
                admit.annotate(
                    admitted=entry is not None,
                    evicted=report.evicted_entries,
                    consolidated=(
                        len(consolidate) if entry is not None else 0
                    ),
                )
                admit.count("evicted", report.evicted_entries)
                if entry is not None:
                    admit.count("consolidated", len(consolidate))
            else:
                admit.annotate(
                    admitted=entry is not None,
                    evicted=report.evicted_entries,
                )
            decision = observation.decision
            if decision is not None:
                for eviction in report.evictions:
                    decision.record_eviction(eviction)
                if consolidate is not None:
                    decision.record_admission(
                        entry is not None,
                        [v.entry_id for v in consolidate]
                        if entry is not None
                        else None,
                    )
                else:
                    decision.record_admission(entry is not None)
        if report.evicted_entries >= EVICTION_STORM_THRESHOLD:
            self.obs.telemetry_event(
                EV_EVICTION_STORM,
                at_ms=self.telemetry_clock.now_ms,
                trace_id=observation.trace_id,
                query_index=observation.index,
                evicted=report.evicted_entries,
            )
        return entry, report

    # ------------------------------------------------------ description
    def _check_description(self, bound: BoundQuery, observation):
        """Probe the cache description and run exact relation checks.

        Returns ``(usable_entries, relations)`` where relations[i] is
        the relation of the *new* region to usable_entries[i]'s region.
        Besides the simulated charge, the real wall-clock time of the
        probe is recorded (the paper's "< 100 ms" claim is about real
        time, not modelled time).
        """
        decision = observation.decision
        description = self.cache.description
        probe_stage = f"probe.{getattr(description, 'kind', 'custom')}"
        with observation.phase("check") as check:
            # The probe sub-stage carries calls, wall time, and region
            # counters; its simulated cost is charged to the enclosing
            # ``check`` step (the cost model's unit of account).
            with observation.stage(probe_stage) as probe:
                candidates, probe_ms = description.candidates(
                    bound.template_id, bound.region
                )
                probe.count("candidates", len(candidates))
            signature = self._signature(bound)
            usable = []
            for entry in candidates:
                if entry.signature != signature:
                    if decision is not None:
                        decision.record_candidate(
                            entry.entry_id,
                            "skipped",
                            entry.region,
                            rows=entry.row_count,
                            note="residual-predicate signature mismatch",
                        )
                elif entry.truncated:
                    if decision is not None:
                        decision.record_candidate(
                            entry.entry_id,
                            "skipped",
                            entry.region,
                            rows=entry.row_count,
                            note="truncated entry (exact matches only)",
                        )
                else:
                    usable.append(entry)
            with self.tracer.span("relate", pairs=len(usable)):
                with observation.stage("relate") as relate_stage:
                    relations = [
                        relate(bound.region, entry.region)
                        for entry in usable
                    ]
                    relate_stage.count("pairs", len(usable))
            if decision is not None:
                for entry, relation in zip(usable, relations):
                    decision.record_candidate(
                        entry.entry_id,
                        relation.value,
                        entry.region,
                        rows=entry.row_count,
                    )
            check.charge(
                probe_ms + self.costs.check_per_candidate_ms * len(usable)
            )
            check.annotate(candidates=len(candidates), usable=len(usable))
        observation.check_wall_ms += check.wall_ms
        return usable, relations

    def _is_deterministic(self, bound: BoundQuery) -> bool:
        source = bound.template.statement.source
        registry = self.origin.catalog.functions
        try:
            return registry.is_deterministic(source.name)
        except Exception:
            # An unregistered function cannot be reasoned about; tunnel.
            return False

    # ------------------------------------------------------- degradation
    def _cache_answer_outcome(self) -> QueryOutcome:
        """Outcome for an answer served wholly from cache.

        While the breaker is not closed the origin is presumed down, so
        the answer cannot be revalidated: it is served ``degraded``
        (stale-serve) — or refused outright when the degradation policy
        forbids stale answers.
        """
        if self.breaker.state is BreakerState.CLOSED:
            return QueryOutcome.SERVED
        if not self.resilience.degradation.stale_ok:
            raise OriginUnavailable("stale-disallowed")
        return QueryOutcome.DEGRADED

    def _origin_fetch(self, observation, kind, fn):
        """One resilient origin request under an ``origin`` phase.

        Returns ``(origin_response, retries)``; raises the gateway's
        structured errors when the origin cannot or will not answer.
        """
        with observation.phase("origin", kind=kind) as origin_fetch:
            origin_response, retries = self.gateway.call(fn, observation)
            origin_fetch.charge(origin_response.server_ms)
            origin_fetch.annotate(retries=retries)
        return origin_response, retries

    # ------------------------------------------------------ case (a)
    def _serve_exact(
        self, bound, entry: CacheEntry, result: ResultTable, observation
    ) -> ProxyResponse:
        """``result`` is the entry's stored result, read by the probe
        stage under ``proxy.cache`` (pinned): reading it here instead
        would race a concurrent eviction of ``entry``."""
        outcome = self._cache_answer_outcome()
        if observation.decision is not None:
            observation.decision.record_candidate(
                entry.entry_id,
                "exact",
                entry.region,
                rows=entry.row_count,
                note="identical cached query",
            )
        self.cache.touch(entry)
        observation.charge(
            "read", self.costs.read_per_tuple_ms * len(result)
        )
        return self._respond(
            bound,
            result,
            QueryStatus.EXACT,
            observation,
            tuples_from_cache=len(result),
            contacted_origin=False,
            outcome=outcome,
        )

    # ------------------------------------------------------ case (b)
    def _serve_contained(self, bound, entries, observation) -> ProxyResponse:
        answer_outcome = self._cache_answer_outcome()
        # Any subsuming entry works; scan the smallest result.
        entry = min(entries, key=lambda e: e.row_count)
        if observation.decision is not None:
            observation.decision.note(
                f"evaluated locally over entry {entry.entry_id} "
                "(smallest subsuming result)"
            )
        self.cache.touch(entry)
        outcome = self._stage_local_eval(bound, [entry], observation)
        result = self.evaluator.finalize(bound, outcome.result)
        return self._respond(
            bound,
            result,
            QueryStatus.CONTAINED,
            observation,
            tuples_from_cache=len(result),
            contacted_origin=False,
            outcome=answer_outcome,
        )

    # ------------------------------------------------------ case (c)
    def _serve_overlap(
        self, bound, subsumed, overlapping, observation
    ) -> ProxyResponse:
        # The entries used as remainder holes, largest results first to
        # maximize the cached share, capped to keep the remainder SQL sane.
        used = sorted(
            subsumed + overlapping, key=lambda e: e.row_count, reverse=True
        )[: self.max_holes]
        subsumed_ids = {entry.entry_id for entry in subsumed}
        used_subsumed = [
            entry for entry in used if entry.entry_id in subsumed_ids
        ]
        for entry in used:
            self.cache.touch(entry)

        probe = self._stage_local_eval(bound, used, observation)

        with observation.phase("remainder_build", record=False) as build:
            remainder = build_remainder(bound, [e.region for e in used])
            build.annotate(holes=remainder.n_holes)
            build.count("holes", remainder.n_holes)
        if observation.decision is not None:
            observation.decision.record_remainder(
                remainder.geometry(), sql=remainder.sql
            )
        try:
            origin_response, retries = self._origin_fetch(
                observation,
                "remainder",
                lambda: self.origin.execute_remainder(
                    remainder.statement, remainder.n_holes
                ),
            )
        except OriginUnavailable as exc:
            if not self.resilience.degradation.partial_ok:
                raise
            return self._serve_partial(
                bound, probe, overlapping, observation, exc
            )
        observation.charge(
            "transfer",
            self.topology.origin_round_trip_ms(
                origin_response.result.byte_size()
            ),
        )

        merged = self._stage_merge(
            bound, probe.result, origin_response.result, observation
        )
        result = self.evaluator.finalize(bound, merged)

        # Count the cached contribution that survived into the answer.
        key_position = result.schema.position(bound.key_column)
        probe_keys = {
            row[probe.result.schema.position(bound.key_column)]
            for row in probe.result.rows
        }
        from_cache = sum(
            1 for row in result.rows if row[key_position] in probe_keys
        )

        # Cache the merged full-region result and consolidate subsumed
        # entries into it (the paper's region-containment maintenance).
        self._stage_admit(
            bound,
            merged,
            origin_response.result,
            observation,
            consolidate=used_subsumed,
        )

        status = (
            QueryStatus.REGION_CONTAINMENT
            if not overlapping
            else QueryStatus.OVERLAP
        )
        return self._respond(
            bound,
            result,
            status,
            observation,
            tuples_from_cache=from_cache,
            contacted_origin=True,
            origin_bytes=origin_response.result.byte_size(),
            retries=retries,
        )

    def _serve_partial(
        self, bound, probe, overlapping, observation, exc
    ) -> ProxyResponse:
        """Overlap degradation: the remainder could not reach the
        origin, so the client gets the cached portion only (``206``
        at the HTTP layer).  Nothing is cached — the merged region was
        never completed."""
        if observation.decision is not None:
            observation.decision.note(
                f"remainder fetch failed ({exc.reason}); served the "
                "cached portion only"
            )
        result = self.evaluator.finalize(bound, probe.result)
        status = (
            QueryStatus.REGION_CONTAINMENT
            if not overlapping
            else QueryStatus.OVERLAP
        )
        return self._respond(
            bound,
            result,
            status,
            observation,
            tuples_from_cache=len(result),
            contacted_origin=True,
            outcome=QueryOutcome.PARTIAL,
            retries=exc.retries,
            failure_reason=exc.reason,
        )

    # ------------------------------------------------------ case (d)
    def _forward_and_cache(self, bound, observation, status) -> ProxyResponse:
        origin_response, retries = self._origin_fetch(
            observation, "forward", lambda: self.origin.execute_bound(bound)
        )
        result = origin_response.result
        observation.charge(
            "transfer",
            self.topology.origin_round_trip_ms(result.byte_size()),
        )
        self._stage_admit(bound, result, result, observation)
        return self._respond(
            bound,
            result,
            status,
            observation,
            tuples_from_cache=0,
            contacted_origin=True,
            origin_bytes=result.byte_size(),
            retries=retries,
        )

    def _tunnel(self, bound, observation) -> ProxyResponse:
        origin_response, retries = self._origin_fetch(
            observation, "tunnel", lambda: self.origin.execute_bound(bound)
        )
        observation.charge(
            "transfer",
            self.topology.origin_round_trip_ms(
                origin_response.result.byte_size()
            ),
        )
        return self._respond(
            bound,
            origin_response.result,
            QueryStatus.NO_CACHE,
            observation,
            tuples_from_cache=0,
            contacted_origin=True,
            origin_bytes=origin_response.result.byte_size(),
            retries=retries,
        )

    # ---------------------------------------------------------- helpers
    def _check_data_version(self) -> int | None:
        """Flush the cache when the origin's data version moved.

        Cached results are snapshots of the origin's base data; the
        determinism that justifies caching holds only per data version
        (paper property 1: "nothing changes over time").  Origins
        without a version attribute are treated as immutable.  Returns
        the number of entries flushed, or None when the version held
        (the caller owes a flush event — emitted outside the lock).
        """
        version = getattr(self.origin, "data_version", None)
        if version == self._seen_data_version:
            return None
        flushed = len(self.cache)
        self.cache.clear()
        self._seen_data_version = version
        self.invalidations += 1
        return flushed

    @staticmethod
    def _signature(bound: BoundQuery) -> str:
        where = bound.statement.where
        return "" if where is None else where.to_sql()

    @staticmethod
    def _is_truncated(bound: BoundQuery, origin_result: ResultTable) -> bool:
        """Whether a stored result may be an incomplete region answer."""
        top = bound.statement.top
        return top is not None and len(origin_result) >= top

    def _respond(
        self,
        bound,
        result,
        status,
        observation: QueryObservation,
        tuples_from_cache: int,
        contacted_origin: bool,
        origin_bytes: int = 0,
        outcome: QueryOutcome = QueryOutcome.SERVED,
        retries: int = 0,
        failure_reason: str = "",
    ) -> ProxyResponse:
        steps = observation.steps
        record = QueryRecord(
            index=observation.index,
            template_id=bound.template_id,
            status=status,
            response_ms=sum(steps.values()),
            tuples_total=len(result),
            tuples_from_cache=tuples_from_cache,
            result_bytes=result.byte_size(),
            origin_bytes=origin_bytes,
            contacted_origin=contacted_origin,
            steps_ms=dict(steps),
            check_wall_ms=observation.check_wall_ms,
            cache_bytes_after=self.cache.current_bytes,
            cache_entries_after=len(self.cache),
            outcome=outcome,
            retries=retries,
            failure_reason=failure_reason,
        )
        observation.annotate(
            status=status.value,
            outcome=outcome.value,
            response_sim_ms=round(record.response_ms, 3),
            tuples=record.tuples_total,
        )
        trace_id = observation.trace_id
        decision = observation.decision
        if decision is not None:
            decision.finish(
                status.value, outcome.value, trace_id=trace_id
            )
            self.obs.decisions.record(decision)
            observation.decision = None
        self.obs.observe_record(record, trace_id=trace_id)
        self.obs.sample_telemetry(self.telemetry_clock.now_ms)
        return ProxyResponse(result=result, record=record)

    def _respond_failure(
        self, bound, observation: QueryObservation, exc
    ) -> ProxyResponse:
        """Turn a structured origin failure into an empty ``failed``
        response — the proxy's promise that ``serve`` never raises for
        origin trouble."""
        return self._respond(
            bound,
            ResultTable(Schema.of(), []),
            QueryStatus.FAILED,
            observation,
            tuples_from_cache=0,
            contacted_origin=True,
            outcome=QueryOutcome.FAILED,
            retries=exc.retries,
            failure_reason=exc.reason,
        )
