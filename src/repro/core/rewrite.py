"""Expression scope rewriting between statement and result scope.

Two coordinate systems appear in the proxy:

* **statement scope** — names as they appear inside the template SQL
  (``p.cx``, ``n.distance``): what the origin's executor resolves.
* **result scope** — the *output* column names of the template's select
  list (``cx``, ``distance``): what a cached result table carries and
  what the function template's point expressions reference.

The local evaluator takes statement-scope expressions (ORDER BY items,
residual predicates) into result scope to run them over cached tuples;
the remainder builder takes result-scope region predicates into
statement scope to splice them into SQL sent to the origin.
"""

from __future__ import annotations

from repro.relational.expressions import ColumnRef, Expression
from repro.templates.errors import TemplateError
from repro.templates.query_template import QueryTemplate


def _mappings(template: QueryTemplate) -> tuple[dict, dict]:
    """(statement sql -> output name, output name -> expression)."""
    statement = template.statement
    if statement.star:
        raise TemplateError(
            f"template {template.template_id!r}: scope rewriting needs an "
            "explicit select list, not SELECT *"
        )
    to_output: dict[str, str] = {}
    to_statement: dict[str, Expression] = {}
    for item in statement.select_items:
        output = item.output_name().lower()
        to_output[item.expression.to_sql().lower()] = output
        to_statement[output] = item.expression
    return to_output, to_statement


def _rewrite(expr: Expression, transform) -> Expression:
    """Structurally rebuild ``expr`` with ``transform`` applied to each
    node bottom-up (leaves first)."""
    changes = {}
    for name, attr in vars(expr).items():
        if isinstance(attr, Expression):
            changes[name] = _rewrite(attr, transform)
        elif isinstance(attr, tuple) and any(
            isinstance(element, Expression) for element in attr
        ):
            changes[name] = tuple(
                _rewrite(element, transform)
                if isinstance(element, Expression)
                else element
                for element in attr
            )
    if changes:
        fields = dict(vars(expr))
        fields.update(changes)
        expr = type(expr)(**fields)
    return transform(expr)


def to_result_scope(
    template: QueryTemplate, expr: Expression
) -> Expression:
    """Rewrite a statement-scope expression to result scope.

    Any subexpression that textually matches a select item is replaced
    by a reference to that item's output column.  A qualified column
    reference that matches nothing raises: it would be unresolvable
    against a cached result.
    """
    to_output, _ = _mappings(template)

    def transform(node: Expression) -> Expression:
        replacement = to_output.get(node.to_sql().lower())
        if replacement is not None:
            return ColumnRef(replacement)
        if isinstance(node, ColumnRef) and "." in node.name:
            raise TemplateError(
                f"template {template.template_id!r}: {node.name!r} is not "
                "in the select list; cannot evaluate it over cached results"
            )
        return node

    return _rewrite(expr, transform)


def to_statement_scope(
    template: QueryTemplate, expr: Expression
) -> Expression:
    """Rewrite a result-scope expression to statement scope.

    Each reference to an output column is replaced by the select item
    expression that defines it, so the rewritten expression is valid in
    the template SQL's FROM/JOIN namespace (used by remainder queries).
    """
    _, to_statement = _mappings(template)

    def transform(node: Expression) -> Expression:
        if isinstance(node, ColumnRef):
            replacement = to_statement.get(node.name.lower())
            if replacement is not None:
                return replacement
        return node

    return _rewrite(expr, transform)
