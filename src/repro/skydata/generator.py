"""Synthetic PhotoPrimary catalog generation.

The generator produces an SDSS-like object table inside a configurable
(ra, dec) window.  Object positions are a mixture of

* a uniform background (fraction ``1 - cluster_fraction``), and
* Gaussian clusters around randomly placed hotspot centers — real sky
  surveys are clustered, and the clustering is what gives radial
  searches their skewed result sizes.

Magnitudes (u, g, r, i, z) are drawn from plausible ranges, ``type``
from the SDSS photometric type codes, and ``flags`` as a random bitmask;
these only feed the templates' "other predicates", so realism beyond
range and selectivity is not required.

Generation is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.skydata.sphere import radec_to_unit

# SDSS photometric type codes used by the ``type`` column.
TYPE_GALAXY = 3
TYPE_STAR = 6
TYPE_CODES = (TYPE_GALAXY, TYPE_STAR)

# Named PhotoFlags bits (a small subset of the real mask).
PHOTO_FLAGS = {
    "SATURATED": 0x1,
    "EDGE": 0x2,
    "BLENDED": 0x4,
    "CHILD": 0x8,
    "COSMIC_RAY": 0x10,
    "BRIGHT": 0x20,
}

PHOTO_PRIMARY_SCHEMA = Schema.of(
    ("objID", ColumnType.INT),
    ("ra", ColumnType.FLOAT),
    ("dec", ColumnType.FLOAT),
    ("cx", ColumnType.FLOAT),
    ("cy", ColumnType.FLOAT),
    ("cz", ColumnType.FLOAT),
    ("u", ColumnType.FLOAT),
    ("g", ColumnType.FLOAT),
    ("r", ColumnType.FLOAT),
    ("i", ColumnType.FLOAT),
    ("z", ColumnType.FLOAT),
    ("type", ColumnType.INT),
    ("flags", ColumnType.INT),
    ("run", ColumnType.INT),
    ("camcol", ColumnType.INT),
    ("field", ColumnType.INT),
)


@dataclass(frozen=True)
class SkyCatalogConfig:
    """Parameters of the synthetic catalog.

    The defaults give roughly 0.05 objects per square arcminute, so a
    30-arcminute radial search returns on the order of a hundred tuples
    — the same order as the paper's average result file (~26 KB of XML
    per query over the Radial trace).
    """

    n_objects: int = 200_000
    ra_min: float = 150.0
    ra_max: float = 190.0
    dec_min: float = 0.0
    dec_max: float = 30.0
    cluster_fraction: float = 0.4
    n_clusters: int = 40
    cluster_sigma_deg: float = 0.5
    seed: int = 20040101  # the paper's publication year, for flavour

    def __post_init__(self) -> None:
        if self.n_objects < 0:
            raise ValueError("n_objects must be non-negative")
        if self.ra_min >= self.ra_max or self.dec_min >= self.dec_max:
            raise ValueError("empty sky window")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        if self.cluster_fraction > 0 and self.n_clusters < 1:
            raise ValueError("clustered generation needs at least one cluster")

    @property
    def area_sq_deg(self) -> float:
        return (self.ra_max - self.ra_min) * (self.dec_max - self.dec_min)


def generate_positions(config: SkyCatalogConfig) -> np.ndarray:
    """(n, 2) array of (ra, dec) positions for the configured mixture."""
    rng = np.random.default_rng(config.seed)
    n_clustered = int(round(config.n_objects * config.cluster_fraction))
    n_uniform = config.n_objects - n_clustered

    uniform_ra = rng.uniform(config.ra_min, config.ra_max, n_uniform)
    uniform_dec = rng.uniform(config.dec_min, config.dec_max, n_uniform)

    if n_clustered:
        centers_ra = rng.uniform(config.ra_min, config.ra_max, config.n_clusters)
        centers_dec = rng.uniform(config.dec_min, config.dec_max, config.n_clusters)
        membership = rng.integers(0, config.n_clusters, n_clustered)
        clustered_ra = centers_ra[membership] + rng.normal(
            0.0, config.cluster_sigma_deg, n_clustered
        )
        clustered_dec = centers_dec[membership] + rng.normal(
            0.0, config.cluster_sigma_deg, n_clustered
        )
        ra = np.concatenate([uniform_ra, clustered_ra])
        dec = np.concatenate([uniform_dec, clustered_dec])
    else:
        ra, dec = uniform_ra, uniform_dec

    ra = np.clip(ra, config.ra_min, config.ra_max)
    dec = np.clip(dec, config.dec_min, config.dec_max)
    return np.column_stack([ra, dec])


def build_photo_primary(config: SkyCatalogConfig) -> Table:
    """Generate the PhotoPrimary table for ``config``."""
    rng = np.random.default_rng(config.seed + 1)
    positions = generate_positions(config)
    n = len(positions)

    magnitudes = {
        band: rng.uniform(14.0, 24.0, n) for band in ("u", "g", "r", "i", "z")
    }
    types = rng.choice(TYPE_CODES, n, p=[0.6, 0.4])
    # Each flag bit set independently with small probability.
    flags = np.zeros(n, dtype=np.int64)
    for bit in PHOTO_FLAGS.values():
        flags |= np.where(rng.random(n) < 0.05, bit, 0)
    runs = rng.integers(100, 200, n)
    camcols = rng.integers(1, 7, n)
    fields = rng.integers(1, 1000, n)

    table = Table("PhotoPrimary", PHOTO_PRIMARY_SCHEMA, primary_key="objID")
    for idx in range(n):
        ra = float(positions[idx, 0])
        dec = float(positions[idx, 1])
        cx, cy, cz = radec_to_unit(ra, dec)
        table.insert(
            (
                idx + 1,
                ra,
                dec,
                cx,
                cy,
                cz,
                float(magnitudes["u"][idx]),
                float(magnitudes["g"][idx]),
                float(magnitudes["r"][idx]),
                float(magnitudes["i"][idx]),
                float(magnitudes["z"][idx]),
                int(types[idx]),
                int(flags[idx]),
                int(runs[idx]),
                int(camcols[idx]),
                int(fields[idx]),
            )
        )
    return table


def build_sky_catalog(
    config: SkyCatalogConfig | None = None, functions=None
) -> Catalog:
    """A catalog holding a generated PhotoPrimary table.

    The SkyServer function library is *not* registered here — the origin
    server does that, because the functions need the spatial index it
    builds (see :func:`repro.udf.skyserver.register_skyserver_functions`).
    """
    config = config or SkyCatalogConfig()
    catalog = Catalog(functions=functions)
    catalog.add_table(build_photo_primary(config))
    return catalog
