"""A grid spatial index over (ra, dec) positions.

The real SkyServer accelerates its spatial functions with a Hierarchical
Triangular Mesh index.  For the reproduction, a uniform (ra, dec) grid
gives the same asymptotic benefit — candidate pruning before the exact
distance test — with far less machinery.  The index is read-only, built
once per origin server over the PhotoPrimary table.

The grid stores *row positions* into the indexed table, so lookups
return indices that callers resolve against ``table.rows``.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.relational.table import Table
from repro.skydata.sphere import ARCMIN_PER_DEGREE


class SkyGridIndex:
    """Uniform grid over the (ra, dec) plane.

    ``cell_deg`` trades memory for pruning power; the default of 0.25
    degrees keeps a typical radial search (radius under an degree) to a
    handful of cells.
    """

    def __init__(self, table: Table, cell_deg: float = 0.25) -> None:
        if cell_deg <= 0:
            raise ValueError(f"cell size must be positive: {cell_deg}")
        self.table = table
        self.cell_deg = cell_deg
        ra_pos = table.schema.position("ra")
        dec_pos = table.schema.position("dec")
        self._ra_pos = ra_pos
        self._dec_pos = dec_pos
        self._cells: dict[tuple[int, int], list[int]] = {}
        for row_index, row in enumerate(table.rows):
            key = self._cell_of(row[ra_pos], row[dec_pos])
            self._cells.setdefault(key, []).append(row_index)

    def _cell_of(self, ra: float, dec: float) -> tuple[int, int]:
        return (
            int(math.floor(ra / self.cell_deg)),
            int(math.floor(dec / self.cell_deg)),
        )

    def candidates_in_rect(
        self, ra_min: float, ra_max: float, dec_min: float, dec_max: float
    ) -> Iterable[int]:
        """Row positions of all objects possibly inside the box.

        The grid may return extra candidates near cell borders; callers
        must apply the exact predicate.  RA wraparound at 360 degrees is
        not handled — the synthetic catalog and workloads stay away from
        the wrap point (documented in DESIGN.md).
        """
        lo_i = int(math.floor(ra_min / self.cell_deg))
        hi_i = int(math.floor(ra_max / self.cell_deg))
        lo_j = int(math.floor(dec_min / self.cell_deg))
        hi_j = int(math.floor(dec_max / self.cell_deg))
        for i in range(lo_i, hi_i + 1):
            for j in range(lo_j, hi_j + 1):
                yield from self._cells.get((i, j), ())

    def candidates_in_circle(
        self, ra: float, dec: float, radius_arcmin: float
    ) -> Iterable[int]:
        """Row positions of all objects possibly within the radius.

        The RA half-width is widened by ``1 / cos(dec)`` because a degree
        of RA shrinks toward the poles; clamped for dec near +-90.
        """
        radius_deg = radius_arcmin / ARCMIN_PER_DEGREE
        cos_dec = max(
            math.cos(math.radians(min(abs(dec) + radius_deg, 89.9))), 1e-6
        )
        ra_half = radius_deg / cos_dec
        return self.candidates_in_rect(
            ra - ra_half, ra + ra_half, dec - radius_deg, dec + radius_deg
        )
