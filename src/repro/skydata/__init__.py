"""Synthetic Sloan-Digital-Sky-Survey-like catalog.

The paper's experiments run against the SkyServer, which serves
terabytes of SDSS photometry.  We cannot ship that data, so this package
generates a synthetic ``PhotoPrimary`` catalog whose *spatial* behaviour
matches what the caching study needs: a mixture of uniformly scattered
objects and clustered hotspots, with magnitudes and flags for the
"other predicates" of the query templates.

The substitution is behaviour-preserving because every result the proxy
caches is a function of object positions and the query region only; the
astronomy behind the magnitudes is irrelevant to cache dynamics.
"""

from repro.skydata.sphere import (
    angular_distance_arcmin,
    arcmin_to_chord,
    chord_to_arcmin,
    radec_to_unit,
)
from repro.skydata.generator import SkyCatalogConfig, build_sky_catalog

__all__ = [
    "SkyCatalogConfig",
    "angular_distance_arcmin",
    "arcmin_to_chord",
    "build_sky_catalog",
    "chord_to_arcmin",
    "radec_to_unit",
]
