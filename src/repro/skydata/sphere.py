"""Celestial-sphere geometry helpers.

The SkyServer's radial search ``fGetNearbyObjEq(ra, dec, radius)``
returns objects within ``radius`` arcminutes of the point (ra, dec) on
the celestial sphere.  Angular proximity on the unit sphere maps exactly
to Euclidean proximity of unit vectors: two directions separated by an
angle ``theta`` have chord distance ``2 * sin(theta / 2)``.

This equivalence is what makes the paper's Figure 3 template correct:
the function is "finding all points that are bounded by a 3-D
hypersphere" centered on the search direction's unit vector, with the
radius converted from arcminutes to a chord length.  All conversions for
that mapping live here.
"""

from __future__ import annotations

import math

ARCMIN_PER_DEGREE = 60.0


def radec_to_unit(ra_deg: float, dec_deg: float) -> tuple[float, float, float]:
    """Unit vector for equatorial coordinates given in degrees.

    Matches the SkyServer's (cx, cy, cz) columns:
    ``(cos(ra)cos(dec), sin(ra)cos(dec), sin(dec))``.
    """
    ra = math.radians(ra_deg)
    dec = math.radians(dec_deg)
    cos_dec = math.cos(dec)
    return (
        math.cos(ra) * cos_dec,
        math.sin(ra) * cos_dec,
        math.sin(dec),
    )


def arcmin_to_chord(radius_arcmin: float) -> float:
    """Chord length on the unit sphere subtending ``radius_arcmin``."""
    if radius_arcmin < 0:
        raise ValueError(f"negative angular radius: {radius_arcmin}")
    theta = math.radians(radius_arcmin / ARCMIN_PER_DEGREE)
    return 2.0 * math.sin(theta / 2.0)


def chord_to_arcmin(chord: float) -> float:
    """Inverse of :func:`arcmin_to_chord` (chord must be in [0, 2])."""
    if not 0.0 <= chord <= 2.0:
        raise ValueError(f"chord length out of range [0, 2]: {chord}")
    theta = 2.0 * math.asin(chord / 2.0)
    return math.degrees(theta) * ARCMIN_PER_DEGREE


def angular_distance_arcmin(
    ra1: float, dec1: float, ra2: float, dec2: float
) -> float:
    """Great-circle distance between two (ra, dec) points, in arcmin.

    Computed through the chord (numerically stable for the small angles
    radial searches use, unlike the plain spherical law of cosines).
    """
    v1 = radec_to_unit(ra1, dec1)
    v2 = radec_to_unit(ra2, dec2)
    chord = math.dist(v1, v2)
    # Floating error can push the chord a hair above 2.0 for antipodes.
    chord = min(chord, 2.0)
    return chord_to_arcmin(chord)
