"""The catalog: named tables plus the function registry."""

from __future__ import annotations

from typing import Iterator

from repro.relational.errors import CatalogError
from repro.relational.table import Table


class Catalog:
    """Name resolution for base tables and user-defined functions.

    The function registry is attached rather than owned so that the same
    registry object (with the SkyServer function library) can back
    several catalogs in tests.
    """

    def __init__(self, functions=None) -> None:
        self._tables: dict[str, Table] = {}
        # Import here to avoid a package cycle: udf depends on relational
        # result types.
        if functions is None:
            from repro.udf.registry import FunctionRegistry

            functions = FunctionRegistry()
        self.functions = functions

    def add_table(self, table: Table) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; known: "
                f"{', '.join(sorted(self._tables)) or '(none)'}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())
