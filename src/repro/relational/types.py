"""Column types and value coercion.

The engine is deliberately small: four scalar types cover the SkyServer
schema subset we model (object ids, coordinates, magnitudes, flags, and
names).  Coercion is strict — a value that does not fit its declared
column type raises :class:`~repro.relational.errors.SchemaError` rather
than being silently converted, per the "errors should never pass
silently" rule.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.relational.errors import SchemaError


class ColumnType(enum.Enum):
    """The scalar types a column may hold."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"

    def coerce(self, value: Any) -> Any:
        """Validate and normalize ``value`` for this type.

        ``None`` passes through for every type (SQL NULL).  Ints are
        accepted for FLOAT columns (widening); everything else must match
        exactly.
        """
        if value is None:
            return None
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected int, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected float, got {value!r}")
            return float(value)
        if self is ColumnType.STR:
            if not isinstance(value, str):
                raise SchemaError(f"expected str, got {value!r}")
            return value
        if self is ColumnType.BOOL:
            if not isinstance(value, bool):
                raise SchemaError(f"expected bool, got {value!r}")
            return value
        raise SchemaError(f"unknown column type {self!r}")

    def byte_size(self, value: Any) -> int:
        """Approximate serialized size of a value of this type.

        Matches the accounting the proxy cache uses for its byte budget:
        eight bytes for numbers, one for booleans, UTF-8 length for
        strings, four for NULL (the serialized ``null`` token).
        """
        if value is None:
            return 4
        if self is ColumnType.STR:
            return len(value.encode("utf-8"))
        if self is ColumnType.BOOL:
            return 1
        return 8


def infer_type(value: Any) -> ColumnType:
    """Infer the narrowest :class:`ColumnType` for a Python value."""
    if isinstance(value, bool):
        return ColumnType.BOOL
    if isinstance(value, int):
        return ColumnType.INT
    if isinstance(value, float):
        return ColumnType.FLOAT
    if isinstance(value, str):
        return ColumnType.STR
    raise SchemaError(f"cannot infer a column type for {value!r}")
