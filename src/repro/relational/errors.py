"""Exception hierarchy for the relational engine.

A single root (:class:`RelationalError`) lets callers that treat the
engine as a black box — the origin server returns an HTTP 400 for any of
these — catch one type, while tests can assert on the precise subclass.
"""


class RelationalError(Exception):
    """Root of all engine errors."""


class SchemaError(RelationalError):
    """Schema definition or row/schema mismatch problems."""


class CatalogError(RelationalError):
    """Unknown or duplicate table/function names."""


class ExecutionError(RelationalError):
    """Runtime errors while evaluating expressions or plans."""
