"""Schemas: ordered, named, typed column lists."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.relational.errors import SchemaError
from repro.relational.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A single column: a name and a type.

    Column names are case-insensitive for lookup (SQL convention) but
    preserve their declared spelling for display and serialization.
    """

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        # A dot qualifies a column with its table alias ("p.objID"); such
        # names appear only in internal join namespaces.
        bare = self.name.replace("_", "").replace(".", "")
        if not self.name or not bare.isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Column`.

    Provides positional access (rows are tuples) plus name lookup.
    """

    columns: tuple[Column, ...]
    _index: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        columns = tuple(self.columns)
        object.__setattr__(self, "columns", columns)
        index: dict[str, int] = {}
        for position, column in enumerate(columns):
            key = column.name.lower()
            if key in index:
                raise SchemaError(f"duplicate column name {column.name!r}")
            index[key] = position
        object.__setattr__(self, "_index", index)

    @staticmethod
    def of(*pairs: tuple[str, ColumnType]) -> "Schema":
        """Shorthand: ``Schema.of(("objID", INT), ("ra", FLOAT))``."""
        return Schema(tuple(Column(name, ctype) for name, ctype in pairs))

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has(self, name: str) -> bool:
        return name.lower() in self._index

    def position(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {', '.join(self.names)}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    def coerce_row(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate a row against the schema, returning a tuple."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"row has {len(values)} values, schema has "
                f"{len(self.columns)} columns"
            )
        return tuple(
            column.type.coerce(value)
            for column, value in zip(self.columns, values)
        )

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema restricted to ``names``, in the given order."""
        return Schema(tuple(self.column(name) for name in names))

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join result; duplicate names raise ``SchemaError``."""
        return Schema(self.columns + other.columns)

    def rename_prefix(self, prefix: str) -> "Schema":
        """Qualify every column name with ``prefix.`` (join disambiguation)."""
        return Schema(
            tuple(
                Column(f"{prefix}.{column.name}", column.type)
                for column in self.columns
            )
        )
