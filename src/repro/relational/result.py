"""Query result tables: the unit of caching and of network transfer.

The paper's proxy stores query results as XML files on disk and ships
them over HTTP.  :class:`ResultTable` is that artifact: an ordered,
column-named row set that knows its own serialized size (the byte budget
the cache manager enforces, and the payload size the simulated network
charges for), can serialize to/from the XML wire format used by the
Flask deployment, and supports the merge/deduplicate operation the proxy
performs when combining a probe result with a remainder result.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.relational.errors import ExecutionError, SchemaError
from repro.relational.schema import Schema
from repro.relational.types import ColumnType

# Serialization overhead constants used by the byte-size estimate.  They
# approximate the per-row and per-cell tag cost of the XML wire format so
# that size accounting stays proportional to the real payload without
# materializing the XML string for every query.
_ROW_OVERHEAD_BYTES = 16
_CELL_OVERHEAD_BYTES = 8
_HEADER_OVERHEAD_BYTES = 128


class ResultTable:
    """An immutable-by-convention result set with size accounting."""

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any]]) -> None:
        self.schema = schema
        self._rows: list[tuple[Any, ...]] = [tuple(row) for row in rows]
        self._byte_size: int | None = None

    # ------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultTable):
            return NotImplemented
        return (
            self.schema.names == other.schema.names
            and self._rows == other._rows
        )

    def __repr__(self) -> str:
        return (
            f"<ResultTable {len(self._rows)} rows x "
            f"{len(self.schema)} cols>"
        )

    @property
    def rows(self) -> Sequence[tuple[Any, ...]]:
        return self._rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.names

    def column_values(self, name: str) -> list[Any]:
        position = self.schema.position(name)
        return [row[position] for row in self._rows]

    def row_dicts(self) -> Iterator[dict[str, Any]]:
        names = self.schema.names
        for row in self._rows:
            yield dict(zip(names, row))

    # ------------------------------------------------------------- sizes
    def byte_size(self) -> int:
        """Approximate serialized (XML) size in bytes; cached."""
        if self._byte_size is None:
            total = _HEADER_OVERHEAD_BYTES
            types = [column.type for column in self.schema.columns]
            for row in self._rows:
                total += _ROW_OVERHEAD_BYTES
                for ctype, value in zip(types, row):
                    total += _CELL_OVERHEAD_BYTES + ctype.byte_size(value)
            self._byte_size = total
        return self._byte_size

    # -------------------------------------------------------- operations
    def filtered(self, keep: Callable[[tuple[Any, ...]], bool]) -> "ResultTable":
        """A new result containing only rows where ``keep(row)`` is True."""
        return ResultTable(self.schema, [r for r in self._rows if keep(r)])

    def top_n(self, limit: int) -> "ResultTable":
        if limit < 0:
            raise ExecutionError(f"negative TOP limit: {limit}")
        return ResultTable(self.schema, self._rows[:limit])

    def sorted_by(
        self, names: Sequence[str], descending: Sequence[bool] | None = None
    ) -> "ResultTable":
        """Stable multi-key sort (NULLs last, per SQL Server default)."""
        if descending is None:
            descending = [False] * len(names)
        rows = list(self._rows)
        # Apply keys right-to-left so the leftmost key dominates
        # (relies on sort stability).
        for name, desc in reversed(list(zip(names, descending))):
            position = self.schema.position(name)
            rows.sort(
                key=lambda row: (row[position] is None, row[position]),
                reverse=desc,
            )
        return ResultTable(self.schema, rows)

    def merge_dedup(self, other: "ResultTable", key: str) -> "ResultTable":
        """Union with ``other``, deduplicating on ``key`` (first wins).

        The proxy uses this to combine the probe result (tuples served
        from the cache) with the remainder result from the origin, and to
        merge several subsumed cache entries in the region-containment
        case.  Column sets must match exactly.
        """
        if self.schema.names != other.schema.names:
            raise SchemaError(
                "cannot merge results with different columns: "
                f"{self.schema.names} vs {other.schema.names}"
            )
        position = self.schema.position(key)
        seen = {row[position] for row in self._rows}
        merged = list(self._rows)
        for row in other._rows:
            if row[position] not in seen:
                seen.add(row[position])
                merged.append(row)
        return ResultTable(self.schema, merged)

    # ------------------------------------------------------- wire format
    def to_xml(self) -> str:
        """Serialize to the XML wire format used by the HTTP deployment."""
        root = ET.Element("ResultTable")
        columns = ET.SubElement(root, "Columns")
        for column in self.schema.columns:
            ET.SubElement(
                columns, "Column", name=column.name, type=column.type.value
            )
        rows_el = ET.SubElement(root, "Rows")
        for row in self._rows:
            row_el = ET.SubElement(rows_el, "R")
            for value in row:
                cell = ET.SubElement(row_el, "C")
                if value is None:
                    cell.set("null", "1")
                else:
                    cell.text = str(value)
        return ET.tostring(root, encoding="unicode")

    @staticmethod
    def from_xml(text: str) -> "ResultTable":
        """Parse the wire format back into a result table."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ExecutionError(f"malformed result XML: {exc}") from None
        from repro.relational.schema import Column

        columns = []
        for column_el in root.find("Columns") or []:
            columns.append(
                Column(
                    column_el.get("name"),
                    ColumnType(column_el.get("type")),
                )
            )
        schema = Schema(tuple(columns))
        parsers = {
            ColumnType.INT: int,
            ColumnType.FLOAT: float,
            ColumnType.STR: str,
            ColumnType.BOOL: lambda text: text == "True",
        }
        rows = []
        for row_el in root.find("Rows") or []:
            values = []
            for column, cell in zip(schema.columns, row_el):
                if cell.get("null") == "1":
                    values.append(None)
                else:
                    values.append(parsers[column.type](cell.text or ""))
            rows.append(values)
        return ResultTable(schema, rows)

    @staticmethod
    def empty(schema: Schema) -> "ResultTable":
        return ResultTable(schema, [])
