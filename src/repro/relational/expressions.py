"""Expression trees: literals, column references, operators, function calls.

These nodes serve two masters.  The SQL parser
(:mod:`repro.sqlparser.parser`) builds them while parsing WHERE clauses
and select lists, and the executor (:mod:`repro.relational.executor`)
evaluates them against row environments.  They also render back to SQL
text (:meth:`Expression.to_sql`), which the proxy's remainder-query
builder relies on.

Evaluation environment
----------------------
``evaluate(env)`` takes a mapping from *lower-cased* column names to
values.  Both qualified (``p.ra``) and unqualified (``ra``) spellings are
installed by the executor when unambiguous, mirroring SQL name
resolution.

NULL semantics
--------------
SQL three-valued logic is modelled with Python ``None``: comparisons with
``None`` yield ``None``; ``AND``/``OR`` propagate per Kleene logic; a
WHERE clause accepts a row only when the predicate evaluates to ``True``
(not ``None``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.relational.errors import ExecutionError

Environment = Mapping[str, Any]


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, env: Environment) -> Any:
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError

    def column_refs(self) -> set[str]:
        """All column names referenced anywhere in this expression."""
        refs: set[str] = set()
        self._collect_refs(refs)
        return refs

    def _collect_refs(self, refs: set[str]) -> None:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_sql()


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean, or NULL."""

    value: Any

    def evaluate(self, env: Environment) -> Any:
        return self.value

    def to_sql(self) -> str:
        return _sql_literal(self.value)

    def _collect_refs(self, refs: set[str]) -> None:
        pass


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, optionally qualified (``alias.column``)."""

    name: str

    def evaluate(self, env: Environment) -> Any:
        key = self.name.lower()
        if key in env:
            return env[key]
        # An unqualified reference may resolve through a qualified key
        # when exactly one table provides the column.
        if "." not in key:
            matches = [k for k in env if k.endswith("." + key)]
            if len(matches) == 1:
                return env[matches[0]]
            if len(matches) > 1:
                raise ExecutionError(f"ambiguous column reference {self.name!r}")
        raise ExecutionError(f"unknown column {self.name!r}")

    def to_sql(self) -> str:
        return self.name

    def _collect_refs(self, refs: set[str]) -> None:
        refs.add(self.name.lower())


class BinaryOperator(enum.Enum):
    """Binary operators, with SQL spelling and evaluation rule."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


_ARITHMETIC: dict[BinaryOperator, Callable[[Any, Any], Any]] = {
    BinaryOperator.ADD: lambda a, b: a + b,
    BinaryOperator.SUB: lambda a, b: a - b,
    BinaryOperator.MUL: lambda a, b: a * b,
    BinaryOperator.DIV: lambda a, b: a / b,
}

_COMPARISON: dict[BinaryOperator, Callable[[Any, Any], bool]] = {
    BinaryOperator.EQ: lambda a, b: a == b,
    BinaryOperator.NE: lambda a, b: a != b,
    BinaryOperator.LT: lambda a, b: a < b,
    BinaryOperator.LE: lambda a, b: a <= b,
    BinaryOperator.GT: lambda a, b: a > b,
    BinaryOperator.GE: lambda a, b: a >= b,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    """An arithmetic or comparison operator application."""

    op: BinaryOperator
    left: Expression
    right: Expression

    def evaluate(self, env: Environment) -> Any:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            return None
        try:
            if self.op in _ARITHMETIC:
                return _ARITHMETIC[self.op](left, right)
            return _COMPARISON[self.op](left, right)
        except ZeroDivisionError:
            raise ExecutionError(f"division by zero in {self.to_sql()}") from None
        except TypeError as exc:
            raise ExecutionError(f"type error in {self.to_sql()}: {exc}") from None

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.value} {self.right.to_sql()})"

    def _collect_refs(self, refs: set[str]) -> None:
        self.left._collect_refs(refs)
        self.right._collect_refs(refs)


@dataclass(frozen=True)
class And(Expression):
    """N-ary conjunction with Kleene NULL propagation."""

    operands: tuple[Expression, ...]

    def evaluate(self, env: Environment) -> Any:
        saw_null = False
        for operand in self.operands:
            value = operand.evaluate(env)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True

    def to_sql(self) -> str:
        return "(" + " AND ".join(op.to_sql() for op in self.operands) + ")"

    def _collect_refs(self, refs: set[str]) -> None:
        for operand in self.operands:
            operand._collect_refs(refs)


@dataclass(frozen=True)
class Or(Expression):
    """N-ary disjunction with Kleene NULL propagation."""

    operands: tuple[Expression, ...]

    def evaluate(self, env: Environment) -> Any:
        saw_null = False
        for operand in self.operands:
            value = operand.evaluate(env)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False

    def to_sql(self) -> str:
        return "(" + " OR ".join(op.to_sql() for op in self.operands) + ")"

    def _collect_refs(self, refs: set[str]) -> None:
        for operand in self.operands:
            operand._collect_refs(refs)


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation; NULL stays NULL."""

    operand: Expression

    def evaluate(self, env: Environment) -> Any:
        value = self.operand.evaluate(env)
        if value is None:
            return None
        return not value

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"

    def _collect_refs(self, refs: set[str]) -> None:
        self.operand._collect_refs(refs)


@dataclass(frozen=True)
class Negate(Expression):
    """Unary minus."""

    operand: Expression

    def evaluate(self, env: Environment) -> Any:
        value = self.operand.evaluate(env)
        if value is None:
            return None
        return -value

    def to_sql(self) -> str:
        # The space keeps a negative literal operand from fusing into
        # the SQL line-comment token "--".
        return f"(- {self.operand.to_sql()})"

    def _collect_refs(self, refs: set[str]) -> None:
        self.operand._collect_refs(refs)


@dataclass(frozen=True)
class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive, per SQL)."""

    operand: Expression
    low: Expression
    high: Expression

    def evaluate(self, env: Environment) -> Any:
        value = self.operand.evaluate(env)
        low = self.low.evaluate(env)
        high = self.high.evaluate(env)
        if value is None or low is None or high is None:
            return None
        return low <= value <= high

    def to_sql(self) -> str:
        return (
            f"({self.operand.to_sql()} BETWEEN {self.low.to_sql()} "
            f"AND {self.high.to_sql()})"
        )

    def _collect_refs(self, refs: set[str]) -> None:
        self.operand._collect_refs(refs)
        self.low._collect_refs(refs)
        self.high._collect_refs(refs)


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, env: Environment) -> Any:
        is_null = self.operand.evaluate(env) is None
        return not is_null if self.negated else is_null

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"

    def _collect_refs(self, refs: set[str]) -> None:
        self.operand._collect_refs(refs)


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)``."""

    operand: Expression
    choices: tuple[Expression, ...]

    def evaluate(self, env: Environment) -> Any:
        value = self.operand.evaluate(env)
        if value is None:
            return None
        saw_null = False
        for choice in self.choices:
            candidate = choice.evaluate(env)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return True
        return None if saw_null else False

    def to_sql(self) -> str:
        inner = ", ".join(choice.to_sql() for choice in self.choices)
        return f"({self.operand.to_sql()} IN ({inner}))"

    def _collect_refs(self, refs: set[str]) -> None:
        self.operand._collect_refs(refs)
        for choice in self.choices:
            choice._collect_refs(refs)


# Scalar builtins available inside expressions.  The SkyServer templates
# use trigonometry to map (ra, dec) to unit-sphere coordinates; the
# "similar books" example uses ABS/SQRT.  All take and return floats.
SCALAR_BUILTINS: dict[str, Callable[..., float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan2": math.atan2,
    "sqrt": math.sqrt,
    "abs": abs,
    "radians": math.radians,
    "degrees": math.degrees,
    "power": math.pow,
    "floor": math.floor,
    "ceiling": math.ceil,
    "log": math.log,
    "exp": math.exp,
    # SQL Server spells variadic min/max LEAST/GREATEST; both spellings
    # are accepted.  Needed by polytope templates to express bounding
    # boxes over vertex parameters.
    "least": min,
    "greatest": max,
    "minvalue": min,
    "maxvalue": max,
}


@dataclass(frozen=True)
class FuncCall(Expression):
    """A scalar function call.

    Resolution order: scalar builtins above, then the UDF registry that
    the executor installs in the environment under the reserved key
    ``"__functions__"``.  Table-valued calls never appear here — the
    parser routes them to the FROM clause.
    """

    name: str
    args: tuple[Expression, ...]

    def evaluate(self, env: Environment) -> Any:
        values = [arg.evaluate(env) for arg in self.args]
        if any(value is None for value in values):
            return None
        key = self.name.lower()
        if key in SCALAR_BUILTINS:
            try:
                return SCALAR_BUILTINS[key](*values)
            except (TypeError, ValueError) as exc:
                raise ExecutionError(
                    f"error in {self.to_sql()}: {exc}"
                ) from None
        functions = env.get("__functions__")
        if functions is not None and functions.has_scalar(self.name):
            return functions.call_scalar(self.name, values)
        raise ExecutionError(f"unknown scalar function {self.name!r}")

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name}({inner})"

    def _collect_refs(self, refs: set[str]) -> None:
        for arg in self.args:
            arg._collect_refs(refs)


@dataclass(frozen=True)
class CountStar(Expression):
    """``COUNT(*)``: the row count of a group.

    Only meaningful inside aggregation; evaluating it as a row
    expression is an error the executor reports before it can happen.
    """

    def evaluate(self, env: Environment) -> Any:
        raise ExecutionError("COUNT(*) outside an aggregate context")

    def to_sql(self) -> str:
        return "COUNT(*)"

    def _collect_refs(self, refs: set[str]) -> None:
        pass


def conjoin(parts: Sequence[Expression]) -> Expression | None:
    """AND together ``parts``; None for empty, the sole part for one."""
    parts = [part for part in parts if part is not None]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))
