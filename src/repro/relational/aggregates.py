"""Aggregate functions: COUNT / SUM / AVG / MIN / MAX over row groups.

The paper's query class never aggregates, but the origin's free-form
SQL facility (the SkyServer page the proxy sends remainder queries to)
is a general query surface; downstream users of this library expect at
least the classic five aggregates, GROUP BY, and DISTINCT, so the
engine provides them.

SQL NULL semantics: every aggregate except ``COUNT(*)`` ignores NULL
inputs; an aggregate over an empty (or all-NULL) input is NULL, except
``COUNT`` which is 0.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.relational.errors import ExecutionError
from repro.relational.expressions import (
    CountStar,
    Expression,
    FuncCall,
    Literal,
)

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def is_aggregate_call(expr: Expression) -> bool:
    return isinstance(expr, CountStar) or (
        isinstance(expr, FuncCall)
        and expr.name.lower() in AGGREGATE_NAMES
    )


def contains_aggregate(expr: Expression) -> bool:
    """Whether any subexpression is an aggregate call."""
    if is_aggregate_call(expr):
        return True
    for attr in vars(expr).values():
        if isinstance(attr, Expression) and contains_aggregate(attr):
            return True
        if isinstance(attr, tuple) and any(
            isinstance(element, Expression) and contains_aggregate(element)
            for element in attr
        ):
            return True
    return False


def _aggregate_value(expr, envs: Sequence[dict]) -> Any:
    """Evaluate one aggregate call over a group of row environments."""
    if isinstance(expr, CountStar):
        return len(envs)
    name = expr.name.lower()
    if len(expr.args) != 1:
        raise ExecutionError(
            f"{expr.name} takes exactly one argument"
        )
    values = [expr.args[0].evaluate(env) for env in envs]
    values = [value for value in values if value is not None]
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    raise ExecutionError(f"unknown aggregate {expr.name!r}")


def evaluate_with_aggregates(
    expr: Expression, envs: Sequence[dict]
) -> Any:
    """Evaluate ``expr`` over a row group.

    Aggregate subexpressions are computed over the whole group and
    substituted as literals; the remaining expression is then evaluated
    against the group's first row (which carries the group-by values —
    the executor validates that non-aggregated references are grouping
    expressions).
    """
    folded = _fold_aggregates(expr, envs)
    env = envs[0] if envs else {}
    return folded.evaluate(env)


def _fold_aggregates(expr: Expression, envs: Sequence[dict]) -> Expression:
    if is_aggregate_call(expr):
        return Literal(_aggregate_value(expr, envs))
    changes = {}
    for name, attr in vars(expr).items():
        if isinstance(attr, Expression):
            changes[name] = _fold_aggregates(attr, envs)
        elif isinstance(attr, tuple) and any(
            isinstance(element, Expression) for element in attr
        ):
            changes[name] = tuple(
                _fold_aggregates(element, envs)
                if isinstance(element, Expression)
                else element
                for element in attr
            )
    if not changes:
        return expr
    fields = dict(vars(expr))
    fields.update(changes)
    return type(expr)(**fields)
