"""Executor: runs a parsed SELECT against a catalog.

The execution pipeline mirrors SQL semantics for the supported dialect:

1. materialize the FROM source (base-table scan or table-valued
   function call),
2. apply each JOIN in order (primary-key lookup join when the join
   condition equates a column with the joined table's primary key,
   hash join for other equi-joins, nested loop otherwise),
3. filter by WHERE,
4. sort by ORDER BY,
5. cut to TOP-N,
6. project the select list.

Rows travel as *environment dictionaries* mapping lower-cased column
names to values.  Qualified names (``p.ra``) are always present;
unqualified names are added when unambiguous, mirroring SQL name
resolution.  The reserved key ``__functions__`` carries the UDF registry
for scalar calls inside expressions.
"""

from __future__ import annotations

from typing import Any

from repro.obs.profiling import NULL_PROFILER
from repro.relational.aggregates import (
    contains_aggregate,
    evaluate_with_aggregates,
)
from repro.relational.catalog import Catalog
from repro.relational.errors import ExecutionError
from repro.relational.expressions import (
    BinaryOp,
    BinaryOperator,
    ColumnRef,
    Expression,
)
from repro.relational.result import ResultTable
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType, infer_type
from repro.sqlparser.ast import (
    FunctionSource,
    SelectItem,
    SelectStatement,
    TableSource,
)

Env = dict[str, Any]


class Executor:
    """Executes :class:`SelectStatement` values against one catalog."""

    def __init__(self, catalog: Catalog, profiler: Any = None) -> None:
        self.catalog = catalog
        # Operator counters land here (``executor.*`` stages).  The
        # origin re-points this at its instrumentation's profiler per
        # request, so the default stays a shared no-op.
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    # ------------------------------------------------------------ public
    def execute(self, statement: SelectStatement) -> ResultTable:
        profiler = self.profiler
        source_schema, rows = self._materialize_source(statement.source)
        profiler.hit("executor.scan")
        profiler.count("executor.scan", "rows", len(rows))
        schemas = [(statement.source.binding_name, source_schema)]

        for join in statement.joins:
            table = self.catalog.table(join.table.name)
            rows = self._apply_join(
                rows, schemas, join.table.binding_name, table, join.condition
            )
            schemas.append((join.table.binding_name, table.schema))

        rows = self._finalize_envs(rows, schemas)

        if statement.where is not None:
            predicate = statement.where
            rows_in = len(rows)
            rows = [env for env in rows if predicate.evaluate(env) is True]
            profiler.hit("executor.filter")
            profiler.count("executor.filter", "rows_in", rows_in)
            profiler.count("executor.filter", "rows_out", len(rows))

        if statement.group_by or self._has_aggregates(statement):
            return self._execute_grouped(rows, schemas, statement)

        if statement.distinct:
            return self._execute_distinct(rows, schemas, statement)

        if statement.order_by:
            rows = self._sort(rows, statement)

        if statement.top is not None:
            rows = rows[: statement.top]

        return self._project(rows, schemas, statement)

    @staticmethod
    def _has_aggregates(statement: SelectStatement) -> bool:
        return not statement.star and any(
            contains_aggregate(item.expression)
            for item in statement.select_items
        )

    # ------------------------------------------------------------ source
    def _materialize_source(self, source) -> tuple[Schema, list[Env]]:
        if isinstance(source, TableSource):
            table = self.catalog.table(source.name)
            schema = table.schema
            prefix = source.binding_name.lower()
            names = [f"{prefix}.{n.lower()}" for n in schema.names]
            return schema, [dict(zip(names, row)) for row in table.rows]
        if isinstance(source, FunctionSource):
            functions = self.catalog.functions
            try:
                args = source.argument_values()
            except ExecutionError as exc:
                raise ExecutionError(
                    f"non-constant argument to {source.name}: {exc}"
                ) from None
            raw_rows = functions.call_table(source.name, self.catalog, args)
            schema = functions.table(source.name).schema
            prefix = source.binding_name.lower()
            names = [f"{prefix}.{n.lower()}" for n in schema.names]
            return schema, [dict(zip(names, row)) for row in raw_rows]
        raise ExecutionError(f"unsupported FROM source {source!r}")

    # ------------------------------------------------------------- joins
    def _apply_join(
        self,
        rows: list[Env],
        schemas: list[tuple[str, Schema]],
        binding_name: str,
        table: Table,
        condition: Expression,
    ) -> list[Env]:
        prefix = binding_name.lower()
        names = [f"{prefix}.{n.lower()}" for n in table.schema.names]

        equi = self._equi_join_columns(condition, schemas, binding_name, table)
        if equi is not None:
            outer_key, inner_column = equi
            inner_position = table.schema.position(inner_column)
            if table.primary_key and (
                table.schema.position(table.primary_key) == inner_position
            ):
                # Primary-key lookup join: one hash probe per outer row.
                joined = []
                for env in rows:
                    match = table.lookup(env.get(outer_key))
                    if match is not None:
                        merged = dict(env)
                        merged.update(zip(names, match))
                        joined.append(merged)
                return self._count_join("pk_lookup", joined)
            # Hash join: build on the (usually smaller) inner table.
            buckets: dict[Any, list[tuple[Any, ...]]] = {}
            for row in table.rows:
                key = row[inner_position]
                if key is not None:
                    buckets.setdefault(key, []).append(row)
            joined = []
            for env in rows:
                for row in buckets.get(env.get(outer_key), ()):
                    merged = dict(env)
                    merged.update(zip(names, row))
                    joined.append(merged)
            return self._count_join("hash", joined)

        # General nested-loop join with the full condition.
        joined = []
        for env in rows:
            for row in table.rows:
                merged = dict(env)
                merged.update(zip(names, row))
                if condition.evaluate(merged) is True:
                    joined.append(merged)
        return self._count_join("nested_loop", joined)

    def _count_join(self, strategy: str, joined: list[Env]) -> list[Env]:
        self.profiler.hit("executor.join")
        self.profiler.count("executor.join", strategy, 1)
        self.profiler.count("executor.join", "rows_out", len(joined))
        return joined

    def _equi_join_columns(
        self,
        condition: Expression,
        schemas: list[tuple[str, Schema]],
        binding_name: str,
        table: Table,
    ) -> tuple[str, str] | None:
        """Detect ``outer.col = inner.col`` in the join condition.

        Returns ``(outer env key, inner column name)`` or None.  Only a
        single top-level equality (possibly inside an AND whose first
        matching conjunct is used for the join, with the full condition
        re-checked afterwards by the caller via nested loop) — to keep
        the planner honest, AND conditions fall back to nested loop.
        """
        if not isinstance(condition, BinaryOp) or condition.op is not (
            BinaryOperator.EQ
        ):
            return None
        left, right = condition.left, condition.right
        if not isinstance(left, ColumnRef) or not isinstance(right, ColumnRef):
            return None
        inner_prefix = binding_name.lower() + "."
        for a, b in ((left, right), (right, left)):
            a_name = a.name.lower()
            b_name = b.name.lower()
            if a_name.startswith(inner_prefix):
                inner_column = a_name[len(inner_prefix):]
                if not table.schema.has(inner_column):
                    return None
                outer_key = self._resolve_outer_key(b_name, schemas)
                if outer_key is not None:
                    return outer_key, inner_column
        return None

    def _resolve_outer_key(
        self, name: str, schemas: list[tuple[str, Schema]]
    ) -> str | None:
        """Resolve a (possibly unqualified) column to its env key."""
        if "." in name:
            prefix, column = name.split(".", 1)
            for binding, schema in schemas:
                if binding.lower() == prefix and schema.has(column):
                    return f"{prefix}.{column}"
            return None
        matches = [
            f"{binding.lower()}.{name}"
            for binding, schema in schemas
            if schema.has(name)
        ]
        return matches[0] if len(matches) == 1 else None

    # --------------------------------------------------------- finishing
    def _finalize_envs(
        self, rows: list[Env], schemas: list[tuple[str, Schema]]
    ) -> list[Env]:
        """Install unambiguous unqualified names and the UDF registry."""
        name_owners: dict[str, list[str]] = {}
        for binding, schema in schemas:
            for column in schema.names:
                name_owners.setdefault(column.lower(), []).append(
                    f"{binding.lower()}.{column.lower()}"
                )
        unambiguous = {
            name: owners[0]
            for name, owners in name_owners.items()
            if len(owners) == 1
        }
        functions = self.catalog.functions
        for env in rows:
            for name, key in unambiguous.items():
                env[name] = env[key]
            env["__functions__"] = functions
        return rows

    # ------------------------------------------------- grouped/distinct
    def _execute_grouped(
        self,
        rows: list[Env],
        schemas: list[tuple[str, Schema]],
        statement: SelectStatement,
    ) -> ResultTable:
        """GROUP BY / aggregate evaluation.

        Non-aggregated select items must be grouping expressions (or
        constants), matched textually — the standard SQL rule, checked
        before execution so errors do not depend on the data.
        """
        if statement.star:
            raise ExecutionError("SELECT * cannot be aggregated")
        grouping_sql = {expr.to_sql().lower() for expr in statement.group_by}
        for item in statement.select_items:
            if contains_aggregate(item.expression):
                continue
            from repro.relational.expressions import Literal

            if isinstance(item.expression, Literal):
                continue
            if item.expression.to_sql().lower() not in grouping_sql:
                raise ExecutionError(
                    f"{item.expression.to_sql()} must appear in GROUP BY "
                    "or inside an aggregate"
                )

        groups: dict[tuple, list[Env]] = {}
        if statement.group_by:
            for env in rows:
                key = tuple(
                    expr.evaluate(env) for expr in statement.group_by
                )
                groups.setdefault(key, []).append(env)
        else:
            # Aggregates without GROUP BY: one group, even when empty.
            groups[()] = rows

        projected = [
            tuple(
                evaluate_with_aggregates(item.expression, group_rows)
                for item in statement.select_items
            )
            for group_rows in groups.values()
        ]
        self.profiler.hit("executor.aggregate")
        self.profiler.count("executor.aggregate", "groups", len(groups))
        schema = Schema(
            tuple(
                Column(
                    item.output_name(),
                    self._aggregate_output_type(item, schemas),
                )
                for item in statement.select_items
            )
        )
        result = ResultTable(schema, projected)
        if statement.distinct:
            result = self._dedupe(result)
        result = self._order_output(result, statement)
        if statement.top is not None:
            result = result.top_n(statement.top)
        return result

    def _aggregate_output_type(
        self, item: SelectItem, schemas: list[tuple[str, Schema]]
    ) -> ColumnType:
        from repro.relational.expressions import CountStar, FuncCall

        expr = item.expression
        if isinstance(expr, CountStar):
            return ColumnType.INT
        if isinstance(expr, FuncCall) and expr.name.lower() == "count":
            return ColumnType.INT
        if contains_aggregate(expr):
            return ColumnType.FLOAT
        return self._output_type(item, schemas)

    def _execute_distinct(
        self,
        rows: list[Env],
        schemas: list[tuple[str, Schema]],
        statement: SelectStatement,
    ) -> ResultTable:
        """SELECT DISTINCT: project, dedupe, then order by output
        columns (ORDER BY under DISTINCT may only reference the select
        list, per SQL)."""
        result = self._dedupe(self._project(rows, schemas, statement))
        result = self._order_output(result, statement)
        if statement.top is not None:
            result = result.top_n(statement.top)
        return result

    @staticmethod
    def _dedupe(result: ResultTable) -> ResultTable:
        seen: set = set()
        kept = []
        for row in result.rows:
            if row not in seen:
                seen.add(row)
                kept.append(row)
        return ResultTable(result.schema, kept)

    def _order_output(
        self, result: ResultTable, statement: SelectStatement
    ) -> ResultTable:
        """ORDER BY over an already-projected result.

        Keys must name output columns or repeat a select item's
        expression verbatim — the resolvable cases once source rows are
        gone.
        """
        if not statement.order_by:
            return result
        positions = []
        by_sql = {
            item.expression.to_sql().lower(): index
            for index, item in enumerate(statement.select_items)
        }
        for order_item in statement.order_by:
            expr = order_item.expression
            if isinstance(expr, ColumnRef) and result.schema.has(expr.name):
                positions.append(
                    (result.schema.position(expr.name),
                     order_item.descending)
                )
                continue
            index = by_sql.get(expr.to_sql().lower())
            if index is None:
                raise ExecutionError(
                    f"ORDER BY {expr.to_sql()} must reference the select "
                    "list in a DISTINCT or aggregate query"
                )
            positions.append((index, order_item.descending))
        rows = list(result.rows)
        for position, descending in reversed(positions):
            rows.sort(
                key=lambda row: (row[position] is None, row[position]),
                reverse=descending,
            )
        return ResultTable(result.schema, rows)

    def _sort(self, rows: list[Env], statement: SelectStatement) -> list[Env]:
        decorated = list(rows)
        for item in reversed(statement.order_by):
            expr = item.expression
            decorated.sort(
                key=lambda env: (
                    expr.evaluate(env) is None,
                    expr.evaluate(env),
                ),
                reverse=item.descending,
            )
        return decorated

    def _project(
        self,
        rows: list[Env],
        schemas: list[tuple[str, Schema]],
        statement: SelectStatement,
    ) -> ResultTable:
        if statement.star:
            items = []
            seen: set[str] = set()
            for binding, schema in schemas:
                for column in schema.names:
                    # Keep the short name unless it collides.
                    if column.lower() in seen:
                        qualified = f"{binding}.{column}"
                        items.append(
                            SelectItem(ColumnRef(qualified), alias=None)
                        )
                    else:
                        seen.add(column.lower())
                        items.append(
                            SelectItem(ColumnRef(f"{binding}.{column}"),
                                       alias=column)
                        )
        else:
            items = list(statement.select_items)

        output_columns = tuple(
            Column(item.output_name(), self._output_type(item, schemas))
            for item in items
        )
        schema = Schema(output_columns)
        expressions = [item.expression for item in items]
        projected = [
            tuple(expr.evaluate(env) for expr in expressions) for env in rows
        ]
        self.profiler.hit("executor.project")
        self.profiler.count("executor.project", "rows", len(projected))
        return ResultTable(schema, projected)

    def _output_type(
        self, item: SelectItem, schemas: list[tuple[str, Schema]]
    ) -> ColumnType:
        """Static output type: exact for column refs and literals,
        FLOAT for computed expressions (the dialect's only arithmetic
        domain)."""
        expr = item.expression
        if isinstance(expr, ColumnRef):
            name = expr.name.lower()
            if "." in name:
                prefix, column = name.split(".", 1)
                for binding, schema in schemas:
                    if binding.lower() == prefix and schema.has(column):
                        return schema.column(column).type
            else:
                for _binding, schema in schemas:
                    if schema.has(name):
                        return schema.column(name).type
            raise ExecutionError(f"unknown column {expr.name!r} in select list")
        from repro.relational.expressions import Literal

        if isinstance(expr, Literal) and expr.value is not None:
            return infer_type(expr.value)
        return ColumnType.FLOAT
