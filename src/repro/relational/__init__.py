"""A small in-memory relational engine.

This is the substrate standing in for the SkyServer's commercial DBMS.
It provides typed schemas, in-memory tables with optional primary-key
indexes, an expression tree shared with the SQL parser, and an executor
covering the operations the paper's function-embedded query class needs:
table scans, table-valued function scans, joins, filters, projections,
ORDER BY, and TOP-N.

The engine favours explicitness over speed — queries over the synthetic
sky catalog (hundreds of thousands of rows) complete in milliseconds,
and origin-server *cost* in experiments is charged by the cost model in
:mod:`repro.server.costs`, not by wall-clock time here.
"""

from repro.relational.errors import (
    CatalogError,
    ExecutionError,
    RelationalError,
    SchemaError,
)
from repro.relational.types import ColumnType
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.result import ResultTable
from repro.relational.catalog import Catalog
from repro.relational import expressions

__all__ = [
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnType",
    "ExecutionError",
    "RelationalError",
    "ResultTable",
    "Schema",
    "SchemaError",
    "Table",
    "expressions",
]
