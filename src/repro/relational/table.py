"""In-memory base tables with optional primary-key index."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.relational.errors import SchemaError
from repro.relational.schema import Schema


class Table:
    """A named base table: a schema plus a list of row tuples.

    The optional primary key builds a hash index used by point lookups
    and by the proxy's result merging (deduplication after a remainder
    query).  Rows are immutable tuples; the table grows by ``insert`` /
    ``insert_many`` only — the workloads in the paper are read-only, so
    no delete/update path is needed (and none is pretended).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        primary_key: str | None = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.primary_key = primary_key
        self._rows: list[tuple[Any, ...]] = []
        self._pk_position: int | None = None
        self._pk_index: dict[Any, int] | None = None
        if primary_key is not None:
            self._pk_position = schema.position(primary_key)
            self._pk_index = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    @property
    def rows(self) -> Sequence[tuple[Any, ...]]:
        return self._rows

    def insert(self, values: Sequence[Any]) -> None:
        """Validate and append one row."""
        row = self.schema.coerce_row(values)
        if self._pk_index is not None:
            key = row[self._pk_position]
            if key is None:
                raise SchemaError(
                    f"NULL primary key in table {self.name!r}"
                )
            if key in self._pk_index:
                raise SchemaError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._pk_index[key] = len(self._rows)
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for values in rows:
            self.insert(values)

    def lookup(self, key: Any) -> tuple[Any, ...] | None:
        """Point lookup by primary key; None when absent."""
        if self._pk_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        position = self._pk_index.get(key)
        return None if position is None else self._rows[position]
