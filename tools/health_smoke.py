#!/usr/bin/env python
"""CI smoke test for the live-telemetry health surface.

Boots an in-process function proxy with the time-series recorder, the
flight recorder, and the health monitor enabled, then walks one
outage-and-recovery arc and asserts the headline health claim:

* ``GET /health`` answers ``healthy`` on a warm, fault-free proxy;
* during an injected origin outage (``POST /faults``), the circuit
  breaker opens and ``/health`` answers ``degraded`` with the pinned
  ``HR05`` (breaker-open) rule flagged — still HTTP 200, because a
  degraded proxy is *answering*, just worse;
* after the outage is lifted (``DELETE /faults``) and the breaker
  closes, ``/health`` answers ``healthy`` again;
* the flight recorder's timeline shows the arc: ``EV01``
  (breaker-open), ``EV03`` (breaker-closed), and ``EV11``
  (health-state-change) all present on ``GET /events``.

Artifacts written next to the benchmark results:

* ``benchmarks/results/health_smoke.json`` — the three health
  verdicts, the final ``/timeseries`` snapshot, and the ``/events``
  buffer.

Usage::

    python tools/health_smoke.py [results_dir]
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.proxy import FunctionProxy  # noqa: E402
from repro.faults.resilience import BreakerState  # noqa: E402
from repro.server.origin import OriginServer  # noqa: E402
from repro.skydata.generator import SkyCatalogConfig  # noqa: E402
from repro.webapp.proxy_app import create_proxy_app  # noqa: E402

SMOKE_SKY = SkyCatalogConfig(
    n_objects=8_000,
    ra_min=160.0,
    ra_max=168.0,
    dec_min=5.0,
    dec_max=11.0,
    seed=42,
)
RADIAL = {
    "ra": 164.0,
    "dec": 8.0,
    "radius": 10.0,
    "r_min": -9999.0,
    "r_max": 9999.0,
}
#: A bound on the serve loops below; every loop exits far earlier.
MAX_SERVES = 200


def main(argv: list[str]) -> int:
    results_dir = pathlib.Path(
        argv[0] if argv else REPO_ROOT / "benchmarks" / "results"
    )
    results_dir.mkdir(parents=True, exist_ok=True)

    origin = OriginServer.skyserver(SMOKE_SKY)
    proxy = FunctionProxy(origin, origin.templates)
    app = create_proxy_app(
        proxy, timeseries_interval_ms=1_000.0, event_capacity=256
    ).test_client()

    def serve(ra: float, dec: float, radius: float = 10.0) -> None:
        bound = origin.templates.bind(
            "skyserver.radial", dict(RADIAL, ra=ra, dec=dec, radius=radius)
        )
        proxy.serve(bound)

    # Warm the cache and cross a few sampling windows fault-free.
    for step in range(4):
        serve(164.0, 8.0)
        proxy.clock.advance(1_000.0)
    baseline = app.get("/health")
    print(f"baseline: {baseline.status_code} {baseline.get_json()['status']}")
    if baseline.get_json()["status"] != "healthy":
        print("FAIL: warm fault-free proxy is not healthy")
        return 1

    # A permanent outage from t=0; misses drive the breaker open.
    installed = app.post(
        "/faults",
        json={"outages": [{"start_ms": 0.0, "end_ms": 1e12}]},
    )
    if installed.status_code != 200:
        print(f"FAIL: POST /faults -> {installed.status_code}")
        return 1
    for step in range(MAX_SERVES):
        serve(161.0 + 0.05 * step, 6.0)
        if proxy.breaker.state is BreakerState.OPEN:
            break
    else:
        print("FAIL: breaker never opened under the outage")
        return 1
    # One more serve after the transition lands a sample that carries
    # the open breaker gauge.
    serve(164.0, 8.0)
    proxy.clock.advance(1_000.0)
    serve(164.0, 8.0)
    during = app.get("/health")
    report = during.get_json()
    flagged = {
        rule["id"] for rule in report["rules"] if rule["status"] != "healthy"
    }
    print(
        f"during outage: {during.status_code} {report['status']} "
        f"flagged={sorted(flagged)}"
    )
    if during.status_code != 200 or report["status"] != "degraded":
        print("FAIL: outage verdict should be degraded (HTTP 200)")
        return 1
    if "HR05" not in flagged:
        print("FAIL: HR05 (breaker-open) did not flag the outage")
        return 1

    # Lift the outage, wait out the cooldown, and let a probe close
    # the breaker; warm hits then repaint the newest windows healthy.
    app.delete("/faults")
    proxy.clock.advance(proxy.breaker.cooldown_ms + 1_000.0)
    for step in range(MAX_SERVES):
        serve(166.0, 9.0, radius=2.0 + 0.05 * step)
        if proxy.breaker.state is BreakerState.CLOSED:
            break
    else:
        print("FAIL: breaker never closed after the outage lifted")
        return 1
    for step in range(4):
        serve(164.0, 8.0)
        proxy.clock.advance(1_000.0)
    after = app.get("/health")
    print(f"after recovery: {after.status_code} {after.get_json()['status']}")
    if after.status_code != 200 or after.get_json()["status"] != "healthy":
        print("FAIL: recovered proxy should be healthy again")
        return 1

    events = app.get("/events").get_json()
    codes = {event["code"] for event in events["events"]}
    print(f"event codes on the timeline: {sorted(codes)}")
    for required in ("EV01", "EV03", "EV11"):
        if required not in codes:
            print(f"FAIL: {required} missing from the flight recorder")
            return 1
    series = app.get("/timeseries").get_json()
    if not series["samples"]:
        print("FAIL: /timeseries retained no samples")
        return 1

    artifact = results_dir / "health_smoke.json"
    artifact.write_text(
        json.dumps(
            {
                "baseline": baseline.get_json(),
                "during_outage": report,
                "after_recovery": after.get_json(),
                "timeseries": series,
                "events": events,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {artifact}")
    print(f"OK: health arc healthy -> degraded -> healthy over {len(series['samples'])} windows")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
