#!/usr/bin/env python
"""CI smoke test for end-to-end trace propagation.

Boots the Flask origin app on a loopback port, drives a traced
function proxy over :class:`~repro.webapp.http_origin.HttpOriginClient`
against it, and asserts the tentpole observability claim: proxy-side
and origin-side spans for one query carry the *same* W3C trace id (the
proxy injects ``traceparent`` on its fetches; the origin adopts it).
The proxy app runs with live telemetry on, so the smoke also checks
that ``GET /timeseries``, ``GET /events``, and ``GET /health`` answer.

Artifacts written next to the benchmark results:

* ``benchmarks/results/trace_export.jsonl`` — the proxy's span export
  followed by the origin's (one JSON object per line; stitch on
  ``trace_id``);
* ``benchmarks/results/explain_recent.json`` — the proxy's
  ``/explain/recent`` snapshot (decision actions, candidate verdicts,
  SLO state).

Usage::

    python tools/trace_smoke.py [results_dir]
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
from wsgiref.simple_server import make_server

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.proxy import FunctionProxy  # noqa: E402
from repro.obs.instrument import ProxyInstrumentation  # noqa: E402
from repro.obs.propagation import IdGenerator  # noqa: E402
from repro.obs.spans import SpanTracer  # noqa: E402
from repro.server.origin import OriginServer  # noqa: E402
from repro.skydata.generator import SkyCatalogConfig  # noqa: E402
from repro.webapp.http_origin import HttpOriginClient  # noqa: E402
from repro.webapp.origin_app import create_origin_app  # noqa: E402
from repro.webapp.proxy_app import create_proxy_app  # noqa: E402

SMOKE_SKY = SkyCatalogConfig(
    n_objects=8_000,
    ra_min=160.0,
    ra_max=168.0,
    dec_min=5.0,
    dec_max=11.0,
    seed=42,
)
RADIAL = {
    "ra": 164.0,
    "dec": 8.0,
    "radius": 10.0,
    "r_min": -9999.0,
    "r_max": 9999.0,
}


def main(argv: list[str]) -> int:
    results_dir = pathlib.Path(
        argv[0] if argv else REPO_ROOT / "benchmarks" / "results"
    )
    results_dir.mkdir(parents=True, exist_ok=True)

    origin = OriginServer.skyserver(SMOKE_SKY)
    origin_app = create_origin_app(origin, trace_capacity=64)
    server = make_server("127.0.0.1", 0, origin_app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_port}"
    print(f"origin app listening on {url}")

    try:
        client = HttpOriginClient(url)
        proxy = FunctionProxy(
            client,
            client.templates,
            instrumentation=ProxyInstrumentation(
                tracer=SpanTracer(capacity=64, ids=IdGenerator(7))
            ),
        )
        proxy_app = create_proxy_app(
            proxy, timeseries_interval_ms=1_000.0, event_capacity=64
        ).test_client()

        # Miss (full fetch), exact hit, then a contained sub-query:
        # every decision path that the explain snapshot should cover
        # without touching the origin twice for the same region.
        for radius in (10.0, 10.0, 4.0):
            params = dict(RADIAL, radius=radius)
            bound = client.templates.bind("skyserver.radial", params)
            response = proxy.serve(bound)
            print(
                f"radius={radius}: status="
                f"{response.record.status.value} "
                f"outcome={response.record.outcome.value}"
            )

        proxy_spans = proxy.tracer.recent(50)
        origin_spans = origin.instrumentation.tracer.recent(50)
        proxy_trace_ids = {s["trace_id"] for s in proxy_spans}
        origin_trace_ids = {s["trace_id"] for s in origin_spans}
        shared = proxy_trace_ids & origin_trace_ids
        print(
            f"proxy spans: {len(proxy_spans)} "
            f"({len(proxy_trace_ids)} traces); "
            f"origin spans: {len(origin_spans)} "
            f"({len(origin_trace_ids)} traces); shared: {len(shared)}"
        )
        if not shared:
            print("FAIL: no trace id appears on both sides")
            return 1

        explain = proxy_app.get("/explain/recent?n=50").get_json()
        actions = explain["actions"]
        print(f"decision actions: {actions}")
        if not explain["decisions"]:
            print("FAIL: /explain/recent returned no decisions")
            return 1

        # The live-telemetry surface answers on all three endpoints.
        series = proxy_app.get("/timeseries").get_json()
        events = proxy_app.get("/events").get_json()
        health_response = proxy_app.get("/health")
        health = health_response.get_json()
        print(
            f"telemetry: {len(series['samples'])} sample(s), "
            f"{events['total']} event(s), health={health['status']}"
        )
        if not series["enabled"] or not events["enabled"]:
            print("FAIL: telemetry recorders did not install")
            return 1
        if health_response.status_code != 200 or not health["enabled"]:
            print("FAIL: /health did not answer an enabled verdict")
            return 1

        export = results_dir / "trace_export.jsonl"
        export.write_text(
            proxy.tracer.export_jsonl()
            + origin.instrumentation.tracer.export_jsonl()
        )
        snapshot = results_dir / "explain_recent.json"
        snapshot.write_text(
            json.dumps(explain, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {export} and {snapshot}")
        print(f"OK: {len(shared)} stitched trace(s)")
        return 0
    finally:
        server.shutdown()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
