#!/usr/bin/env python
"""CI driver for the repository lint rules (FP3xx).

Runs :mod:`repro.analysis.pylint_rules` over ``src/repro`` and
``benchmarks`` (or any paths given on the command line), prints the
diagnostics compiler-style — ``path:line:col: CODE severity: message``,
column numbers included — and exits nonzero when any error-severity
diagnostic is found.

Usage::

    python tools/lint.py [--json] [paths...]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.pylint_rules import run_lint  # noqa: E402


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as a JSON document instead of text",
    )
    options = parser.parse_args(argv)
    paths = options.paths or [
        str(REPO_ROOT / "src" / "repro"),
        str(REPO_ROOT / "benchmarks"),
    ]
    report = run_lint(paths)
    if options.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 1 if report.has_errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
