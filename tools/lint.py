#!/usr/bin/env python
"""CI driver for the repository lint rules (FP3xx).

Runs :mod:`repro.analysis.pylint_rules` over ``src/repro`` and
``benchmarks`` (or any paths given on the command line), prints the
diagnostics compiler-style, and exits nonzero when any error-severity
diagnostic is found.

Usage::

    python tools/lint.py [paths...]
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.pylint_rules import run_lint  # noqa: E402


def main(argv: list[str]) -> int:
    paths = argv or [
        str(REPO_ROOT / "src" / "repro"),
        str(REPO_ROOT / "benchmarks"),
    ]
    report = run_lint(paths)
    print(report.render())
    return 1 if report.has_errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
